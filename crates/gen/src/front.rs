//! Moving-line generator: a weather front — a polyline sweeping across
//! the map, changing shape at every unit boundary. The synthetic stand-in
//! for the `moving(line)` workloads (advancing boundaries, moving
//! shorelines) the paper's introduction motivates.

use mob_base::{Instant, Interval};
use mob_core::{MSeg, Mapping, MovingLine, ULine};
use mob_spatial::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the weather-front workload.
#[derive(Clone, Debug)]
pub struct FrontConfig {
    /// Number of polyline segments (per unit).
    pub segments: usize,
    /// Number of units.
    pub units: usize,
    /// Duration of each unit.
    pub unit_duration: f64,
    /// North–south extent of the front.
    pub height: f64,
    /// Eastward drift per unit.
    pub drift: f64,
    /// Horizontal jitter of the polyline vertices.
    pub jitter: f64,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            segments: 8,
            units: 6,
            unit_duration: 1.0,
            height: 100.0,
            drift: 10.0,
            jitter: 3.0,
        }
    }
}

/// Generate the moving front. Vertex `k` of snapshot `j` travels to
/// vertex `k` of snapshot `j+1`, so every unit is a valid (non-rotating
/// per segment by coplanarity of the interpolation) `uline`.
/// Deterministic in the seed.
pub fn moving_front(seed: u64, cfg: &FrontConfig) -> MovingLine {
    assert!(cfg.segments >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    // The front's shape (per-vertex x-offset) is frozen; within a unit
    // the whole polyline translates east as one rigid body — any
    // per-vertex speed difference would rotate the segments, which the
    // `uline` carrier set forbids. The translation speed varies from
    // unit to unit, so consecutive units carry distinct unit functions
    // (identical motions would be merged by the mapping invariant).
    let shape: Vec<f64> = (0..=cfg.segments)
        .map(|_| rng.gen_range(-cfg.jitter..cfg.jitter))
        .collect();
    let mut advance = vec![0.0f64];
    for _ in 0..cfg.units {
        let step = cfg.drift * rng.gen_range(0.5..1.5);
        advance.push(advance.last().expect("non-empty") + step);
    }
    let snapshot = |j: usize| -> Vec<Point> {
        (0..=cfg.segments)
            .map(|k| {
                let y = cfg.height * k as f64 / cfg.segments as f64;
                let x = advance[j] + shape[k];
                Point::from_f64(x, y)
            })
            .collect()
    };
    let mut units = Vec::with_capacity(cfg.units);
    for j in 0..cfg.units {
        let t0 = j as f64 * cfg.unit_duration;
        let t1 = (j + 1) as f64 * cfg.unit_duration;
        let last = j == cfg.units - 1;
        let iv = Interval::new(Instant::from_f64(t0), Instant::from_f64(t1), true, last);
        let (p0, p1) = (snapshot(j), snapshot(j + 1));
        let msegs: Vec<MSeg> = (0..cfg.segments)
            .map(|k| {
                MSeg::between(
                    Instant::from_f64(t0),
                    p0[k],
                    p0[k + 1],
                    Instant::from_f64(t1),
                    p1[k],
                    p1[k + 1],
                )
                .expect("pure translation per vertex pair is coplanar")
            })
            .collect();
        units.push(ULine::try_new(iv, msegs).expect("translating front stays a valid line"));
    }
    crate::emitted(Mapping::try_new(units).expect("consecutive units carry distinct motions"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Val};

    #[test]
    fn front_is_deterministic_and_sized() {
        let cfg = FrontConfig::default();
        let a = moving_front(4, &cfg);
        let b = moving_front(4, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.num_units(), cfg.units);
        assert_eq!(a.total_msegs(), cfg.units * cfg.segments);
    }

    #[test]
    fn front_advances_east() {
        let front = moving_front(9, &FrontConfig::default());
        let early = front.at_instant(t(0.0)).unwrap().bbox();
        let late = front.at_instant(t(5.9)).unwrap().bbox();
        assert!(late.min_x() > early.min_x());
        // The front keeps its segment count at evaluation.
        assert_eq!(front.at_instant(t(3.0)).unwrap().num_segments(), 8);
    }

    #[test]
    fn front_length_is_continuous() {
        let front = moving_front(2, &FrontConfig::default());
        let before = front.length_at(t(3.0 - 1e-9)).unwrap();
        let at = front.length_at(t(3.0)).unwrap();
        assert!(before.approx_eq(at, 1e-4));
        assert_eq!(front.length_at(t(99.0)), Val::Undef);
    }

    #[test]
    fn front_storage_roundtrip() {
        use mob_storage::mapping_store::save_mline;
        use mob_storage::{open_mline, PageStore, Verify};
        let front = moving_front(7, &FrontConfig::default());
        let mut store = PageStore::new();
        let stored = save_mline(&front, &mut store);
        let back = open_mline(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated();
        assert_eq!(back, Ok(front));
    }
}
