//! Network-constrained movement: vehicles on a Manhattan grid of
//! streets. This is the second motivating workload class of the paper
//! (taxis/vehicles on a road network) — movement is still piecewise
//! linear, but constrained to grid edges, which produces trajectories
//! with many retraced segments (exercising the projection semantics of
//! `trajectory`).

use mob_base::Instant;
use mob_core::MovingPoint;
use mob_spatial::{Line, Point, Seg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A square Manhattan grid: streets at integer multiples of `block` in
/// both directions, `blocks × blocks` cells.
#[derive(Clone, Debug)]
pub struct GridNetwork {
    /// Number of blocks per side.
    pub blocks: usize,
    /// Side length of one block.
    pub block: f64,
}

impl GridNetwork {
    /// Construct a network.
    pub fn new(blocks: usize, block: f64) -> GridNetwork {
        assert!(blocks >= 1 && block > 0.0);
        GridNetwork { blocks, block }
    }

    /// The street network as a `line` value.
    pub fn as_line(&self) -> Line {
        let n = self.blocks;
        let b = self.block;
        let span = n as f64 * b;
        let mut segs = Vec::with_capacity(2 * (n + 1));
        for k in 0..=n {
            let c = k as f64 * b;
            segs.push(Seg::new(Point::from_f64(0.0, c), Point::from_f64(span, c)));
            segs.push(Seg::new(Point::from_f64(c, 0.0), Point::from_f64(c, span)));
        }
        crate::emitted(Line::try_new(segs).expect("grid streets are valid"))
    }

    /// The intersection at grid coordinates `(i, j)`.
    pub fn node(&self, i: usize, j: usize) -> Point {
        Point::from_f64(i as f64 * self.block, j as f64 * self.block)
    }

    /// A vehicle doing a random walk over intersections: `steps` legs of
    /// one block each, `leg_duration` time per leg, starting at a random
    /// intersection. The walk never immediately backtracks unless
    /// cornered. Deterministic in the seed.
    pub fn random_drive(&self, seed: u64, steps: usize, leg_duration: f64) -> MovingPoint {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.blocks;
        let mut i = rng.gen_range(0..=n);
        let mut j = rng.gen_range(0..=n);
        let mut prev = (i, j);
        let mut samples = Vec::with_capacity(steps + 1);
        samples.push((Instant::from_f64(0.0), self.node(i, j)));
        for k in 1..=steps {
            let mut options: Vec<(usize, usize)> = Vec::with_capacity(4);
            if i > 0 {
                options.push((i - 1, j));
            }
            if i < n {
                options.push((i + 1, j));
            }
            if j > 0 {
                options.push((i, j - 1));
            }
            if j < n {
                options.push((i, j + 1));
            }
            let non_backtracking: Vec<(usize, usize)> =
                options.iter().copied().filter(|&o| o != prev).collect();
            let pool = if non_backtracking.is_empty() {
                &options
            } else {
                &non_backtracking
            };
            let next = pool[rng.gen_range(0..pool.len())];
            prev = (i, j);
            (i, j) = next;
            samples.push((Instant::from_f64(k as f64 * leg_duration), self.node(i, j)));
        }
        crate::emitted(MovingPoint::from_samples(&samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t, Val};
    use mob_spatial::dist::point_line_distance;

    #[test]
    fn network_shape() {
        let net = GridNetwork::new(4, 10.0);
        let line = net.as_line();
        assert_eq!(line.num_segments(), 10); // 5 horizontal + 5 vertical
        assert_eq!(line.length(), r(10.0 * 40.0));
        assert_eq!(net.node(2, 3), Point::from_f64(20.0, 30.0));
    }

    #[test]
    fn drives_stay_on_the_network() {
        let net = GridNetwork::new(6, 5.0);
        let streets = net.as_line();
        let drive = net.random_drive(11, 30, 1.0);
        for k in 0..=300 {
            let ti = t(k as f64 * 0.1);
            if let Val::Def(p) = drive.at_instant(ti) {
                let d = point_line_distance(p, &streets).unwrap();
                assert!(d.get() < 1e-9, "off-network at {ti:?}: {p:?}");
            }
        }
    }

    #[test]
    fn drives_are_deterministic_and_distinct() {
        let net = GridNetwork::new(4, 10.0);
        assert_eq!(net.random_drive(5, 20, 1.0), net.random_drive(5, 20, 1.0));
        assert_ne!(net.random_drive(5, 20, 1.0), net.random_drive(6, 20, 1.0));
    }

    #[test]
    fn trajectory_shorter_than_travel_on_retraced_walks() {
        // Grid walks retrace edges; the trajectory projection merges them.
        let net = GridNetwork::new(2, 1.0); // tiny grid forces retracing
        let drive = net.random_drive(3, 60, 1.0);
        let traj_len = drive.trajectory().length();
        let travel = drive.distance_travelled();
        assert_eq!(travel, r(60.0)); // one block per leg
        assert!(traj_len < travel);
        // The trajectory is a subset of the street network.
        assert!(traj_len <= net.as_line().length());
    }
}
