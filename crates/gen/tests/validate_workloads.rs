//! Every generator output satisfies the paper's representation
//! invariants.
//!
//! The generators promise values from the Sec 3.2 carrier sets —
//! ordered, disjoint, canonical slices with per-unit side conditions.
//! These tests audit that promise explicitly with [`Validate`] (the
//! generators also funnel every emission through `debug_validate`, so a
//! regression fails twice: here and at the point of generation).

use mob_base::Validate;
use mob_gen::{
    blob_field, moving_front, moving_storm, plane_fleet, storm, storm_with_eye, taxi_fleet,
    FrontConfig, GridNetwork, StormConfig,
};

#[test]
fn plane_fleet_flights_validate() {
    for (k, plane) in plane_fleet(0xF1EE7, 16, 24).into_iter().enumerate() {
        plane
            .flight
            .validate()
            .unwrap_or_else(|e| panic!("plane {k}: {e}"));
    }
}

#[test]
fn taxi_fleet_validates() {
    for (k, taxi) in taxi_fleet(0x7A11, 12, 40).into_iter().enumerate() {
        taxi.validate().unwrap_or_else(|e| panic!("taxi {k}: {e}"));
    }
}

#[test]
fn storms_validate() {
    for seed in [0u64, 1, 0x5702, u64::MAX] {
        storm(seed, 8, 12)
            .validate()
            .unwrap_or_else(|e| panic!("storm seed {seed}: {e}"));
    }
    let cfg = StormConfig::default();
    moving_storm(0xBEE, &cfg).validate().expect("moving_storm");
    storm_with_eye(0xE7E, &cfg)
        .validate()
        .expect("storm_with_eye (annulus with hole)");
}

#[test]
fn moving_front_validates() {
    for seed in [0u64, 4, 99] {
        moving_front(seed, &FrontConfig::default())
            .validate()
            .unwrap_or_else(|e| panic!("front seed {seed}: {e}"));
    }
}

#[test]
fn grid_network_workloads_validate() {
    let net = GridNetwork::new(5, 100.0);
    net.as_line().validate().expect("street network line");
    for seed in [0u64, 7, 42] {
        net.random_drive(seed, 30, 2.0)
            .validate()
            .unwrap_or_else(|e| panic!("drive seed {seed}: {e}"));
    }
}

#[test]
fn blob_field_validates() {
    blob_field(0xB10B, 4, 10.0, 9)
        .validate()
        .expect("blob field region");
}
