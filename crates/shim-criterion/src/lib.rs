//! Offline drop-in shim for the subset of the [`criterion`] benchmarking
//! API this workspace's benches use.
//!
//! The build container has no registry access, so the real `criterion`
//! crate cannot be vendored. This shim keeps the bench binaries compiling
//! and producing *useful* numbers: each benchmark runs a short warmup, then
//! a fixed number of timed batches, and reports the median per-iteration
//! wall time. It performs no statistical analysis, no outlier detection and
//! writes no HTML reports — it is a measurement harness, not Criterion.
//!
//! Supported surface: [`Criterion::default`], `measurement_time`,
//! `sample_size`, `bench_function`, `benchmark_group`,
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId::new`],
//! [`BenchmarkId::from_parameter`], [`Bencher::iter`], and both forms of
//! [`criterion_group!`] plus [`criterion_main!`].
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for a parameterised benchmark (shim of
/// `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is just the parameter (group name supplies context).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness passed to benchmark closures (shim of
/// `criterion::Bencher`).
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
}

impl Bencher<'_> {
    /// Time `routine`, collecting `sample_count` batched samples after a
    /// short warmup. The routine's return value is passed through
    /// [`black_box`] so the optimiser cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + batch sizing: grow the batch until one batch takes
        // at least ~1ms (or 64 iters, whichever first hits the budget).
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            let nanos = start.elapsed().as_nanos() as f64;
            self.samples.push(nanos / batch as f64);
        }
    }
}

fn report(id: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_nanos(lo),
        fmt_nanos(median),
        fmt_nanos(hi)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepted for compatibility; the shim's sampling is fixed-count, so
    /// the measurement-time budget is ignored.
    pub fn measurement_time(self, _dur: Duration) -> Criterion {
        self
    }

    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; warmup is automatic in the shim.
    pub fn warm_up_time(self, _dur: Duration) -> Criterion {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(id, &mut samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// No-op finaliser (the real Criterion prints a summary here).
    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks (shim of
/// `criterion::BenchmarkGroup<WallTime>`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; throughput is not reported by the shim.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut b);
        report(&full, &mut samples);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        report(&full, &mut samples);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Throughput hint (shim of `criterion::Throughput`); accepted but unused.
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Define a benchmark group runner (shim of `criterion::criterion_group!`).
///
/// Supports both the positional form
/// `criterion_group!(benches, f1, f2)` and the config form
/// `criterion_group!{name = benches; config = expr; targets = f1, f2}`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)*) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the bench binary's `main` (shim of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_bench_with_input_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let n = 5u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
