//! # `mob` — a moving objects database library
//!
//! A from-scratch Rust implementation of the discrete data model of
//! **"A Data Model and Data Structures for Moving Objects Databases"**
//! (Forlizzi, Güting, Nardelli & Schneider, SIGMOD 2000).
//!
//! This facade re-exports the whole stack:
//!
//! * [`base`] — base/time types, intervals, range sets (Secs 3.2.1, 3.2.3);
//! * [`spatial`] — the spatial algebra: point(s), line, region with the
//!   full carrier-set invariants and boolean set operations (Sec 3.2.2);
//! * [`core`] — the sliced representation: unit types, the `mapping`
//!   constructor, lifted operations and the Sec 5 algorithms;
//! * [`storage`] — the Sec 4 attribute data structures (root records,
//!   database arrays, subarrays, page store);
//! * [`par`] — the scoped worker pool behind the relation-wide
//!   parallel scans;
//! * [`rel`] — a minimal relational engine so the paper's queries run;
//! * [`obs`] — query observability: the metrics registry, span timing
//!   and the EXPLAIN capture every layer above reports into;
//! * [`gen`] — seeded workload generators.
//!
//! ```
//! use mob::prelude::*;
//!
//! // A plane climbing north-east, sampled at three instants.
//! let flight = MovingPoint::from_samples(&[
//!     (t(0.0), pt(0.0, 0.0)),
//!     (t(1.0), pt(3.0, 4.0)),
//!     (t(2.0), pt(3.0, 10.0)),
//! ]);
//! assert_eq!(flight.at_instant(t(0.5)).unwrap(), pt(1.5, 2.0));
//! assert_eq!(flight.trajectory().length().get(), 11.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mob_base as base;
pub use mob_core as core;
pub use mob_gen as gen;
pub use mob_obs as obs;
pub use mob_par as par;
pub use mob_rel as rel;
pub use mob_spatial as spatial;
pub use mob_storage as storage;

/// The most common imports in one place.
pub mod prelude {
    pub use mob_base::{
        r, t, Instant, Interval, Intime, Periods, RangeSet, Real, Text, TimeInterval, Val,
    };
    pub use mob_core::{
        lift1, lift2, ConstUnit, MCycle, MFace, MSeg, Mapping, MappingBuilder, MovingBool,
        MovingInt, MovingLine, MovingPoint, MovingPoints, MovingReal, MovingRegion, MovingString,
        PointMotion, ULine, UPoint, UPoints, UReal, URegion, Unit,
    };
    pub use mob_rel::{AttrType, AttrValue, Relation, Schema, Tuple};
    pub use mob_spatial::{
        pt, rect_ring, seg, Cube, Face, Line, Point, Points, Rect, Region, Ring, Seg,
    };
}
