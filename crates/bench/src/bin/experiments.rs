//! The experiment driver: regenerates every measurable table of
//! DESIGN.md §2 (E1–E5, Q1–Q2) and prints the rows that EXPERIMENTS.md
//! records. Run with:
//!
//! ```sh
//! cargo run --release -p mob-bench --bin experiments
//! ```
//!
//! Times are medians of repeated runs (wall clock); the *shape* of each
//! series (logarithmic / linear / flat) is the reproduced result, not
//! the absolute numbers.
//!
//! `--explain` skips the timing tables and instead re-derives the E6/E7
//! *complexity* columns (header probes, unit decodes) purely from the
//! `mob-obs` registry, printing one EXPLAIN operator tree per query and
//! checking the Section-5 bounds (O(log n) `atinstant`,
//! O(q·log(n/q) + q) batch probing) against the measured counts, plus
//! the E10 planner bound (`index.nodes_visited + index.candidates <
//! scan.tuples` on a selective window query, answers index-invariant).

use mob_base::t;
use mob_bench::*;
use mob_core::moving::mregion::inside;
use mob_core::{ConstUnit, Mapping, MappingBuilder, UReal, Unit};
use mob_gen::plane_fleet;
use mob_rel::{close_encounters, long_flights, planes_relation, ScanOpts};
use mob_spatial::{pt, Region};
use mob_storage::dbarray::save_array_with_threshold;
use mob_storage::mapping_store::save_mpoint;
use mob_storage::{open_mpoint, PageStore, Verify};

fn header(title: &str) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
}

/// E1: atinstant — O(log n + r).
fn e1() {
    header("E1  atinstant(moving region): O(log n + r) [Sec 5.1]");
    println!(
        "{:>8} {:>8} {:>14}   (fixed r = 12 msegs/unit)",
        "n units", "probes", "median ns/op"
    );
    for n in [4usize, 16, 64, 256, 1024, 4096] {
        let storm = bench_storm(n, 12);
        let probes = probe_instants(64);
        let mut k = 0;
        let ns = median_nanos(9, || {
            for _ in 0..64 {
                k = (k + 1) % probes.len();
                std::hint::black_box(storm.at_instant(probes[k]));
            }
        });
        println!("{:>8} {:>8} {:>14}", n, 64, ns / 64);
    }
    println!(
        "{:>8} {:>8} {:>14}   (fixed n = 8 units)",
        "r msegs", "probes", "median ns/op"
    );
    for r in [8usize, 16, 32, 64, 128, 256] {
        let storm = bench_storm(8, r);
        let probes = probe_instants(64);
        let mut k = 0;
        let ns = median_nanos(9, || {
            for _ in 0..64 {
                k = (k + 1) % probes.len();
                std::hint::black_box(storm.at_instant(probes[k]));
            }
        });
        println!("{:>8} {:>8} {:>14}", r, 64, ns / 64);
    }
    println!("expected shape: ~flat in n (log factor), ~linear(ithmic) in r");
}

/// E2: inside — O(n + m + S), O(n + m) with disjoint cubes.
fn e2() {
    header("E2  inside(mpoint, mregion): O(n + m + S) [Sec 5.2]");
    println!("{:>8} {:>10} {:>14}", "n=m", "S msegs", "median ns");
    for n in [4usize, 8, 16, 32, 64, 128] {
        let storm = bench_storm(n, 12);
        let point = crossing_point(n);
        let s = storm.total_msegs();
        let ns = median_nanos(7, || {
            std::hint::black_box(inside(&point, &storm));
        });
        println!("{:>8} {:>10} {:>14}", n, s, ns);
    }
    println!(
        "{:>8} {:>10} {:>14}   (crossing point, n=m=8)",
        "verts", "S msegs", "median ns"
    );
    for verts in [8usize, 16, 32, 64, 128, 256] {
        let storm = bench_storm(8, verts);
        let point = crossing_point(8);
        let ns = median_nanos(7, || {
            std::hint::black_box(inside(&point, &storm));
        });
        println!("{:>8} {:>10} {:>14}", verts, storm.total_msegs(), ns);
    }
    println!(
        "{:>8} {:>10} {:>14}   (disjoint bounding cubes fast path)",
        "verts", "S msegs", "median ns"
    );
    for verts in [8usize, 16, 32, 64, 128, 256] {
        let storm = bench_storm(8, verts);
        let point = far_point(8);
        let ns = median_nanos(7, || {
            std::hint::black_box(inside(&point, &storm));
        });
        println!("{:>8} {:>10} {:>14}", verts, storm.total_msegs(), ns);
    }
    println!("expected shape: linear in S when cubes intersect; flat in S when disjoint");
}

/// E3: concat is O(1) per unit; result alternates and is minimal.
fn e3() {
    header("E3  concat / builder merge: O(1) per unit [Sec 5.2]");
    println!("{:>10} {:>14} {:>14}", "units", "median ns", "ns/unit");
    for n in [1024usize, 4096, 16384, 65536] {
        let ns = median_nanos(7, || {
            let mut b = MappingBuilder::new();
            for k in 0..n {
                b.push(ConstUnit::new(
                    mob_base::Interval::closed_open(t(k as f64), t(k as f64 + 1.0)),
                    k % 2 == 0,
                ));
            }
            std::hint::black_box(b.finish().num_units());
        });
        println!("{:>10} {:>14} {:>14.2}", n, ns, ns as f64 / n as f64);
    }
    // Alternation / minimality check on a real inside computation.
    let storm = bench_storm(16, 16);
    let point = crossing_point(16);
    let mb = inside(&point, &storm);
    let mut alternations_ok = true;
    for w in mb.units().windows(2) {
        if w[0].interval().adjacent(w[1].interval()) && w[0].value() == w[1].value() {
            alternations_ok = false;
        }
    }
    println!(
        "inside() result: {} boolean units, adjacent-distinct invariant holds: {}",
        mb.num_units(),
        alternations_ok
    );
    println!("expected shape: constant ns/unit");
}

/// E4: region close — O(r log r).
fn e4() {
    header("E4  region close(): O(r log r) [Sec 4.1]");
    println!("{:>10} {:>10} {:>14}", "segments", "faces", "median ns");
    for k in [4usize, 16, 64, 144, 400] {
        let soup = square_grid_soup(k);
        let ns = median_nanos(5, || {
            std::hint::black_box(Region::close(soup.clone()).expect("valid soup"));
        });
        println!("{:>10} {:>10} {:>14}", 4 * k, k, ns);
    }
    println!(
        "expected shape: near-linear (validation is quadratic in the worst case; sort is r log r)"
    );
}

/// E5: inline vs external DbArray placement.
fn e5() {
    header("E5  database arrays: inline vs external placement [Sec 4 / DG98]");
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>12}",
        "units", "bytes", "placement", "pages", "load ns"
    );
    for n in [2usize, 4, 8, 16, 64, 256, 1024] {
        let m = crossing_point(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let bytes = stored.num_units as usize * 50; // UPointRecord::SIZE
        let placement = if stored.units.is_inline() {
            "inline"
        } else {
            "external"
        };
        let pages = store.pages_written();
        let ns = median_nanos(9, || {
            std::hint::black_box(
                open_mpoint(&stored, &store, Verify::Full)
                    .and_then(|v| v.materialize_validated())
                    .expect("store is well-formed"),
            );
        });
        println!(
            "{:>10} {:>12} {:>10} {:>10} {:>12}",
            m.num_units(),
            bytes,
            placement,
            pages,
            ns
        );
    }
    // Threshold sweep: the same array under different thresholds.
    println!("\nthreshold sweep for a 64-unit mpoint (3200 bytes):");
    println!("{:>12} {:>10} {:>10}", "threshold", "placement", "pages");
    let m = crossing_point(64);
    let units: Vec<mob_core::UPoint> = m.units().to_vec();
    for thr in [256usize, 1024, 4096, 16384] {
        let mut store = PageStore::new();
        let recs: Vec<f64> = units
            .iter()
            .flat_map(|u| {
                let mo = u.motion();
                [mo.x0.get(), mo.x1.get(), mo.y0.get(), mo.y1.get()]
            })
            .collect();
        let saved = save_array_with_threshold(&recs, &mut store, thr);
        println!(
            "{:>12} {:>10} {:>10}",
            thr,
            if saved.is_inline() {
                "inline"
            } else {
                "external"
            },
            store.pages_written()
        );
    }
    println!("expected shape: small values inline (0 pages); large values spill to page chains");
}

/// E6: query-over-storage — materialize-then-query vs query-in-place.
fn e6() {
    use mob_core::UnitSeq;
    header("E6  query-over-storage: atinstant on serialized mpoints [UnitSeq]");
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "n units",
        "material ns",
        "in-place ns",
        "speedup",
        "pages(m)",
        "pages(ip)",
        "decoded",
        "hits"
    );
    for n in [64usize, 256, 1024, 4096, 16384] {
        let m = crossing_point(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let probe = t(SPAN * 0.37);
        store.reset_counters();
        let mat = median_nanos(9, || {
            let mem = open_mpoint(&stored, &store, Verify::Full)
                .and_then(|v| v.materialize_validated())
                .expect("store is well-formed");
            std::hint::black_box(mem.at_instant(probe));
        });
        let pages_m = store.pages_read();
        // Verification happens once at open time; the measured loop is
        // the per-query cost.
        let view = open_mpoint(&stored, &store, Verify::Full).expect("store is well-formed");
        store.reset_counters();
        view.reset_counters();
        let inp = median_nanos(9, || {
            std::hint::black_box(view.at_instant(probe));
        });
        let pages_ip = store.pages_read();
        println!(
            "{:>8} {:>14} {:>14} {:>8.1} {:>10} {:>10} {:>8} {:>6}",
            m.num_units(),
            mat,
            inp,
            mat as f64 / inp.max(1) as f64,
            pages_m,
            pages_ip,
            view.units_decoded(),
            view.cache_hits()
        );
    }
    println!("expected shape: materialize linear in n; in-place ~flat (O(log n) header reads + 1 decode)");
    println!("decoded/hits: 9 repeated probes of one instant decode its unit once, then hit the view cache");
}

/// E7: batch atinstant — one merge scan vs q independent binary searches.
fn e7() {
    use mob_core::batch_at_instant;
    header("E7  batch atinstant: merge scan vs per-call binary search [DESIGN.md §8]");
    let n = 16384usize;
    let m = crossing_point(n);
    let mut store = PageStore::new();
    let stored = save_mpoint(&m, &mut store);
    println!(
        "workload: one {}-unit mpoint, sorted probe sets of growing size",
        m.num_units()
    );
    println!(
        "{:>8} {:>14} {:>14} {:>8} {:>9} {:>8} {:>6}",
        "probes", "per-call ns", "batch ns", "speedup", "headers", "decoded", "hits"
    );
    for q in [16usize, 64, 256, 1024, 4096] {
        let probes = probe_instants(q);
        // In-memory mapping: q·O(log n) vs one galloping merge scan.
        let per_call = median_nanos(7, || {
            for ti in &probes {
                std::hint::black_box(m.at_instant(*ti));
            }
        });
        let batch = median_nanos(7, || {
            std::hint::black_box(batch_at_instant(&m, &probes));
        });
        // Storage-backed view: count header reads and unit decodes for
        // ONE batch pass (the decode bound is min(q, n)).
        let view = open_mpoint(&stored, &store, Verify::Full).expect("store is well-formed");
        view.reset_counters();
        let answers = batch_at_instant(&view, &probes);
        assert_eq!(answers.len(), q);
        println!(
            "{:>8} {:>14} {:>14} {:>8.1} {:>9} {:>8} {:>6}",
            q,
            per_call,
            batch,
            per_call as f64 / batch.max(1) as f64,
            view.headers_read(),
            view.units_decoded(),
            view.cache_hits()
        );
    }
    println!(
        "expected shape: batch ~linear in q with a small constant; per-call pays log n per probe;"
    );
    println!("decoded units stay <= min(q, n) on the stored path (merge order, no re-decodes)");
}

/// E8: thread scaling of the relation-wide snapshot scan.
fn e8() {
    header("E8  parallel snapshot_at: thread scaling on a plane fleet [DESIGN.md §8]");
    let n = 10_000usize;
    let fleet = bench_fleet(n, 12);
    let probe = t(SPAN * 0.5);
    let baseline = fleet.snapshot_at(probe, &ScanOpts::default()).unwrap().0;
    println!(
        "workload: snapshot_at over {} tuples (12-leg flights); host cores: {}",
        fleet.len(),
        std::thread::available_parallelism().map_or(1, |p| p.get())
    );
    println!(
        "{:>8} {:>14} {:>9} {:>13}",
        "threads", "median ns", "speedup", "deterministic"
    );
    let t1 = median_nanos(5, || {
        std::hint::black_box(fleet.snapshot_at(probe, &ScanOpts::default()).unwrap().0);
    });
    for th in [1usize, 2, 4, 8] {
        let opts = ScanOpts::new().threads(th);
        let ns = if th == 1 {
            t1
        } else {
            median_nanos(5, || {
                std::hint::black_box(fleet.snapshot_at(probe, &opts).unwrap().0);
            })
        };
        let same = fleet.snapshot_at(probe, &opts).unwrap().0 == baseline;
        println!(
            "{:>8} {:>14} {:>9.2} {:>13}",
            th,
            ns,
            t1 as f64 / ns.max(1) as f64,
            same
        );
    }
    println!("expected shape: near-linear speedup up to the physical core count, flat beyond;");
    println!("on a single-core host the profile is flat — the determinism column must stay true everywhere");
}

/// E9: durable commit overhead — checksum framing + fsync + atomic
/// rename vs the plain in-memory encode of the same store file.
fn e9() {
    use mob_storage::{DurableStore, FsIo, MemIo, RootRecord, StoreFile};
    header("E9  durable commit: checksum framing + fsync vs in-memory encode [DESIGN.md §10]");
    const CHUNK: usize = 4096;
    println!("workload: plane-fleet store files of growing size, chunk size {CHUNK} B;");
    println!("encode = StoreFile::to_bytes (no durability); mem commit adds framing +");
    println!("per-chunk checksums (no disk); fs commit adds real write + fsync + rename;");
    println!("reopen = read + superblock/chunk verification + catalog decode");
    println!(
        "{:>8} {:>10} {:>13} {:>13} {:>13} {:>13}",
        "flights", "bytes", "encode ns", "mem commit", "fs commit", "reopen ns"
    );
    let tmp = std::env::temp_dir().join(format!("mob-e9-{}", std::process::id()));
    for n in [16usize, 64, 256] {
        let mut file = StoreFile::new();
        for p in plane_fleet(0xD00D, n, 12) {
            let stored = save_mpoint(&p.flight, file.store_mut());
            file.put(
                format!("{}/{}", p.airline, p.id),
                RootRecord::MPoint(stored),
            );
        }
        let bytes = file.to_bytes().expect("encode");
        let encode = median_nanos(5, || {
            std::hint::black_box(file.to_bytes().expect("encode"));
        });
        let mut mem = DurableStore::options()
            .chunk_size(CHUNK)
            .open(MemIo::new())
            .expect("mem dir");
        let mem_commit = median_nanos(5, || {
            let mut txn = mem.begin();
            txn.put_store_file(&file).expect("stage");
            txn.commit().expect("mem commit");
        });
        let dir = tmp.join(format!("n{n}"));
        let mut fs = DurableStore::options()
            .chunk_size(CHUNK)
            .open(FsIo::open(&dir).expect("tmp dir"))
            .expect("fs dir");
        let fs_commit = median_nanos(5, || {
            let mut txn = fs.begin();
            txn.put_store_file(&file).expect("stage");
            txn.commit().expect("fs commit");
        });
        drop(fs);
        let reopen = median_nanos(5, || {
            let io = FsIo::open(&dir).expect("tmp dir");
            let store = DurableStore::options()
                .chunk_size(CHUNK)
                .open(io)
                .expect("reopen");
            std::hint::black_box(store.snapshot().expect("committed"));
        });
        println!(
            "{:>8} {:>10} {:>13} {:>13} {:>13} {:>13}",
            n,
            bytes.len(),
            encode,
            mem_commit,
            fs_commit,
            reopen
        );
    }
    let _ = std::fs::remove_dir_all(&tmp);
    println!("expected shape: mem commit stays the same order as encode (framing is one extra");
    println!("pass); fs commit is fsync-dominated — a large flat floor, then linear in bytes;");
    println!("the durability tax is the honest price of old-or-new crash atomicity");
}

/// E10: selective window query — plan/prune/execute over the packed
/// R-tree vs the reference full scan (DESIGN.md §11).
fn e10() {
    use mob_base::Interval;
    use mob_rel::IndexPolicy;
    use mob_spatial::rect_ring;
    header("E10  selective window query: packed R-tree pruning vs full scan [DESIGN.md §11]");
    let zone = Region::from_ring(rect_ring(-60.0, -60.0, 60.0, 60.0));
    let window = Interval::closed(t(40.0), t(55.0));
    println!("probe: passes(flight, 120x120 zone of the 2000x2000 arena, window [40, 55]);");
    println!("full = IndexPolicy::Off reference scan, indexed = Force over the bulk-loaded");
    println!("STR R-tree; `same` is byte-identical relation equality, asserted not sampled");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>10} {:>8} {:>6}",
        "flights", "build ns", "full ns", "indexed ns", "cands", "speedup", "same"
    );
    for n in [1000usize, 4000, 10000] {
        let mut fleet = bench_fleet(n, 12);
        let build = median_nanos(3, || {
            let mut f = fleet.clone();
            f.build_index("flight").expect("flight is an mpoint attr");
            std::hint::black_box(&f);
        });
        fleet
            .build_index("flight")
            .expect("flight is an mpoint attr");
        let off = ScanOpts::new().stats(true).index(IndexPolicy::Off);
        let on = off.clone().index(IndexPolicy::Force);
        let (expect, _) = fleet
            .passes("flight", &zone, &window, &off)
            .expect("full scan");
        let full = median_nanos(5, || {
            std::hint::black_box(
                fleet
                    .passes("flight", &zone, &window, &off)
                    .expect("scan")
                    .0,
            );
        });
        let indexed = median_nanos(5, || {
            std::hint::black_box(fleet.passes("flight", &zone, &window, &on).expect("scan").0);
        });
        let (got, stats) = fleet
            .passes("flight", &zone, &window, &on)
            .expect("pruned scan");
        let stats = stats.expect("stats requested");
        assert_eq!(stats.index_fallbacks, 0, "clean index must not fall back");
        println!(
            "{:>8} {:>12} {:>14} {:>14} {:>10} {:>8.1} {:>6}",
            n,
            build,
            full,
            indexed,
            stats.candidates.expect("pruned path reports candidates"),
            full as f64 / indexed.max(1) as f64,
            got == expect
        );
        assert_eq!(got, expect, "pruning must never change the answer");
    }
    println!("expected shape: candidates stay a small fraction of the fleet, so the indexed");
    println!("scan's advantage grows with fleet size while build cost stays a one-off sort;");
    println!("`same` must read true everywhere — pruning is a performance story, never a");
    println!("correctness one (the planner falls back to the full scan before risking it)");
}

/// E11: live ingestion — a delta commit's durable bytes are bounded by
/// the appended units (plus fixed framing), not by the store size; the
/// registry's `durable.bytes_committed` counter is the witness.
fn e11() {
    use mob_storage::mapping_store::UPointRecord;
    use mob_storage::{DurableStore, FixedRecord, Ingestor, MemIo};
    header(
        "E11  live ingestion: delta commit bytes ~ appended units, not store size [DESIGN.md §13]",
    );
    if !mob_obs::enabled() {
        println!(
            "observability is disabled ({}=0) — bytes cannot be derived",
            mob_obs::OBS_ENV
        );
        return;
    }
    const CHUNK: usize = 256;
    const HISTORY: usize = 32;
    const RECORD: usize = <UPointRecord as FixedRecord>::SIZE;
    println!("workload: per-object tails, one sample per object per tick, delta commit each");
    println!("tick; {HISTORY} ticks of history first, then one measured tick and a compaction;");
    println!("bound asserted: delta bytes <= 1024 + 4*k*{RECORD} (k = units staged), and the");
    println!("measured delta stays well under the compacted snapshot it avoids rewriting");
    println!(
        "{:>8} {:>10} {:>8} {:>13} {:>13} {:>8}",
        "objects", "history", "k units", "delta bytes", "snap bytes", "ratio"
    );
    for n in [16usize, 64, 256] {
        let mut store = DurableStore::options()
            .chunk_size(CHUNK)
            .open(MemIo::new())
            .expect("open");
        let mut ingest = Ingestor::new();
        let mut tick = 0usize;
        for _ in 0..HISTORY {
            for obj in 0..n {
                let x = (obj % 7) as f64;
                let wiggle = (tick % 2) as f64 * 3.0;
                ingest
                    .append(
                        &format!("obj/{obj:04}"),
                        t(tick as f64),
                        pt(x + tick as f64, wiggle - x),
                    )
                    .expect("fresh instants");
            }
            let mut txn = store.begin();
            ingest.seal_into(&mut txn);
            txn.commit().expect("history commit");
            tick += 1;
        }

        // The measured tick: k = n sealed units, one delta commit.
        let mut staged = 0usize;
        let ((), report) = mob_obs::explain("e11.delta_commit", || {
            for obj in 0..n {
                let x = (obj % 7) as f64;
                let wiggle = (tick % 2) as f64 * 3.0;
                ingest
                    .append(
                        &format!("obj/{obj:04}"),
                        t(tick as f64),
                        pt(x + tick as f64, wiggle - x),
                    )
                    .expect("fresh instants");
            }
            let mut txn = store.begin();
            staged = ingest.seal_into(&mut txn);
            txn.commit().expect("measured commit");
        });
        let delta_bytes = report.metrics().get("durable.bytes_committed");
        let bound = 1024 + 4 * staged as u64 * RECORD as u64;
        assert!(
            delta_bytes <= bound,
            "E11: delta commit wrote {delta_bytes} B for {staged} units (bound {bound} B)"
        );

        let ((), report) = mob_obs::explain("e11.compact", || {
            store.compact().expect("compact");
        });
        let snap_bytes = report.metrics().get("durable.bytes_committed");
        assert!(
            delta_bytes * 4 <= snap_bytes,
            "E11: delta ({delta_bytes} B) must stay well under the snapshot ({snap_bytes} B)"
        );
        println!(
            "{:>8} {:>10} {:>8} {:>13} {:>13} {:>8.1}",
            n,
            HISTORY * n,
            staged,
            delta_bytes,
            snap_bytes,
            snap_bytes as f64 / delta_bytes.max(1) as f64
        );
    }
    println!("expected shape: delta bytes grow with k (the tick's appended units) and are");
    println!("flat in the history size; the snapshot/delta ratio grows with history — the");
    println!("WAL path turns per-tick durability from O(store) into O(appended units)");
}

/// A1: ablation of the bounding-cube summary field (Sec 4.2).
fn ablation() {
    header("A1  ablation: bounding-cube fast path (disjoint workloads)");
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>8}",
        "verts", "S msegs", "cube ns", "scan ns", "speedup"
    );
    for verts in [8usize, 32, 128] {
        let storm = bench_storm(8, verts);
        let point = far_point(8);
        let with_cube = median_nanos(7, || {
            std::hint::black_box(mob_core::lift2(&point, &storm, |iv, up, ur| {
                ur.inside_units(up, iv)
            }));
        });
        let scan = median_nanos(7, || {
            std::hint::black_box(mob_core::lift2(&point, &storm, |iv, up, ur| {
                ur.inside_units_scan(up, iv)
            }));
        });
        println!(
            "{:>8} {:>10} {:>14} {:>14} {:>8.1}",
            verts,
            storm.total_msegs(),
            with_cube,
            scan,
            scan as f64 / with_cube.max(1) as f64
        );
    }
    println!("expected shape: cube path flat, scan path linear in S");
}

/// Q1/Q2: the Section 2 queries.
fn queries() {
    header("Q1/Q2  Section 2 queries on generated fleets");
    println!(
        "{:>8} {:>10} {:>14} {:>10} {:>14} {:>8}",
        "planes", "q1 rows", "q1 ns", "q2 pairs", "q2 ns", "q2/q1"
    );
    for n in [8usize, 16, 32, 64] {
        let planes = planes_relation(
            plane_fleet(0xF1EE7, n, 12)
                .into_iter()
                .map(|p| (p.airline, p.id, p.flight))
                .collect(),
        );
        let mut q1rows = 0;
        let q1 = median_nanos(5, || {
            q1rows = long_flights(&planes, "Lufthansa", 1500.0).len();
        });
        let mut q2rows = 0;
        let q2 = median_nanos(3, || {
            q2rows = close_encounters(&planes, 25.0).len();
        });
        println!(
            "{:>8} {:>10} {:>14} {:>10} {:>14} {:>8.1}",
            n,
            q1rows,
            q1,
            q2rows,
            q2,
            q2 as f64 / q1.max(1) as f64
        );
    }
    println!(
        "expected shape: q1 linear in fleet size; q2 quadratic (nested-loop spatio-temporal join)"
    );
}

/// F1/F8 sanity: the structures behind the figures, as counts.
fn figures() {
    header("F1/F8  structural reproductions (counts, not timings)");
    // Figure 1: sliced representation of a moving real.
    let mreal = Mapping::try_new(vec![
        UReal::linear(
            mob_base::Interval::closed_open(t(0.0), t(1.0)),
            mob_base::r(1.0),
            mob_base::r(0.0),
        ),
        UReal::constant(
            mob_base::Interval::closed_open(t(1.0), t(2.0)),
            mob_base::r(1.0),
        ),
        UReal::quadratic(
            mob_base::Interval::closed(t(2.0), t(3.0)),
            mob_base::r(-1.0),
            mob_base::r(4.0),
            mob_base::r(-3.0),
        ),
    ])
    .expect("disjoint slices");
    println!(
        "Figure 1: moving real with {} slices, deftime {:?}",
        mreal.num_units(),
        mreal.deftime()
    );
    // Figure 8: refinement partition sizes.
    let a = crossing_point(8);
    let b = crossing_point(12);
    let parts = mob_core::refinement_both(&a, &b);
    println!(
        "Figure 8: |a|={} units, |b|={} units, refinement partition (both defined): {} parts",
        a.num_units(),
        b.num_units(),
        parts.len()
    );
}

/// `ceil(log2 n)` for `n >= 1`.
fn ceil_log2(n: usize) -> u64 {
    u64::from(usize::BITS - n.max(1).next_power_of_two().leading_zeros()) - 1
}

/// `--explain`: re-derive the E6/E7 complexity columns **solely from
/// the `mob-obs` registry** — every count below is a registry delta
/// captured by [`mob_obs::explain`], none comes from a bespoke
/// per-object accessor — and check them against the paper's bounds.
fn explain_mode() {
    use mob_core::{batch_at_instant, UnitSeq};

    header("EXPLAIN  E6/E7 complexity columns derived from the mob-obs registry");
    if !mob_obs::enabled() {
        println!(
            "observability is disabled ({}=0) — nothing to derive",
            mob_obs::OBS_ENV
        );
        return;
    }

    // E6: one query-in-place atinstant = O(log n) header probes + at
    // most one unit decode (Sec 5.1 over the storage layout of Sec 4).
    println!("\nE6  atinstant on a stored mpoint: headers <= ceil(log2 n)+1, decodes <= 1");
    for n in [64usize, 1024, 16384] {
        let m = crossing_point(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).expect("store is well-formed");
        let probe = t(SPAN * 0.37);
        let (val, report) = mob_obs::explain("e6.atinstant(stored)", || {
            let _op = mob_obs::span("qos.at_instant");
            view.at_instant(probe)
        });
        std::hint::black_box(val);
        print!("{report}");
        let headers = report.metrics().get("view.headers_read");
        let decoded = report.metrics().get("view.units_decoded");
        let bound = ceil_log2(n) + 1;
        let ok = headers <= bound && decoded <= 1;
        println!(
            "  n={n:>6}  headers={headers} (bound {bound})  decoded={decoded} (bound 1)  ok={ok}"
        );
        assert!(
            ok,
            "E6 bound violated for n={n}: headers={headers} > {bound} or decoded={decoded} > 1"
        );
    }

    // E7: a sorted q-probe batch = O(q·log(n/q) + q) header probes via
    // the galloping merge scan — the constant is 2 per level (a gallop
    // read plus a binary-search read) — and at most min(q, n) unit
    // decodes.
    let n = 16384usize;
    let m = crossing_point(n);
    let mut store = PageStore::new();
    let stored = save_mpoint(&m, &mut store);
    let view = open_mpoint(&stored, &store, Verify::Full).expect("store is well-formed");
    println!("\nE7  batch atinstant on a {n}-unit stored mpoint:");
    println!("    headers <= 2q*(ceil(log2(n/q)) + 2), decodes <= min(q, n)");
    for q in [16usize, 256, 4096] {
        let probes = probe_instants(q);
        let (answers, report) = mob_obs::explain("e7.batch_at_instant(stored)", || {
            batch_at_instant(&view, &probes)
        });
        assert_eq!(answers.len(), q);
        print!("{report}");
        let counted = report.metrics().get("core.batch_at_instant.probes");
        let headers = report.metrics().get("view.headers_read");
        let decoded = report.metrics().get("view.units_decoded");
        let hbound = 2 * q as u64 * (ceil_log2(n.div_ceil(q)) + 2);
        let dbound = q.min(UnitSeq::len(&m)) as u64;
        let ok = counted == q as u64 && headers <= hbound && decoded <= dbound;
        println!(
            "  q={q:>5}  probes={counted}  headers={headers} (bound {hbound})  \
             decoded={decoded} (bound {dbound})  ok={ok}"
        );
        assert!(
            ok,
            "E7 bound violated for q={q}: probes={counted}, headers={headers} > {hbound} \
             or decoded={decoded} > {dbound}"
        );
    }
    // E10: the planner's pruning bound on a selective window query.
    // Every count is a registry delta; the pruned answer must be
    // byte-identical to the index-off reference.
    use mob_rel::IndexPolicy;
    let n = 10_000usize;
    let mut fleet = bench_fleet(n, 12);
    fleet
        .build_index("flight")
        .expect("flight is an mpoint attr");
    let zone = Region::from_ring(mob_spatial::rect_ring(-60.0, -60.0, 60.0, 60.0));
    let window = mob_base::Interval::closed(t(40.0), t(55.0));
    let off = ScanOpts::new().index(IndexPolicy::Off);
    let on = ScanOpts::new().index(IndexPolicy::Force);
    println!("\nE10  indexed passes() on a {n}-flight fleet:");
    println!("     index.nodes_visited + index.candidates < scan.tuples, answers index-invariant");
    let (reference, _) = fleet
        .passes("flight", &zone, &window, &off)
        .expect("full scan");
    let ((pruned, _), report) = mob_obs::explain("e10.passes(indexed)", || {
        fleet
            .passes("flight", &zone, &window, &on)
            .expect("pruned scan")
    });
    print!("{report}");
    let nodes = report.metrics().get("index.nodes_visited");
    let cands = report.metrics().get("index.candidates");
    let tuples = report.metrics().get("scan.tuples");
    let identical = pruned == reference;
    let ok = nodes + cands < tuples && identical;
    println!(
        "  n={n:>6}  nodes_visited={nodes}  candidates={cands}  scan.tuples={tuples}  \
         identical={identical}  ok={ok}"
    );
    assert!(
        ok,
        "E10 bound violated: nodes_visited={nodes} + candidates={cands} >= scan.tuples={tuples}, \
         or the pruned answer diverged (identical={identical})"
    );

    println!("\nall registry-derived counts satisfy the Section-5 and planner bounds.");
}

fn main() {
    if std::env::args().any(|a| a == "--explain") {
        println!("mob experiment driver — EXPLAIN mode (registry-derived complexity columns)");
        explain_mode();
        println!("\ndone.");
        return;
    }
    println!("mob experiment driver — reproduces the measurable artifacts of");
    println!("\"A Data Model and Data Structures for Moving Objects Databases\" (SIGMOD 2000)");
    e1();
    e2();
    e3();
    e4();
    e5();
    e6();
    e7();
    e8();
    e9();
    e10();
    e11();
    ablation();
    queries();
    figures();
    println!("\ndone.");
}
