//! # `mob-bench` — shared workload builders for the experiment harness
//!
//! Each experiment of DESIGN.md §2 has a Criterion bench (relative
//! timing, `cargo bench`) and a row generator in the `experiments`
//! binary (absolute scaling tables for EXPERIMENTS.md). Both use the
//! builders in this crate so they measure identical workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mob_base::{t, Instant};
use mob_core::{Mapping, MovingPoint, MovingRegion};
use mob_gen::{flight_mpoint, storm};
use mob_spatial::{Point, Seg};

/// Time span of all benchmark workloads.
pub const SPAN: f64 = 100.0;

/// A moving region with exactly `units` units and `verts` moving
/// segments per unit (so `S = units · verts`).
pub fn bench_storm(units: usize, verts: usize) -> MovingRegion {
    storm(0xC0FFEE, units, verts)
}

/// A moving point with ~`units` units crossing the storm's corridor.
pub fn crossing_point(units: usize) -> MovingPoint {
    flight_mpoint(
        0xBEEF,
        Point::from_f64(-50.0, -20.0),
        Point::from_f64(180.0, 80.0),
        0.0,
        SPAN,
        units,
        1.0,
    )
}

/// A moving point far away from the storm (disjoint bounding cubes).
pub fn far_point(units: usize) -> MovingPoint {
    flight_mpoint(
        0xFEED,
        Point::from_f64(5000.0, 5000.0),
        Point::from_f64(6000.0, 6000.0),
        0.0,
        SPAN,
        units,
        1.0,
    )
}

/// Probe instants spread over the workload span (for `atinstant`).
pub fn probe_instants(n: usize) -> Vec<Instant> {
    (0..n)
        .map(|k| t(SPAN * (k as f64 + 0.5) / n as f64))
        .collect()
}

/// A seeded `n`-plane fleet relation with ~`units` units per flight —
/// the workload behind the relation-wide parallel scans (E8).
pub fn bench_fleet(n: usize, units: usize) -> mob_rel::Relation {
    mob_rel::planes_relation(
        mob_gen::plane_fleet(0xF1EE7, n, units)
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    )
}

/// The boundary soup of `k` disjoint unit squares — `4k` segments that
/// `close()` must assemble into `k` faces.
pub fn square_grid_soup(k: usize) -> Vec<Seg> {
    let mut out = Vec::with_capacity(4 * k);
    let cols = (k as f64).sqrt().ceil() as usize;
    for i in 0..k {
        let x = (i % cols) as f64 * 2.0;
        let y = (i / cols) as f64 * 2.0;
        out.push(mob_spatial::seg(x, y, x + 1.0, y));
        out.push(mob_spatial::seg(x + 1.0, y, x + 1.0, y + 1.0));
        out.push(mob_spatial::seg(x, y + 1.0, x + 1.0, y + 1.0));
        out.push(mob_spatial::seg(x, y, x, y + 1.0));
    }
    out
}

/// Median wall-clock nanoseconds of `f` over `iters` runs (the
/// `experiments` binary's measurement primitive — Criterion handles the
/// statistically careful version).
pub fn median_nanos(iters: usize, mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let start = std::time::Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Sanity helper: a mapping's unit count (for table rows).
pub fn units_of<U: mob_core::Unit>(m: &Mapping<U>) -> usize {
    m.num_units()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_requested_sizes() {
        let s = bench_storm(8, 12);
        assert_eq!(s.num_units(), 8);
        assert_eq!(s.total_msegs(), 96);
        let p = crossing_point(32);
        assert!(p.num_units() >= 28);
        assert_eq!(square_grid_soup(9).len(), 36);
    }

    #[test]
    fn crossing_point_intersects_storm_corridor() {
        let s = bench_storm(8, 12);
        let p = crossing_point(16);
        let inside = s.contains_moving_point(&p);
        // The probe trajectory is built to pass through the storm.
        assert!(inside.when_true().num_intervals() >= 1);
        // And the far point never touches it.
        let far = s.contains_moving_point(&far_point(16));
        assert!(far.when_true().is_empty());
    }

    #[test]
    fn median_measures_something() {
        let ns = median_nanos(5, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(ns > 0);
    }
}
