//! E6: query-over-storage — the `UnitSeq` access layer (DESIGN.md §2).
//!
//! Compares the two ways of answering a single-instant query against a
//! serialized `moving(point)`:
//!
//! * **materialize-then-query** — `open_mpoint(..)?.materialize_validated()`
//!   decodes all `n` unit records into a `Mapping`, then `at_instant`
//!   binary-searches it;
//! * **query-in-place** — `open_mpoint` wraps the stored records in a
//!   lazy [`MappingView`] (verified once, outside the measured loop —
//!   that cost is paid at open time, not per query) and the *same*
//!   `at_instant` (a `UnitSeq` default method) probes `O(log n)`
//!   interval headers and decodes one record.
//!
//! The crossover is immediate and the gap widens linearly with `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::{crossing_point, SPAN};
use mob_core::UnitSeq;
use mob_rel::{long_flights, planes_relation, save_relation, OnError, Relation};
use mob_storage::mapping_store::save_mpoint;
use mob_storage::{open_mpoint, PageStore, Verify};
use std::hint::black_box;
use std::sync::Arc;

fn atinstant_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("qos/atinstant");
    group.sample_size(20);
    for n in [1024usize, 10_240, 40_960] {
        let m = crossing_point(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let probe = mob_base::t(SPAN * 0.37);
        group.bench_with_input(BenchmarkId::new("materialize-then-query", n), &n, |b, _| {
            b.iter(|| {
                let mem = open_mpoint(&stored, &store, Verify::Full)
                    .and_then(|v| v.materialize_validated())
                    .expect("store is well-formed");
                black_box(mem.at_instant(probe))
            });
        });
        let view = open_mpoint(&stored, &store, Verify::Full).expect("store is well-formed");
        group.bench_with_input(BenchmarkId::new("query-in-place", n), &n, |b, _| {
            b.iter(|| black_box(view.at_instant(probe)));
        });
    }
    group.finish();
}

fn query1_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("qos/query1-long-flights");
    group.sample_size(10);
    for n in [8usize, 32] {
        let planes = planes_relation(
            mob_gen::plane_fleet(0xD00D, n, 256)
                .into_iter()
                .map(|p| (p.airline, p.id, p.flight))
                .collect(),
        );
        let mut store = PageStore::new();
        let stored = save_relation(&planes, &mut store).expect("fleet serializes");
        let store = Arc::new(store);
        group.bench_with_input(BenchmarkId::new("materialize", n), &n, |b, _| {
            b.iter(|| {
                let rel = mob_rel::load_relation(&stored, &store).expect("loads");
                black_box(long_flights(&rel, "Lufthansa", 1500.0).len())
            });
        });
        group.bench_with_input(BenchmarkId::new("in-place", n), &n, |b, _| {
            b.iter(|| {
                let rel =
                    Relation::from_stored(&stored, store.clone(), OnError::Fail).expect("opens");
                black_box(long_flights(&rel, "Lufthansa", 1500.0).len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, atinstant_backends, query1_backends);
criterion_main!(benches);
