//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **A1** — the Sec 4.2 bounding-cube summary field: `inside` with the
//!   cube fast path vs. always scanning the moving segments.
//! * **A2** — the sorted units array behind Algorithm `atinstant`:
//!   binary search vs. a linear scan over the units.
//! * **A3** — the `concat` merge: building an `inside` result with merge
//!   vs. collecting raw refinement parts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::{bench_storm, far_point};
use mob_core::{lift2, Unit};
use std::hint::black_box;

/// A1: the bounding-cube fast path on spatially disjoint workloads.
fn cube_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/bounding-cube");
    for verts in [16usize, 64, 256] {
        let storm = bench_storm(8, verts);
        let point = far_point(8);
        group.bench_with_input(BenchmarkId::new("with-cube", verts * 8), &verts, |b, _| {
            b.iter(|| black_box(lift2(&point, &storm, |iv, up, ur| ur.inside_units(up, iv))));
        });
        group.bench_with_input(BenchmarkId::new("scan-only", verts * 8), &verts, |b, _| {
            b.iter(|| {
                black_box(lift2(&point, &storm, |iv, up, ur| {
                    ur.inside_units_scan(up, iv)
                }))
            });
        });
    }
    group.finish();
}

/// A2: binary search vs linear scan for unit lookup.
fn unit_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/unit-lookup");
    for n in [64usize, 1024, 16384] {
        let m = {
            let units = (0..n)
                .map(|k| {
                    mob_core::UReal::constant(
                        mob_base::Interval::closed_open(
                            mob_base::t(k as f64),
                            mob_base::t(k as f64 + 1.0),
                        ),
                        mob_base::r(k as f64),
                    )
                })
                .collect();
            mob_core::Mapping::try_new(units).expect("disjoint slices")
        };
        let probes: Vec<mob_base::Instant> = (0..64)
            .map(|k| mob_base::t(n as f64 * (k as f64 + 0.5) / 64.0))
            .collect();
        group.bench_with_input(BenchmarkId::new("binary-search", n), &n, |b, _| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % probes.len();
                black_box(m.unit_index_at(probes[k]))
            });
        });
        group.bench_with_input(BenchmarkId::new("linear-scan", n), &n, |b, _| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % probes.len();
                let t = probes[k];
                black_box(m.units().iter().position(|u| u.interval().contains(&t)))
            });
        });
    }
    group.finish();
}

/// A3: the concat merge keeps lifted results minimal.
fn concat_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/concat-minimality");
    let storm = bench_storm(64, 12);
    let point = mob_bench::crossing_point(64);
    group.bench_function("inside-with-concat", |b| {
        b.iter(|| {
            let r = mob_core::moving::mregion::inside(&point, &storm);
            black_box(r.num_units())
        });
    });
    // Without merge the result would have ~one unit per refinement part;
    // measure the raw refinement size for comparison.
    group.bench_function("raw-refinement-parts", |b| {
        b.iter(|| black_box(mob_core::refinement_both(&point, &storm).len()));
    });
    group.finish();
}

/// A4: the exact critical-time validation schedule of `uregion` units.
fn uregion_validation(c: &mut Criterion) {
    use mob_core::{MCycle, MFace, URegion};
    let mut group = c.benchmark_group("ablation/uregion-validation");
    for verts in [8usize, 32, 128] {
        let r0 = mob_gen::convex_blob(7, mob_spatial::Point::from_f64(0.0, 0.0), 20.0, verts, 0.3);
        let r1 = mob_gen::convex_blob(7, mob_spatial::Point::from_f64(10.0, 5.0), 25.0, verts, 0.3);
        let iv = mob_base::Interval::closed(mob_base::t(0.0), mob_base::t(1.0));
        let cyc = MCycle::interpolate(mob_base::t(0.0), &r0, mob_base::t(1.0), &r1)
            .expect("matching vertex counts");
        group.bench_with_input(BenchmarkId::from_parameter(verts), &verts, |b, _| {
            b.iter(|| {
                black_box(
                    URegion::try_new(iv, vec![MFace::simple(cyc.clone())])
                        .expect("valid interpolation"),
                )
            });
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = cube_fast_path, unit_lookup, concat_merge, uregion_validation
}
criterion_main!(benches);
