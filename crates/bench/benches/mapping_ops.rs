//! Experiments F8/E3: the refinement partition (Fig 8) is `O(n + m)`,
//! the `concat` merge is `O(1)` per unit, and the core mapping
//! operations (`deftime`, `atperiods`, builder) are linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_base::{r, t, Interval, Periods};
use mob_bench::crossing_point;
use mob_core::{lift2, refinement_both, ConstUnit, Mapping, MappingBuilder, MovingBool, UReal};
use std::hint::black_box;

fn mbool(n: usize, phase: f64) -> MovingBool {
    let units = (0..n)
        .map(|k| {
            ConstUnit::new(
                Interval::closed_open(t(k as f64 + phase), t(k as f64 + 1.0 + phase)),
                k % 2 == 0,
            )
        })
        .collect();
    Mapping::try_new(units).expect("disjoint slices")
}

fn refinement_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/refinement-both");
    for n in [16usize, 64, 256, 1024] {
        let a = mbool(n, 0.0);
        let b = mbool(n, 0.25); // offset boundaries: maximal refinement
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(refinement_both(&a, &b).len()));
        });
    }
    group.finish();
}

fn lifted_and(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/lifted-and");
    for n in [16usize, 64, 256, 1024] {
        let a = mbool(n, 0.0);
        let b = mbool(n, 0.25);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.and(&b).num_units()));
        });
    }
    group.finish();
}

fn builder_concat(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/builder-concat");
    for n in [64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| {
                let mut builder = MappingBuilder::new();
                for k in 0..n {
                    // Alternate between two values: no merges, pure push.
                    builder.push(ConstUnit::new(
                        Interval::closed_open(t(k as f64), t(k as f64 + 1.0)),
                        k % 2 == 0,
                    ));
                }
                black_box(builder.finish().num_units())
            });
        });
    }
    group.finish();
}

fn atperiods(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/atperiods");
    for n in [16usize, 64, 256] {
        let m = crossing_point(n);
        let p: Periods = (0..10)
            .map(|k| Interval::closed(t(k as f64 * 10.0), t(k as f64 * 10.0 + 5.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(m.atperiods(&p).num_units()));
        });
    }
    group.finish();
}

fn lifted_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/lifted-distance");
    for n in [16usize, 64, 256] {
        let a = crossing_point(n);
        let b = mob_gen::flight_mpoint(
            77,
            mob_spatial::Point::from_f64(180.0, -20.0),
            mob_spatial::Point::from_f64(-50.0, 80.0),
            0.0,
            mob_bench::SPAN,
            n,
            1.0,
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(a.distance(&b).num_units()));
        });
    }
    group.finish();
}

fn atmin_over_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping/atmin");
    for n in [16usize, 256, 4096] {
        let units = (0..n)
            .map(|k| {
                UReal::quadratic(
                    Interval::closed_open(t(k as f64), t(k as f64 + 1.0)),
                    r(1.0),
                    r(-2.0 * k as f64 - 1.0),
                    r((k * k + k) as f64 + 1.0),
                )
            })
            .collect();
        let m = Mapping::try_new(units).expect("disjoint slices");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter(|| black_box(m.atmin().num_units()));
        });
    }
    group.finish();
}

fn noop_lift_baseline(c: &mut Criterion) {
    // Baseline: lift2 with a trivial kernel isolates traversal cost.
    let a = mbool(1024, 0.0);
    let b = mbool(1024, 0.25);
    c.bench_function("mapping/lift2-trivial-kernel-1024", |bch| {
        bch.iter(|| {
            black_box(lift2(&a, &b, |iv, _, _| vec![ConstUnit::new(*iv, true)]).num_units())
        });
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = refinement_partition, lifted_and, builder_concat, atperiods, lifted_distance, atmin_over_units, noop_lift_baseline
}
criterion_main!(benches);
