//! Experiments F7/E5 (Sec 4, [DG98]): the mapping storage layout —
//! serialization cost, the inline/external placement threshold, and
//! page-I/O counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::{bench_storm, crossing_point};
use mob_storage::mapping_store::{save_mpoint, save_mregion};
use mob_storage::region_store::{load_region, save_region};
use mob_storage::{open_mpoint, open_mregion, PageStore, Verify};
use std::hint::black_box;

fn mpoint_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/mpoint-roundtrip");
    for n in [4usize, 64, 1024] {
        let m = crossing_point(n);
        group.bench_with_input(BenchmarkId::new("save", n), &n, |b, _| {
            b.iter(|| {
                let mut store = PageStore::new();
                black_box(save_mpoint(&m, &mut store))
            });
        });
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        group.bench_with_input(BenchmarkId::new("load", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    open_mpoint(&stored, &store, Verify::Full)
                        .and_then(|v| v.materialize_validated()),
                )
            });
        });
    }
    group.finish();
}

fn mregion_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/mregion-roundtrip");
    group.sample_size(20);
    for (units, verts) in [(4usize, 8usize), (16, 16), (64, 24)] {
        let m = bench_storm(units, verts);
        let label = units * verts;
        group.bench_with_input(BenchmarkId::new("save", label), &label, |b, _| {
            b.iter(|| {
                let mut store = PageStore::new();
                black_box(save_mregion(&m, &mut store))
            });
        });
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        group.bench_with_input(BenchmarkId::new("load", label), &label, |b, _| {
            b.iter(|| {
                black_box(
                    open_mregion(&stored, &store, Verify::Full)
                        .and_then(|v| v.materialize_validated()),
                )
            });
        });
    }
    group.finish();
}

fn region_snapshot_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/region-roundtrip");
    for verts in [8usize, 32, 128] {
        let snap = bench_storm(4, verts).at_instant(mob_base::t(50.0)).unwrap();
        group.bench_with_input(BenchmarkId::new("save", verts), &verts, |b, _| {
            b.iter(|| {
                let mut store = PageStore::new();
                black_box(save_region(&snap, &mut store))
            });
        });
        let mut store = PageStore::new();
        let stored = save_region(&snap, &mut store);
        group.bench_with_input(BenchmarkId::new("load", verts), &verts, |b, _| {
            b.iter(|| black_box(load_region(&stored, &store).expect("valid")));
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = mpoint_roundtrip, mregion_roundtrip, region_snapshot_roundtrip
}
criterion_main!(benches);
