//! Experiment E2 (Sec 5.2): Algorithm `inside` is `O(n + m + S)` where
//! `n`, `m` are the unit counts and `S` the total number of moving
//! segments; `O(n + m)` when the bounding cubes never intersect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::{bench_storm, crossing_point, far_point};
use mob_core::moving::mregion::inside;
use std::hint::black_box;

fn sweep_unit_counts(c: &mut Criterion) {
    let mut group = c.benchmark_group("inside/sweep-n+m-units");
    for n in [4usize, 8, 16, 32, 64] {
        let storm = bench_storm(n, 12);
        let point = crossing_point(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(inside(&point, &storm)));
        });
    }
    group.finish();
}

fn sweep_msegments(c: &mut Criterion) {
    let mut group = c.benchmark_group("inside/sweep-S-msegments");
    for verts in [8usize, 16, 32, 64, 128] {
        let storm = bench_storm(8, verts);
        let point = crossing_point(8);
        group.bench_with_input(BenchmarkId::from_parameter(verts * 8), &verts, |b, _| {
            b.iter(|| black_box(inside(&point, &storm)));
        });
    }
    group.finish();
}

/// The bounding-cube fast path: the same sweep with a far-away point
/// must be flat in S.
fn sweep_msegments_disjoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("inside/sweep-S-disjoint-cubes");
    for verts in [8usize, 16, 32, 64, 128] {
        let storm = bench_storm(8, verts);
        let point = far_point(8);
        group.bench_with_input(BenchmarkId::from_parameter(verts * 8), &verts, |b, _| {
            b.iter(|| black_box(inside(&point, &storm)));
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = sweep_unit_counts, sweep_msegments, sweep_msegments_disjoint
}
criterion_main!(benches);
