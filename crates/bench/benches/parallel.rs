//! Experiments E7/E8 (DESIGN.md §8): the batch/parallel query layer.
//!
//! * `parallel/atinstant-batch-vs-per-call` — a sorted probe set over
//!   one large mapping, answered by `q` independent `at_instant` binary
//!   searches (`O(q log n)`) versus one `batch_at_instant` merge scan
//!   with a galloping cursor (`O(q log(n/q) + q)`), on both the
//!   in-memory mapping and the storage-backed view (where the batch
//!   kernel additionally bounds decoded units by `min(q, n)`).
//! * `parallel/snapshot-threads` — the relation-wide `snapshot_at`
//!   scan over a seeded plane fleet at increasing worker counts. The
//!   result is byte-identical at every thread count (see
//!   `tests/parallel_scans.rs`); this bench measures only the wall
//!   clock. Speedups require real cores — single-core CI boxes will
//!   (and should) show a flat profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_base::t;
use mob_bench::{bench_fleet, crossing_point, probe_instants, SPAN};
use mob_core::{batch_at_instant, UnitSeq};
use mob_rel::ScanOpts;
use mob_storage::mapping_store::save_mpoint;
use mob_storage::{open_mpoint, PageStore, Verify};
use std::hint::black_box;

const UNITS: usize = 16384;
const PROBES: usize = 1024;

fn batch_vs_per_call(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/atinstant-batch-vs-per-call");
    let m = crossing_point(UNITS);
    let probes = probe_instants(PROBES);
    let mut store = PageStore::new();
    let stored = save_mpoint(&m, &mut store);
    let view = open_mpoint(&stored, &store, Verify::Full).expect("saved mapping reopens");

    group.bench_with_input(BenchmarkId::new("per-call", "memory"), &(), |b, _| {
        b.iter(|| {
            for ti in &probes {
                black_box(m.at_instant(*ti));
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("batch", "memory"), &(), |b, _| {
        b.iter(|| black_box(batch_at_instant(&m, &probes)));
    });
    group.bench_with_input(BenchmarkId::new("per-call", "stored"), &(), |b, _| {
        b.iter(|| {
            for ti in &probes {
                black_box(view.at_instant(*ti));
            }
        });
    });
    group.bench_with_input(BenchmarkId::new("batch", "stored"), &(), |b, _| {
        b.iter(|| black_box(batch_at_instant(&view, &probes)));
    });
    group.finish();
}

fn snapshot_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel/snapshot-threads");
    let fleet = bench_fleet(2048, 12);
    let probe = t(SPAN * 0.5);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &th| {
            let opts = ScanOpts::new().threads(th);
            b.iter(|| black_box(fleet.snapshot_at(probe, &opts).unwrap().0));
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = batch_vs_per_call, snapshot_threads
}
criterion_main!(benches);
