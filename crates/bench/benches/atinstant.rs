//! Experiment E1 (Sec 5.1): `atinstant` on a moving region is
//! `O(log n + r)` — binary search over the units array plus traversal of
//! the unit's moving segments (plus `r log r` when the full region
//! structure is rebuilt via `close()`-style construction).
//!
//! Two sweeps: `n` (unit count) at fixed `r`, and `r` (segments per
//! unit) at fixed `n`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::{bench_storm, probe_instants};
use std::hint::black_box;

fn sweep_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("atinstant/sweep-n-units");
    for n in [4usize, 16, 64, 256, 1024] {
        let storm = bench_storm(n, 12);
        let probes = probe_instants(64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % probes.len();
                black_box(storm.at_instant(probes[k]))
            });
        });
    }
    group.finish();
}

fn sweep_region_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("atinstant/sweep-r-segments");
    for r in [8usize, 16, 32, 64, 128, 256] {
        let storm = bench_storm(8, r);
        let probes = probe_instants(64);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, _| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % probes.len();
                black_box(storm.at_instant(probes[k]))
            });
        });
    }
    group.finish();
}

/// The pure binary-search component, isolated: unit lookup only.
fn sweep_lookup_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("atinstant/unit-lookup-only");
    for n in [4usize, 64, 1024, 16384] {
        // Cheap units: a moving real with n slices.
        let m = {
            let mut units = Vec::with_capacity(n);
            for k in 0..n {
                let iv = mob_base::Interval::closed_open(
                    mob_base::t(k as f64),
                    mob_base::t(k as f64 + 1.0),
                );
                units.push(mob_core::UReal::constant(iv, mob_base::r(k as f64)));
            }
            mob_core::Mapping::try_new(units).expect("disjoint slices")
        };
        let probes: Vec<mob_base::Instant> = (0..64)
            .map(|k| mob_base::t(n as f64 * (k as f64 + 0.5) / 64.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut k = 0;
            b.iter(|| {
                k = (k + 1) % probes.len();
                black_box(m.unit_index_at(probes[k]))
            });
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = sweep_units, sweep_region_size, sweep_lookup_only
}
criterion_main!(benches);
