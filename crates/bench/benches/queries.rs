//! Experiments Q1/Q2 (Sec 2): the two example queries end to end — the
//! spatial projection query and the spatio-temporal join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_gen::plane_fleet;
use mob_rel::{close_encounters, long_flights, planes_relation, Relation};
use std::hint::black_box;

fn fleet_relation(n: usize, units: usize) -> Relation {
    planes_relation(
        plane_fleet(0xF1EE7, n, units)
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    )
}

fn q1_sweep_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("queries/q1-long-flights");
    for n in [16usize, 64, 256] {
        let planes = fleet_relation(n, 12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(long_flights(&planes, "Lufthansa", 1500.0).len()));
        });
    }
    group.finish();
}

fn q2_sweep_fleet(c: &mut Criterion) {
    // Quadratic join: keep sizes modest.
    let mut group = c.benchmark_group("queries/q2-close-encounters");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let planes = fleet_relation(n, 12);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(close_encounters(&planes, 25.0).len()));
        });
    }
    group.finish();
}

fn q2_sweep_units(c: &mut Criterion) {
    // Join cost also scales with the per-flight unit count.
    let mut group = c.benchmark_group("queries/q2-sweep-units-per-flight");
    group.sample_size(10);
    for units in [4usize, 16, 64] {
        let planes = fleet_relation(16, units);
        group.bench_with_input(BenchmarkId::from_parameter(units), &units, |b, _| {
            b.iter(|| black_box(close_encounters(&planes, 25.0).len()));
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = q1_sweep_fleet, q2_sweep_fleet, q2_sweep_units
}
criterion_main!(benches);
