//! Experiment E4 (Sec 4.1): region construction — `close()` assembles
//! the face/cycle structure from a flat segment list; the dominating
//! cost is the halfsegment sort, `O(r log r)`. Includes the boolean
//! set operations built on top of it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mob_bench::square_grid_soup;
use mob_gen::convex_blob;
use mob_spatial::setops::{region_intersection, region_union};
use mob_spatial::{Point, Region};
use std::hint::black_box;

fn close_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("region/close-sweep-faces");
    for k in [4usize, 16, 64, 144] {
        let soup = square_grid_soup(k);
        group.bench_with_input(BenchmarkId::from_parameter(4 * k), &k, |b, _| {
            b.iter(|| black_box(Region::close(soup.clone()).expect("valid soup")));
        });
    }
    group.finish();
}

fn close_single_big_face(c: &mut Criterion) {
    let mut group = c.benchmark_group("region/close-single-face");
    for n in [16usize, 64, 256] {
        let ring = convex_blob(9, Point::from_f64(0.0, 0.0), 100.0, n, 0.3);
        let soup = ring.segments();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Region::close(soup.clone()).expect("valid ring soup")));
        });
    }
    group.finish();
}

fn boolean_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("region/boolean-ops");
    for n in [8usize, 32, 128] {
        let a = Region::from_ring(convex_blob(1, Point::from_f64(0.0, 0.0), 50.0, n, 0.2));
        let b = Region::from_ring(convex_blob(2, Point::from_f64(30.0, 10.0), 50.0, n, 0.2));
        group.bench_with_input(BenchmarkId::new("union", n), &n, |bch, _| {
            bch.iter(|| black_box(region_union(&a, &b).expect("valid overlay")));
        });
        group.bench_with_input(BenchmarkId::new("intersection", n), &n, |bch, _| {
            bch.iter(|| black_box(region_intersection(&a, &b).expect("valid overlay")));
        });
    }
    group.finish();
}

fn plumbline(c: &mut Criterion) {
    let mut group = c.benchmark_group("region/point-in-region");
    for n in [16usize, 256, 4096] {
        let region = Region::from_ring(convex_blob(3, Point::from_f64(0.0, 0.0), 100.0, n, 0.3));
        let probe = Point::from_f64(13.0, 7.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(region.contains_point(probe)));
        });
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = close_sweep, close_single_big_face, boolean_ops, plumbline
}
criterion_main!(benches);
