//! # `mob-storage` — DBMS attribute data structures (Sec 4)
//!
//! The paper's Section 4 maps the discrete model onto data structures
//! usable as attribute types inside a DBMS: no pointers (array indices
//! only), a fixed *root record* per value, and *database arrays* that are
//! stored inline or in separate page chains depending on size \[DG98\].
//!
//! * [`page::PageStore`] — a simulated page store with I/O counters,
//!   blob quarantine, and checksummed page frames;
//! * [`io`](mod@crate::io) — the [`io::StoreIo`] gate to the outside
//!   world: in-memory, real-filesystem, and deterministic
//!   fault-injecting ([`io::FaultyIo`]) implementations;
//! * [`durable`](mod@crate::durable) — transactional, crash-consistent
//!   storage ([`durable::DurableStore`]): builder opens
//!   (`options().open(io)`), full-image commits (shadow write → fsync →
//!   atomic rename) and O(appended-units) WAL delta commits through
//!   [`durable::Txn`], generation-numbered immutable MVCC snapshots
//!   ([`durable::DurableStore::snapshot`]), compaction, strict and
//!   degraded recovery;
//! * [`delta`](mod@crate::delta) — the WAL record format linking each
//!   delta to its base generation;
//! * [`generation`](mod@crate::generation) — immutable catalog +
//!   page-store pairs ([`generation::Generation`]) that commits fork
//!   copy-on-write, with the paper's ι endpoint cleanup at append seams;
//! * [`ingest`](mod@crate::ingest) — [`ingest::Ingestor`], per-object
//!   trajectory tails sealed into delta transactions;
//! * [`supervisor`](mod@crate::supervisor) — fault-tolerant background
//!   maintenance: a [`supervisor::Supervisor`] watches the delta chain
//!   and runs compaction + index rebuild through a
//!   [`supervisor::RetryPolicy`] (transient/permanent classification,
//!   bounded seeded-jitter backoff), degrading to manual mode instead
//!   of panicking;
//! * [`clock`](mod@crate::clock) — the injectable [`clock::Clock`]
//!   behind every maintenance sleep (virtual time in tests);
//! * [`checksum`](mod@crate::checksum) — the dependency-free 64-bit
//!   content checksum sealing every durable byte;
//! * [`record::FixedRecord`] — pointer-free fixed-size records;
//! * [`dbarray`] — database arrays with automatic inline/external
//!   placement and Fig 7's *subarrays*;
//! * [`line_store`] / [`region_store`] — halfsegment arrays, cycle/face
//!   link structure (Sec 4.1);
//! * [`mapping_store`] — the sliced-representation layouts (Sec 4.2–4.3,
//!   Fig 7) for all eight moving types' storage shapes;
//! * [`view`](mod@crate::view) — **query-over-storage**: lazy
//!   [`view::MappingView`]s implementing `mob-core`'s `UnitSeq`, so
//!   Section-5 algorithms run directly on serialized records with
//!   `O(log n)` unit decodes per `atinstant`;
//! * [`tuple`](mod@crate::tuple) — tuple layout accounting for the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checked;
pub mod checksum;
pub mod clock;
pub mod dbarray;
pub mod delta;
pub mod durable;
pub mod generation;
pub mod index_store;
pub mod ingest;
pub mod io;
pub mod line_store;
pub mod mapping_store;
pub mod page;
pub mod range_store;
pub mod record;
pub mod region_store;
pub mod store_file;
pub mod supervisor;
pub mod tuple;
pub mod view;

pub use checksum::{checksum64, checksum64_seeded, CHECKSUM_SEED};
pub use clock::{Clock, SystemClock, VirtualClock};
pub use dbarray::{
    load_array, read_array_bytes, read_subarray, save_array, Placement, SavedArray, SubArrayRef,
    INLINE_THRESHOLD,
};
pub use delta::{
    decode_delta_payload, delta_name, encode_delta_payload, parse_delta_name, DeltaPayload,
    DELTA_MAGIC,
};
pub use durable::{
    decode_image_degraded, decode_image_strict, parse_snapshot_name, snapshot_name, DecodedImage,
    DurableStore, ReplayPolicy, StoreOptions, Txn, DEFAULT_CHUNK_SIZE, DURABLE_MAGIC,
    DURABLE_VERSION,
};
pub use generation::{splice_units, Generation};
pub use index_store::{load_index, save_index, StoredIndex};
pub use ingest::Ingestor;
pub use io::{FaultMask, FaultyIo, FsIo, MemIo, StoreIo, FAULT_MASKS, STORAGE_FULL_MARKER};
pub use page::{
    open_frame, seal_frame, validate_page_size, BlobId, PageStore, DEFAULT_PAGE_SIZE,
    FRAME_OVERHEAD, MAX_PAGE_SIZE,
};
pub use record::FixedRecord;
pub use store_file::{RootRecord, StoreFile};
pub use supervisor::{
    classify, FaultClass, MaintStatus, MaintTick, Rebuilder, RetryOutcome, RetryPolicy, Supervisor,
    SupervisorConfig, SupervisorHandle,
};
pub use tuple::TupleLayout;
pub use view::{
    open_mbool, open_mline, open_mpoint, open_mpoints, open_mreal, open_mregion, MappingView,
    UnitRecord, Verify, DEFAULT_UNIT_CACHE,
};
