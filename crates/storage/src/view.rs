//! **Query-over-storage**: lazy [`UnitSeq`] views over serialized
//! mappings.
//!
//! [`MappingView`] implements `mob-core`'s [`UnitSeq`] directly on top of
//! the Section-4 storage layout (root record + database arrays), so the
//! Section-5 algorithms — `atinstant`, `present`, `deftime`, `atperiods`,
//! and the lifted operations — run **in place** on stored values:
//!
//! * [`UnitSeq::interval`] reads only the 18-byte interval header at the
//!   front of the `i`-th unit record ([`read_array_bytes`]), touching a
//!   single page;
//! * [`UnitSeq::unit`] decodes the one record (plus, for variable-size
//!   units, exactly the subarray ranges it references);
//! * consequently `atinstant` performs `O(log n)` header reads plus **one**
//!   unit decode, instead of the `O(n)` full deserialization of
//!   [`MappingView::materialize_validated`].
//!
//! Decode counters ([`MappingView::headers_read`],
//! [`MappingView::units_decoded`]) make that claim testable, and the
//! [`PageStore`] page counters make it measurable in page I/O.
//!
//! # Verify, then trust
//!
//! `UnitSeq` is an infallible interface (it is the hot path of every
//! Section-5 algorithm), but stored bytes are untrusted. The view
//! resolves that tension in two stages:
//!
//! 1. **Construction** (`open_*` with [`Verify::Full`]) returns a
//!    [`DecodeResult`]: it checks
//!    the array layouts (byte length = count × record size), reads every
//!    unit record once — rejecting NaN fields, invalid intervals,
//!    out-of-range subarray references ([`UnitRecord::check_structure`])
//!    and out-of-order/overlapping unit intervals — before handing out a
//!    view. In debug builds it additionally runs the deep
//!    [`MappingView::validate`] pass.
//! 2. **Access** trusts that verification: the two `expect`s in the
//!    `UnitSeq` impl are unreachable for any view whose construction
//!    (and, for value-level damage, [`MappingView::validate`]) passed.
//!    Audit paths never rely on them — [`MappingView::try_unit`] and
//!    friends surface [`DecodeError`]s instead.

use crate::dbarray::{read_array_bytes, read_subarray, SavedArray};
use crate::mapping_store::{
    check_root_count, MCycleRecord, MFaceRecord, MSegRecord, StoredMLine, StoredMPoints,
    StoredMRegion, StoredMapping, UBoolRecord, ULineRecord, UPointRecord, UPointsRecord,
    URealRecord, URegionRecord,
};
use crate::page::PageStore;
use crate::record::FixedRecord;
use mob_base::{DecodeError, DecodeResult, InvariantViolation, Real, TimeInterval};
use mob_core::{
    ConstUnit, MCycle, MFace, MSeg, Mapping, PointMotion, ULine, UPoint, UPoints, UReal, URegion,
    Unit, UnitSeq,
};
use mob_obs::LocalCounter;
use std::borrow::Cow;
use std::cell::{Cell, RefCell};

/// Default capacity of the per-view decoded-unit cache (entries).
///
/// Small on purpose: the batch kernels of `mob-core` probe with
/// monotone cursors, so the working set at any moment is a handful of
/// units around the current boundary — a few slots absorb the repeated
/// decodes of `refinement`-style walks without holding a materialized
/// copy of the mapping alive. Capacity never changes behind the
/// caller's back: grow it explicitly with
/// [`MappingView::set_cache_capacity`] (e.g. before a
/// [`MappingView::warm`] prefetch of a larger range).
pub const DEFAULT_UNIT_CACHE: usize = 8;

/// How much verification a record-opening entry point performs.
///
/// The unified `open_*` constructors ([`open_mpoint`],
/// [`crate::StoreFile::open_mpoint`], …) take this instead of splitting
/// into `view_*` / `view_*_preverified` / `load_*` families.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verify {
    /// Full structural verification: the `O(1)` layout checks plus a
    /// one-pass `O(n)` structural scan of every unit record (and, in
    /// debug builds, the deep [`MappingView::validate`] pass). Use this
    /// the first time a `(stored, store)` pair is opened.
    Full,
    /// The `O(1)` layout checks only. Sound **only** when the same
    /// `(stored, store)` pair has already passed a [`Verify::Full`] open
    /// once: [`PageStore`] blobs are append-only and immutable, so a
    /// verification performed at load time remains valid for every later
    /// view. `mob-rel` relies on this to open a fresh view per query
    /// (per worker thread) without paying a relation-sized scan each
    /// time.
    Preverified,
}

/// A unit record type that can be decoded into a live unit, given access
/// to the mapping's shared database arrays (Fig 7).
///
/// The `TimeInterval` must sit at byte offset 0 of the record — every
/// record type in [`crate::mapping_store`] satisfies this, which is what
/// lets [`MappingView`] read interval headers without decoding units.
pub trait UnitRecord: FixedRecord {
    /// The live unit type this record deserializes into.
    type Unit: Unit;

    /// Access to the shared arrays the record's subarray references point
    /// into (`()` for fixed-size units without subarrays).
    type Shared<'s>;

    /// The record's unit interval (byte offset 0).
    fn interval(&self) -> TimeInterval;

    /// Check the record's references into the shared arrays (subarray
    /// bounds, nested link structure) without decoding the unit. Called
    /// once per record at view construction.
    fn check_structure(&self, shared: &Self::Shared<'_>) -> DecodeResult<()>;

    /// Decode the record into a live unit, reading only the subarray
    /// ranges it references. All value-level invariants are re-checked;
    /// damage surfaces as a [`DecodeError`].
    fn try_decode(&self, shared: &Self::Shared<'_>) -> DecodeResult<Self::Unit>;
}

impl UnitRecord for UBoolRecord {
    type Unit = ConstUnit<bool>;
    type Shared<'s> = ();

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, _shared: &()) -> DecodeResult<()> {
        Ok(())
    }

    fn try_decode(&self, _shared: &()) -> DecodeResult<ConstUnit<bool>> {
        Ok(ConstUnit::new(self.interval, self.value))
    }
}

impl UnitRecord for URealRecord {
    type Unit = UReal;
    type Shared<'s> = ();

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, _shared: &()) -> DecodeResult<()> {
        Ok(())
    }

    fn try_decode(&self, _shared: &()) -> DecodeResult<UReal> {
        Ok(UReal::try_new(
            self.interval,
            Real::try_new(self.a)?,
            Real::try_new(self.b)?,
            Real::try_new(self.c)?,
            self.r,
        )?)
    }
}

impl UnitRecord for UPointRecord {
    type Unit = UPoint;
    type Shared<'s> = ();

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, _shared: &()) -> DecodeResult<()> {
        Ok(())
    }

    fn try_decode(&self, _shared: &()) -> DecodeResult<UPoint> {
        Ok(UPoint::new(self.interval, self.motion))
    }
}

/// Shared arrays of a stored `moving(points)`: the motions array.
pub struct PointsShared<'s> {
    store: &'s PageStore,
    motions: &'s SavedArray,
}

impl UnitRecord for UPointsRecord {
    type Unit = UPoints;
    type Shared<'s> = PointsShared<'s>;

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, shared: &PointsShared<'_>) -> DecodeResult<()> {
        self.sub.check(shared.motions.count, Self::WHAT)
    }

    fn try_decode(&self, shared: &PointsShared<'_>) -> DecodeResult<UPoints> {
        let motions: Vec<PointMotion> = read_subarray(shared.motions, shared.store, self.sub)?;
        Ok(UPoints::try_new(self.interval, motions)?)
    }
}

/// Shared arrays of a stored `moving(line)`: the msegments array.
pub struct LineShared<'s> {
    store: &'s PageStore,
    msegments: &'s SavedArray,
}

impl UnitRecord for ULineRecord {
    type Unit = ULine;
    type Shared<'s> = LineShared<'s>;

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, shared: &LineShared<'_>) -> DecodeResult<()> {
        self.sub.check(shared.msegments.count, Self::WHAT)
    }

    fn try_decode(&self, shared: &LineShared<'_>) -> DecodeResult<ULine> {
        let recs = read_subarray::<MSegRecord>(shared.msegments, shared.store, self.sub)?;
        let mut msegs: Vec<MSeg> = Vec::with_capacity(recs.len());
        for rec in &recs {
            msegs.push(MSeg::try_new(rec.s, rec.e)?);
        }
        Ok(ULine::try_new(self.interval, msegs)?)
    }
}

/// Shared arrays of a stored `moving(region)`: the three-level
/// `mfaces` → `mcycles` → `msegments` structure (Sec 4.2).
pub struct RegionShared<'s> {
    store: &'s PageStore,
    msegments: &'s SavedArray,
    mcycles: &'s SavedArray,
    mfaces: &'s SavedArray,
}

impl UnitRecord for URegionRecord {
    type Unit = URegion;
    type Shared<'s> = RegionShared<'s>;

    fn interval(&self) -> TimeInterval {
        self.interval
    }

    fn check_structure(&self, shared: &RegionShared<'_>) -> DecodeResult<()> {
        self.faces.check(shared.mfaces.count, Self::WHAT)?;
        let faces = read_subarray::<MFaceRecord>(shared.mfaces, shared.store, self.faces)?;
        for fr in &faces {
            fr.cycles.check(shared.mcycles.count, MFaceRecord::WHAT)?;
            if fr.cycles.is_empty() {
                return Err(DecodeError::BadStructure {
                    what: MFaceRecord::WHAT,
                    detail: "face references an empty cycle range".to_string(),
                });
            }
            let cycles = read_subarray::<MCycleRecord>(shared.mcycles, shared.store, fr.cycles)?;
            for cr in &cycles {
                cr.msegs.check(shared.msegments.count, MCycleRecord::WHAT)?;
            }
        }
        Ok(())
    }

    fn try_decode(&self, shared: &RegionShared<'_>) -> DecodeResult<URegion> {
        let face_recs = read_subarray::<MFaceRecord>(shared.mfaces, shared.store, self.faces)?;
        let mut faces: Vec<MFace> = Vec::with_capacity(face_recs.len());
        for fr in &face_recs {
            fr.cycles.check(shared.mcycles.count, MFaceRecord::WHAT)?;
            let cycles = read_subarray::<MCycleRecord>(shared.mcycles, shared.store, fr.cycles)?;
            let cycle_from = |rec: &MCycleRecord| -> DecodeResult<MCycle> {
                let verts: Vec<PointMotion> =
                    read_subarray::<MSegRecord>(shared.msegments, shared.store, rec.msegs)?
                        .iter()
                        .map(|ms| ms.s)
                        .collect();
                Ok(MCycle::try_new(verts)?)
            };
            let Some((outer_rec, hole_recs)) = cycles.split_first() else {
                return Err(DecodeError::BadStructure {
                    what: MFaceRecord::WHAT,
                    detail: "face references an empty cycle range".to_string(),
                });
            };
            let outer = cycle_from(outer_rec)?;
            let mut holes = Vec::with_capacity(hole_recs.len());
            for h in hole_recs {
                holes.push(cycle_from(h)?);
            }
            faces.push(MFace::new(outer, holes));
        }
        Ok(URegion::try_new(self.interval, faces)?)
    }
}

/// A lazy [`UnitSeq`] over a serialized mapping: unit records are read
/// and decoded **on demand**, straight out of the page store.
///
/// Construct with [`open_mbool`], [`open_mreal`], [`open_mpoint`],
/// [`open_mpoints`], [`open_mline`] or [`open_mregion`] — all of which
/// verify the stored layout and record structure before returning a
/// view (see the module docs).
pub struct MappingView<'s, R: UnitRecord> {
    store: &'s PageStore,
    units: &'s SavedArray,
    shared: R::Shared<'s>,
    /// `view.headers_read` in the `mob-obs` registry.
    headers_read: LocalCounter,
    /// `view.units_decoded` in the `mob-obs` registry.
    units_decoded: LocalCounter,
    /// Decoded-unit LRU: `(unit index, decoded unit)`, most recent
    /// first. Touched only by [`UnitSeq::unit`] and
    /// [`MappingView::warm`]; the fallible `try_*` accessors always go
    /// to the store so audits observe the raw bytes.
    cache: RefCell<Vec<(usize, R::Unit)>>,
    cache_cap: Cell<usize>,
    /// `view.cache_hits` in the `mob-obs` registry.
    cache_hits: LocalCounter,
}

impl<'s, R: UnitRecord> MappingView<'s, R> {
    /// Construct and verify: layout checks plus a one-pass structural
    /// verification of every unit record (and, in debug builds, the deep
    /// [`MappingView::validate`] pass).
    fn open(
        store: &'s PageStore,
        units: &'s SavedArray,
        shared: R::Shared<'s>,
    ) -> DecodeResult<Self> {
        let view = Self::open_unchecked(store, units, shared)?;
        view.verify_structure()?;
        #[cfg(debug_assertions)]
        view.validate()?;
        view.reset_counters();
        Ok(view)
    }

    /// Construct with the `O(1)` layout checks only, skipping the
    /// `O(n)` per-record structural pass. Callers must have verified
    /// the same `(units, store)` pair before — see the `*_preverified`
    /// view constructors.
    fn open_unchecked(
        store: &'s PageStore,
        units: &'s SavedArray,
        shared: R::Shared<'s>,
    ) -> DecodeResult<Self> {
        units.check_layout::<R>(store)?;
        Ok(MappingView {
            store,
            units,
            shared,
            headers_read: LocalCounter::new(mob_obs::metric!("view.headers_read")),
            units_decoded: LocalCounter::new(mob_obs::metric!("view.units_decoded")),
            cache: RefCell::new(Vec::new()),
            cache_cap: Cell::new(DEFAULT_UNIT_CACHE),
            cache_hits: LocalCounter::new(mob_obs::metric!("view.cache_hits")),
        })
    }

    /// One pass over the unit records: every record must read cleanly
    /// (valid interval, no NaN fields), reference only existing shared
    /// records, and the unit intervals must be sorted and pairwise
    /// disjoint (Sec 3.2.4).
    fn verify_structure(&self) -> DecodeResult<()> {
        let mut prev: Option<TimeInterval> = None;
        for i in 0..self.units.count {
            let rec = self.try_record(i)?;
            rec.check_structure(&self.shared)?;
            let iv = UnitRecord::interval(&rec);
            if let Some(p) = prev {
                if p.cmp_start(&iv) != std::cmp::Ordering::Less || !p.r_disjoint(&iv) {
                    return Err(DecodeError::Invariant(InvariantViolation::with_detail(
                        "mapping: unit intervals sorted and pairwise disjoint",
                        format!("units {} and {} violate the order", i - 1, i),
                    )));
                }
            }
            prev = Some(iv);
        }
        Ok(())
    }

    /// Deep validation of the viewed mapping, without materializing it:
    /// decodes each unit in turn (holding only one previous unit), and
    /// checks every Section 3.2.4 condition — unit validity, interval
    /// order/disjointness, and canonicity (mergeable adjacent units must
    /// have been merged).
    pub fn validate(&self) -> DecodeResult<()> {
        let mut prev: Option<R::Unit> = None;
        for i in 0..self.units.count {
            let rec = self.try_record(i)?;
            rec.check_structure(&self.shared)?;
            let unit = rec.try_decode(&self.shared)?;
            if let Some(p) = &prev {
                let (a, b) = (p.interval(), unit.interval());
                if a.cmp_start(b) != std::cmp::Ordering::Less || !a.r_disjoint(b) {
                    return Err(DecodeError::Invariant(InvariantViolation::with_detail(
                        "mapping: unit intervals sorted and pairwise disjoint",
                        format!("units {} and {} violate the order", i - 1, i),
                    )));
                }
                if a.r_adjacent(b) && p.value_eq(&unit) {
                    return Err(DecodeError::Invariant(InvariantViolation::with_detail(
                        "mapping: adjacent units must carry distinct values (canonicity)",
                        format!("units {} and {} are mergeable", i - 1, i),
                    )));
                }
            }
            prev = Some(unit);
        }
        Ok(())
    }

    /// Raw bytes `[i*SIZE + off, i*SIZE + off + len)` of the `i`-th unit
    /// record.
    fn try_record_bytes(&self, i: usize, len: usize) -> DecodeResult<Vec<u8>> {
        read_array_bytes(self.units, self.store, i * R::SIZE, len)
    }

    /// The `i`-th unit record, fully read but not yet decoded into a
    /// live unit.
    pub fn try_record(&self, i: usize) -> DecodeResult<R> {
        R::read(&self.try_record_bytes(i, R::SIZE)?)
    }

    /// Fallible interval read: the 18-byte header of the `i`-th record.
    pub fn try_interval(&self, i: usize) -> DecodeResult<TimeInterval> {
        self.headers_read.incr();
        TimeInterval::read(&self.try_record_bytes(i, TimeInterval::SIZE)?)
    }

    /// Fallible unit decode of the `i`-th record.
    pub fn try_unit(&self, i: usize) -> DecodeResult<R::Unit> {
        self.units_decoded.incr();
        self.try_record(i)?.try_decode(&self.shared)
    }

    /// Decode every unit and assemble an in-memory [`Mapping`],
    /// re-checking the Section 3.2.4 mapping invariants (order,
    /// disjointness, canonicity) via [`Mapping::try_new`] — the moral
    /// equivalent of the old eager `load_*` functions, expressed over
    /// the unified `open_*` entry points.
    pub fn materialize_validated(&self) -> DecodeResult<Mapping<R::Unit>> {
        let mut units = Vec::with_capacity(self.units.count);
        for i in 0..self.units.count {
            units.push(self.try_unit(i)?);
        }
        Ok(Mapping::try_new(units)?)
    }

    /// Look up unit `i` in the decoded-unit cache, promoting a hit to
    /// the front (most-recently-used) and counting it.
    fn cache_get(&self, i: usize) -> Option<R::Unit> {
        let mut cache = self.cache.borrow_mut();
        let pos = cache.iter().position(|(k, _)| *k == i)?;
        if pos != 0 {
            let entry = cache.remove(pos);
            cache.insert(0, entry);
        }
        self.cache_hits.incr();
        cache.first().map(|(_, u)| u.clone())
    }

    /// Insert a freshly decoded unit at the front of the cache,
    /// evicting the least-recently-used entries beyond capacity.
    fn cache_put(&self, i: usize, unit: R::Unit) {
        let mut cache = self.cache.borrow_mut();
        cache.insert(0, (i, unit));
        cache.truncate(self.cache_cap.get().max(1));
    }

    /// Prefetch a contiguous range of units into the decoded-unit
    /// cache — the explicit warm-up of a scan that will revisit its
    /// units (e.g. a lifted operation against many other mappings).
    ///
    /// Warming **never grows the cache**: the prefetch is clipped to the
    /// unit count *and* to [`MappingView::cache_capacity`] slots, so a
    /// view's memory footprint only changes through the explicit
    /// [`MappingView::set_cache_capacity`] call (or the `cache_capacity`
    /// field of `mob-rel`'s `ScanOpts`). Warming more units than the
    /// cache can hold would only churn the LRU, so the excess is simply
    /// not decoded. Already cached units are not re-decoded (and not
    /// counted as hits).
    pub fn warm(&self, range: std::ops::Range<usize>) -> DecodeResult<()> {
        let end = range
            .end
            .min(self.units.count)
            .min(range.start.saturating_add(self.cache_cap.get()));
        for i in range.start..end {
            let already = self.cache.borrow().iter().any(|(k, _)| *k == i);
            if !already {
                let unit = self.try_unit(i)?;
                self.cache_put(i, unit);
            }
        }
        Ok(())
    }

    /// Current capacity of the decoded-unit cache, in entries.
    pub fn cache_capacity(&self) -> usize {
        self.cache_cap.get()
    }

    /// Explicitly resize the decoded-unit cache (clamped to ≥ 1 entry).
    /// Shrinking evicts least-recently-used entries immediately. This is
    /// the only way a view's cache grows — see [`MappingView::warm`].
    pub fn set_cache_capacity(&self, cap: usize) {
        self.cache_cap.set(cap.max(1));
        self.cache.borrow_mut().truncate(self.cache_cap.get());
    }

    /// Interval headers read since the last counter reset (each is one
    /// 18-byte read — the probes of the binary search). Mirrored into
    /// the `mob-obs` registry as `view.headers_read`.
    pub fn headers_read(&self) -> u64 {
        self.headers_read.get()
    }

    /// Full unit records decoded since the last counter reset.
    /// Mirrored into the `mob-obs` registry as `view.units_decoded`.
    pub fn units_decoded(&self) -> u64 {
        self.units_decoded.get()
    }

    /// [`UnitSeq::unit`] calls served from the decoded-unit cache since
    /// the last counter reset (these do **not** count as
    /// [`MappingView::units_decoded`]). Mirrored into the `mob-obs`
    /// registry as `view.cache_hits`.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Reset the per-view decode and cache counters (the cache
    /// *contents* are kept — only the tallies restart). The `mob-obs`
    /// registry mirrors are monotone process totals and are deliberately
    /// not rewound.
    pub fn reset_counters(&self) {
        self.headers_read.reset_local();
        self.units_decoded.reset_local();
        self.cache_hits.reset_local();
    }

    /// The underlying page store (for its page-I/O counters).
    pub fn store(&self) -> &'s PageStore {
        self.store
    }
}

impl<'s, R: UnitRecord> UnitSeq for MappingView<'s, R> {
    type Unit = R::Unit;

    fn len(&self) -> usize {
        self.units.count
    }

    fn interval(&self, i: usize) -> TimeInterval {
        #[allow(clippy::expect_used)] // unreachable: verified at view construction
        self.try_interval(i)
            .expect("mapping view verified at construction")
    }

    fn unit(&self, i: usize) -> Cow<'_, R::Unit> {
        if let Some(unit) = self.cache_get(i) {
            return Cow::Owned(unit);
        }
        #[allow(clippy::expect_used)] // unreachable: verified at view construction
        let unit = self
            .try_unit(i)
            .expect("mapping view verified at construction");
        self.cache_put(i, unit.clone());
        Cow::Owned(unit)
    }
}

impl<'s, R: UnitRecord> MappingView<'s, R> {
    /// Dispatch on [`Verify`] after the shared `O(1)` checks have run.
    fn open_with(
        store: &'s PageStore,
        units: &'s SavedArray,
        shared: R::Shared<'s>,
        verify: Verify,
    ) -> DecodeResult<Self> {
        match verify {
            Verify::Full => MappingView::open(store, units, shared),
            Verify::Preverified => MappingView::open_unchecked(store, units, shared),
        }
    }
}

/// Open a lazy view over a stored `moving(bool)`.
pub fn open_mbool<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, UBoolRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    MappingView::open_with(store, &stored.units, (), verify)
}

/// Open a lazy view over a stored `moving(real)`.
pub fn open_mreal<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, URealRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    MappingView::open_with(store, &stored.units, (), verify)
}

/// Open a lazy view over a stored `moving(point)` — the unified,
/// fallible record-opening entry point (see [`Verify`] for the
/// verification levels; [`MappingView::materialize_validated`] recovers
/// the old eager-load behaviour).
pub fn open_mpoint<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, UPointRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    MappingView::open_with(store, &stored.units, (), verify)
}

/// Open a lazy view over a stored `moving(points)` (one shared
/// subarray).
pub fn open_mpoints<'s>(
    stored: &'s StoredMPoints,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, UPointsRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    stored.motions.check_layout::<PointMotion>(store)?;
    MappingView::open_with(
        store,
        &stored.units,
        PointsShared {
            store,
            motions: &stored.motions,
        },
        verify,
    )
}

/// Open a lazy view over a stored `moving(line)` (one shared subarray).
pub fn open_mline<'s>(
    stored: &'s StoredMLine,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, ULineRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    stored.msegments.check_layout::<MSegRecord>(store)?;
    MappingView::open_with(
        store,
        &stored.units,
        LineShared {
            store,
            msegments: &stored.msegments,
        },
        verify,
    )
}

/// Open a lazy view over a stored `moving(region)` (three shared
/// subarrays).
pub fn open_mregion<'s>(
    stored: &'s StoredMRegion,
    store: &'s PageStore,
    verify: Verify,
) -> DecodeResult<MappingView<'s, URegionRecord>> {
    check_root_count(stored.num_units, &stored.units)?;
    stored.msegments.check_layout::<MSegRecord>(store)?;
    stored.mcycles.check_layout::<MCycleRecord>(store)?;
    stored.mfaces.check_layout::<MFaceRecord>(store)?;
    MappingView::open_with(
        store,
        &stored.units,
        RegionShared {
            store,
            msegments: &stored.msegments,
            mcycles: &stored.mcycles,
            mfaces: &stored.mfaces,
        },
        verify,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_store::{save_mbool, save_mpoint, save_mregion};
    use mob_base::{t, Interval, Val};
    use mob_core::{Mapping, MovingPoint, MovingRegion};
    use mob_spatial::{pt, rect_ring};

    fn long_mpoint(n: usize) -> MovingPoint {
        let samples: Vec<_> = (0..=n)
            .map(|k| (t(k as f64), pt(k as f64, (k % 7) as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    }

    #[test]
    fn view_agrees_with_memory_mpoint() {
        let m = long_mpoint(50);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        assert_eq!(view.len(), m.num_units());
        for k in [-1.0, 0.0, 0.5, 17.25, 49.9, 50.0, 51.0] {
            assert_eq!(view.at_instant(t(k)), m.at_instant(t(k)), "t={k}");
            assert_eq!(view.present_at(t(k)), m.present_at(t(k)), "t={k}");
        }
        assert_eq!(view.deftime(), m.deftime());
        assert_eq!(view.materialize(), m);
        view.validate().unwrap();
    }

    #[test]
    fn at_instant_decodes_log_n_records() {
        let n = 4096;
        let m = long_mpoint(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        view.reset_counters();
        let v = view.at_instant(t(1234.5));
        assert!(v.is_def());
        // Binary search: ≤ ⌈log2 n⌉ + 1 header probes, exactly 1 decode.
        let bound = (n as f64).log2().ceil() as u64 + 2;
        assert!(
            view.headers_read() <= bound,
            "headers_read {} > O(log n) bound {bound}",
            view.headers_read()
        );
        assert_eq!(view.units_decoded(), 1);
        // A miss decodes nothing.
        view.reset_counters();
        assert_eq!(view.at_instant(t(-5.0)), Val::Undef);
        assert_eq!(view.units_decoded(), 0);
    }

    #[test]
    fn at_instant_touches_few_pages() {
        let n = 4096;
        let m = long_mpoint(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        assert!(!stored.units.is_inline(), "large mapping goes external");
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        store.reset_counters();
        let _ = view.at_instant(t(2000.25));
        let full_pages = (n * UPointRecord::SIZE).div_ceil(crate::page::DEFAULT_PAGE_SIZE) as u64;
        assert!(
            store.pages_read() < full_pages / 2,
            "lazy atinstant read {} pages, full scan would read {full_pages}",
            store.pages_read()
        );
    }

    #[test]
    fn view_agrees_with_memory_mbool() {
        let m = Mapping::try_new(vec![
            ConstUnit::new(Interval::closed_open(t(0.0), t(1.0)), true),
            ConstUnit::new(Interval::closed_open(t(1.0), t(2.0)), false),
            ConstUnit::new(Interval::closed(t(3.0), t(4.0)), true),
        ])
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_mbool(&m, &mut store);
        let view = open_mbool(&stored, &store, Verify::Full).unwrap();
        for k in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 4.0, 9.0] {
            assert_eq!(view.at_instant(t(k)), m.at_instant(t(k)), "t={k}");
        }
        assert_eq!(view.materialize(), m);
        view.validate().unwrap();
    }

    #[test]
    fn view_agrees_with_memory_mregion() {
        let u1 = URegion::interpolate(
            Interval::closed_open(t(0.0), t(1.0)),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
        )
        .unwrap();
        let u2 = URegion::interpolate(
            Interval::closed(t(1.0), t(2.0)),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
            &rect_ring(1.0, 1.0, 2.0, 2.0),
        )
        .unwrap();
        let m: MovingRegion = Mapping::try_new(vec![u1, u2]).unwrap();
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        let view = open_mregion(&stored, &store, Verify::Full).unwrap();
        view.reset_counters();
        for k in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let a = m.at_instant(t(k)).unwrap();
            let b = view.at_instant(t(k)).unwrap();
            assert_eq!(a.area(), b.area(), "t={k}");
            assert_eq!(a.num_faces(), b.num_faces(), "t={k}");
        }
        // Five probes hit only two distinct units: the decoded-unit
        // cache serves the repeats.
        assert_eq!(view.units_decoded(), 2);
        assert_eq!(view.cache_hits(), 3);
        view.validate().unwrap();
    }

    #[test]
    fn at_periods_on_view() {
        let m = long_mpoint(100);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        let p = mob_base::Periods::from_unmerged(vec![
            Interval::closed(t(10.5), t(12.5)),
            Interval::closed(t(80.0), t(81.0)),
        ]);
        view.reset_counters();
        let restricted = view.at_periods(&p);
        assert_eq!(restricted, m.atperiods(&p));
        // Only the overlapped units were decoded.
        assert!(view.units_decoded() <= 6, "{}", view.units_decoded());
    }

    #[test]
    fn warm_makes_probes_pure_cache_hits() {
        let m = long_mpoint(32);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        // Growth is explicit: size the cache for the whole range first.
        view.set_cache_capacity(view.len());
        view.reset_counters();
        view.warm(0..view.len()).unwrap();
        let warmed = view.units_decoded();
        assert_eq!(warmed, view.len() as u64, "warm decodes each unit once");
        assert_eq!(view.cache_hits(), 0, "warming is not a hit");
        // Every subsequent probe is served from the cache.
        for k in 0..32 {
            assert!(view.at_instant(t(k as f64 + 0.5)).is_def());
        }
        assert_eq!(view.units_decoded(), warmed, "no decode after warm");
        assert_eq!(view.cache_hits(), 32);
        // Re-warming an already warm range decodes nothing.
        view.warm(0..view.len()).unwrap();
        assert_eq!(view.units_decoded(), warmed);
        // Out-of-range warms are clipped, empty warms are no-ops.
        view.warm(1_000..2_000).unwrap();
        view.warm(3..3).unwrap();
        assert_eq!(view.units_decoded(), warmed);
    }

    #[test]
    fn warm_never_grows_the_cache_and_hits_stay_honest() {
        // Regression: `warm` used to grow the cache capacity as a silent
        // per-view side effect, so a "cold" view (default capacity)
        // warmed over a large range would report every later probe as a
        // cache hit. Now the prefetch is clipped to capacity and the
        // capacity is untouched.
        let m = long_mpoint(32);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        assert_eq!(view.cache_capacity(), DEFAULT_UNIT_CACHE);
        view.reset_counters();
        view.warm(0..view.len()).unwrap();
        assert_eq!(
            view.cache_capacity(),
            DEFAULT_UNIT_CACHE,
            "warm must not grow the cache"
        );
        assert_eq!(
            view.units_decoded(),
            DEFAULT_UNIT_CACHE as u64,
            "prefetch is clipped to capacity"
        );
        // A sequential sweep over all units: only the warmed prefix can
        // hit; the tail decodes honestly instead of claiming hits.
        view.reset_counters();
        let n = view.len();
        for i in 0..n {
            let _ = view.unit(i);
        }
        assert_eq!(view.cache_hits(), DEFAULT_UNIT_CACHE as u64);
        assert_eq!(view.units_decoded(), (n - DEFAULT_UNIT_CACHE) as u64);
        // Explicit growth is available, and shrinking evicts eagerly.
        view.set_cache_capacity(n);
        assert_eq!(view.cache_capacity(), n);
        view.set_cache_capacity(0);
        assert_eq!(view.cache_capacity(), 1, "capacity clamps to >= 1");
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let m = long_mpoint(64);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        let n = view.len();
        assert!(n > DEFAULT_UNIT_CACHE + 1, "need more units than slots");
        view.reset_counters();
        // Touch more distinct units than the default capacity …
        for i in 0..n {
            let _ = view.unit(i);
        }
        assert_eq!(view.units_decoded(), n as u64);
        // … the most recent one is still cached, the oldest is not.
        view.reset_counters();
        let _ = view.unit(n - 1);
        assert_eq!(view.cache_hits(), 1);
        let _ = view.unit(0);
        assert_eq!(view.units_decoded(), 1, "unit 0 was evicted");
    }

    #[test]
    fn preverified_open_skips_the_structural_scan() {
        let n = 2048;
        let m = long_mpoint(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        // Full open once (the load-time verification).
        let _ = open_mpoint(&stored, &store, Verify::Full).unwrap();
        store.reset_counters();
        let view = open_mpoint(&stored, &store, Verify::Preverified).unwrap();
        assert_eq!(
            store.pages_read(),
            0,
            "preverified open reads no data pages"
        );
        // The view still answers queries identically.
        for k in [0.0, 512.25, 2048.0] {
            assert_eq!(view.at_instant(t(k)), m.at_instant(t(k)), "t={k}");
        }
        // Root-count damage is still caught by the O(1) checks.
        let mut bad = save_mpoint(&m, &mut store);
        bad.num_units += 1;
        assert!(open_mpoint(&bad, &store, Verify::Preverified).is_err());
    }

    #[test]
    fn corrupt_root_count_is_rejected_at_open() {
        let m = long_mpoint(8);
        let mut store = PageStore::new();
        let mut stored = save_mpoint(&m, &mut store);
        stored.num_units += 1;
        assert!(matches!(
            open_mpoint(&stored, &store, Verify::Full),
            Err(DecodeError::CountMismatch { .. })
        ));
    }

    #[test]
    fn unordered_unit_intervals_are_rejected_at_open() {
        use crate::record::write_all;
        // Hand-craft two out-of-order upoint records.
        let u0 = UPointRecord {
            interval: Interval::closed(t(5.0), t(6.0)),
            motion: PointMotion::stationary(pt(0.0, 0.0)),
        };
        let u1 = UPointRecord {
            interval: Interval::closed(t(0.0), t(1.0)),
            motion: PointMotion::stationary(pt(1.0, 1.0)),
        };
        let bytes = write_all(&[u0, u1]);
        let mut store = PageStore::new();
        let stored = StoredMapping {
            num_units: 2,
            units: crate::dbarray::SavedArray {
                count: 2,
                placement: crate::dbarray::Placement::Inline(bytes),
            },
        };
        let _ = &mut store;
        assert!(matches!(
            open_mpoint(&stored, &store, Verify::Full),
            Err(DecodeError::Invariant(_))
        ));
    }

    #[test]
    fn validate_rejects_non_canonical_adjacent_units() {
        use crate::record::write_all;
        // Two adjacent ubool units with the same value: valid structure,
        // but violates canonicity (they should have been merged).
        let u0 = UBoolRecord {
            interval: Interval::closed_open(t(0.0), t(1.0)),
            value: true,
        };
        let u1 = UBoolRecord {
            interval: Interval::closed(t(1.0), t(2.0)),
            value: true,
        };
        let bytes = write_all(&[u0, u1]);
        let store = PageStore::new();
        let stored = StoredMapping {
            num_units: 2,
            units: crate::dbarray::SavedArray {
                count: 2,
                placement: crate::dbarray::Placement::Inline(bytes),
            },
        };
        // In debug builds the deep check already runs at open.
        match open_mbool(&stored, &store, Verify::Full) {
            Err(DecodeError::Invariant(iv)) => {
                assert!(iv.clause().contains("canonicity"), "{iv}");
            }
            Ok(view) => {
                let err = view.validate().unwrap_err();
                assert!(matches!(err, DecodeError::Invariant(_)));
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
