//! **Query-over-storage**: lazy [`UnitSeq`] views over serialized
//! mappings.
//!
//! [`MappingView`] implements `mob-core`'s [`UnitSeq`] directly on top of
//! the Section-4 storage layout (root record + database arrays), so the
//! Section-5 algorithms — `atinstant`, `present`, `deftime`, `atperiods`,
//! and the lifted operations — run **in place** on stored values:
//!
//! * [`UnitSeq::interval`] reads only the 18-byte interval header at the
//!   front of the `i`-th unit record ([`read_array_bytes`]), touching a
//!   single page;
//! * [`UnitSeq::unit`] decodes the one record (plus, for variable-size
//!   units, exactly the subarray ranges it references);
//! * consequently `atinstant` performs `O(log n)` header reads plus **one**
//!   unit decode, instead of the `O(n)` full deserialization of the
//!   `load_*` functions.
//!
//! Decode counters ([`MappingView::headers_read`],
//! [`MappingView::units_decoded`]) make that claim testable, and the
//! [`PageStore`] page counters make it measurable in page I/O.

#![warn(missing_docs)]

use crate::dbarray::{read_array_bytes, read_subarray, SavedArray};
use crate::mapping_store::{
    MCycleRecord, MFaceRecord, MSegRecord, StoredMLine, StoredMPoints, StoredMRegion,
    StoredMapping, UBoolRecord, ULineRecord, UPointRecord, UPointsRecord, URealRecord,
    URegionRecord,
};
use crate::page::PageStore;
use crate::record::FixedRecord;
use mob_base::{Real, TimeInterval};
use mob_core::{
    ConstUnit, MCycle, MFace, MSeg, PointMotion, ULine, UPoint, UPoints, UReal, URegion, Unit,
    UnitSeq,
};
use std::borrow::Cow;
use std::cell::Cell;

/// A unit record type that can be decoded into a live unit, given access
/// to the mapping's shared database arrays (Fig 7).
///
/// The `TimeInterval` must sit at byte offset 0 of the record — every
/// record type in [`crate::mapping_store`] satisfies this, which is what
/// lets [`MappingView`] read interval headers without decoding units.
pub trait UnitRecord: FixedRecord {
    /// The live unit type this record deserializes into.
    type Unit: Unit;

    /// Access to the shared arrays the record's subarray references point
    /// into (`()` for fixed-size units without subarrays).
    type Shared<'s>;

    /// Decode the record into a live unit, reading only the subarray
    /// ranges it references.
    fn decode(&self, shared: &Self::Shared<'_>) -> Self::Unit;
}

impl UnitRecord for UBoolRecord {
    type Unit = ConstUnit<bool>;
    type Shared<'s> = ();

    fn decode(&self, _shared: &()) -> ConstUnit<bool> {
        ConstUnit::new(self.interval, self.value)
    }
}

impl UnitRecord for URealRecord {
    type Unit = UReal;
    type Shared<'s> = ();

    fn decode(&self, _shared: &()) -> UReal {
        UReal::try_new(
            self.interval,
            Real::new(self.a),
            Real::new(self.b),
            Real::new(self.c),
            self.r,
        )
        .expect("stored ureal is valid")
    }
}

impl UnitRecord for UPointRecord {
    type Unit = UPoint;
    type Shared<'s> = ();

    fn decode(&self, _shared: &()) -> UPoint {
        UPoint::new(self.interval, self.motion)
    }
}

/// Shared arrays of a stored `moving(points)`: the motions array.
pub struct PointsShared<'s> {
    store: &'s PageStore,
    motions: &'s SavedArray,
}

impl UnitRecord for UPointsRecord {
    type Unit = UPoints;
    type Shared<'s> = PointsShared<'s>;

    fn decode(&self, shared: &PointsShared<'_>) -> UPoints {
        let motions: Vec<PointMotion> = read_subarray(shared.motions, shared.store, self.sub);
        UPoints::try_new(self.interval, motions).expect("stored upoints is valid")
    }
}

/// Shared arrays of a stored `moving(line)`: the msegments array.
pub struct LineShared<'s> {
    store: &'s PageStore,
    msegments: &'s SavedArray,
}

impl UnitRecord for ULineRecord {
    type Unit = ULine;
    type Shared<'s> = LineShared<'s>;

    fn decode(&self, shared: &LineShared<'_>) -> ULine {
        let msegs: Vec<MSeg> =
            read_subarray::<MSegRecord>(shared.msegments, shared.store, self.sub)
                .iter()
                .map(|rec| MSeg::try_new(rec.s, rec.e).expect("stored mseg is valid"))
                .collect();
        ULine::try_new(self.interval, msegs).expect("stored uline is valid")
    }
}

/// Shared arrays of a stored `moving(region)`: the three-level
/// `mfaces` → `mcycles` → `msegments` structure (Sec 4.2).
pub struct RegionShared<'s> {
    store: &'s PageStore,
    msegments: &'s SavedArray,
    mcycles: &'s SavedArray,
    mfaces: &'s SavedArray,
}

impl UnitRecord for URegionRecord {
    type Unit = URegion;
    type Shared<'s> = RegionShared<'s>;

    fn decode(&self, shared: &RegionShared<'_>) -> URegion {
        let faces: Vec<MFace> =
            read_subarray::<MFaceRecord>(shared.mfaces, shared.store, self.faces)
                .iter()
                .map(|fr| {
                    let cycles: Vec<MCycleRecord> =
                        read_subarray(shared.mcycles, shared.store, fr.cycles);
                    let cycle_from = |rec: &MCycleRecord| -> MCycle {
                        let verts: Vec<PointMotion> =
                            read_subarray::<MSegRecord>(shared.msegments, shared.store, rec.msegs)
                                .iter()
                                .map(|ms| ms.s)
                                .collect();
                        MCycle::try_new(verts).expect("stored mcycle is valid")
                    };
                    let outer = cycle_from(&cycles[0]);
                    let holes = cycles[1..].iter().map(cycle_from).collect();
                    MFace::new(outer, holes)
                })
                .collect();
        URegion::try_new(self.interval, faces).expect("stored uregion is valid")
    }
}

/// A lazy [`UnitSeq`] over a serialized mapping: unit records are read
/// and decoded **on demand**, straight out of the page store.
///
/// Construct with [`view_mbool`], [`view_mreal`], [`view_mpoint`],
/// [`view_mpoints`], [`view_mline`] or [`view_mregion`].
pub struct MappingView<'s, R: UnitRecord> {
    store: &'s PageStore,
    units: &'s SavedArray,
    shared: R::Shared<'s>,
    headers_read: Cell<u64>,
    units_decoded: Cell<u64>,
}

impl<'s, R: UnitRecord> MappingView<'s, R> {
    fn new(store: &'s PageStore, units: &'s SavedArray, shared: R::Shared<'s>) -> Self {
        MappingView {
            store,
            units,
            shared,
            headers_read: Cell::new(0),
            units_decoded: Cell::new(0),
        }
    }

    /// Raw bytes `[i*SIZE + off, i*SIZE + off + len)` of the `i`-th unit
    /// record.
    fn record_bytes(&self, i: usize, len: usize) -> Vec<u8> {
        read_array_bytes(self.units, self.store, i * R::SIZE, len)
    }

    /// The `i`-th unit record, fully read but not yet decoded into a
    /// live unit.
    pub fn record(&self, i: usize) -> R {
        R::read(&self.record_bytes(i, R::SIZE))
    }

    /// Interval headers read since the last counter reset (each is one
    /// 18-byte read — the probes of the binary search).
    pub fn headers_read(&self) -> u64 {
        self.headers_read.get()
    }

    /// Full unit records decoded since the last counter reset.
    pub fn units_decoded(&self) -> u64 {
        self.units_decoded.get()
    }

    /// Reset both decode counters.
    pub fn reset_counters(&self) {
        self.headers_read.set(0);
        self.units_decoded.set(0);
    }

    /// The underlying page store (for its page-I/O counters).
    pub fn store(&self) -> &'s PageStore {
        self.store
    }
}

impl<'s, R: UnitRecord> UnitSeq for MappingView<'s, R> {
    type Unit = R::Unit;

    fn len(&self) -> usize {
        self.units.count
    }

    fn interval(&self, i: usize) -> TimeInterval {
        self.headers_read.set(self.headers_read.get() + 1);
        TimeInterval::read(&self.record_bytes(i, TimeInterval::SIZE))
    }

    fn unit(&self, i: usize) -> Cow<'_, R::Unit> {
        self.units_decoded.set(self.units_decoded.get() + 1);
        Cow::Owned(self.record(i).decode(&self.shared))
    }
}

/// Lazy view over a stored `moving(bool)`.
pub fn view_mbool<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
) -> MappingView<'s, UBoolRecord> {
    MappingView::new(store, &stored.units, ())
}

/// Lazy view over a stored `moving(real)`.
pub fn view_mreal<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
) -> MappingView<'s, URealRecord> {
    MappingView::new(store, &stored.units, ())
}

/// Lazy view over a stored `moving(point)`.
pub fn view_mpoint<'s>(
    stored: &'s StoredMapping,
    store: &'s PageStore,
) -> MappingView<'s, UPointRecord> {
    MappingView::new(store, &stored.units, ())
}

/// Lazy view over a stored `moving(points)` (one shared subarray).
pub fn view_mpoints<'s>(
    stored: &'s StoredMPoints,
    store: &'s PageStore,
) -> MappingView<'s, UPointsRecord> {
    MappingView::new(
        store,
        &stored.units,
        PointsShared {
            store,
            motions: &stored.motions,
        },
    )
}

/// Lazy view over a stored `moving(line)` (one shared subarray).
pub fn view_mline<'s>(
    stored: &'s StoredMLine,
    store: &'s PageStore,
) -> MappingView<'s, ULineRecord> {
    MappingView::new(
        store,
        &stored.units,
        LineShared {
            store,
            msegments: &stored.msegments,
        },
    )
}

/// Lazy view over a stored `moving(region)` (three shared subarrays).
pub fn view_mregion<'s>(
    stored: &'s StoredMRegion,
    store: &'s PageStore,
) -> MappingView<'s, URegionRecord> {
    MappingView::new(
        store,
        &stored.units,
        RegionShared {
            store,
            msegments: &stored.msegments,
            mcycles: &stored.mcycles,
            mfaces: &stored.mfaces,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_store::{save_mbool, save_mpoint, save_mregion};
    use mob_base::{t, Interval, Val};
    use mob_core::{Mapping, MovingPoint, MovingRegion};
    use mob_spatial::{pt, rect_ring};

    fn long_mpoint(n: usize) -> MovingPoint {
        let samples: Vec<_> = (0..=n)
            .map(|k| (t(k as f64), pt(k as f64, (k % 7) as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    }

    #[test]
    fn view_agrees_with_memory_mpoint() {
        let m = long_mpoint(50);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = view_mpoint(&stored, &store);
        assert_eq!(view.len(), m.num_units());
        for k in [-1.0, 0.0, 0.5, 17.25, 49.9, 50.0, 51.0] {
            assert_eq!(view.at_instant(t(k)), m.at_instant(t(k)), "t={k}");
            assert_eq!(view.present_at(t(k)), m.present_at(t(k)), "t={k}");
        }
        assert_eq!(view.deftime(), m.deftime());
        assert_eq!(view.materialize(), m);
    }

    #[test]
    fn at_instant_decodes_log_n_records() {
        let n = 4096;
        let m = long_mpoint(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = view_mpoint(&stored, &store);
        view.reset_counters();
        let v = view.at_instant(t(1234.5));
        assert!(v.is_def());
        // Binary search: ≤ ⌈log2 n⌉ + 1 header probes, exactly 1 decode.
        let bound = (n as f64).log2().ceil() as u64 + 2;
        assert!(
            view.headers_read() <= bound,
            "headers_read {} > O(log n) bound {bound}",
            view.headers_read()
        );
        assert_eq!(view.units_decoded(), 1);
        // A miss decodes nothing.
        view.reset_counters();
        assert_eq!(view.at_instant(t(-5.0)), Val::Undef);
        assert_eq!(view.units_decoded(), 0);
    }

    #[test]
    fn at_instant_touches_few_pages() {
        let n = 4096;
        let m = long_mpoint(n);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        assert!(!stored.units.is_inline(), "large mapping goes external");
        let view = view_mpoint(&stored, &store);
        store.reset_counters();
        let _ = view.at_instant(t(2000.25));
        let full_pages = (n * UPointRecord::SIZE).div_ceil(crate::page::DEFAULT_PAGE_SIZE) as u64;
        assert!(
            store.pages_read() < full_pages / 2,
            "lazy atinstant read {} pages, full scan would read {full_pages}",
            store.pages_read()
        );
    }

    #[test]
    fn view_agrees_with_memory_mbool() {
        let m = Mapping::try_new(vec![
            ConstUnit::new(Interval::closed_open(t(0.0), t(1.0)), true),
            ConstUnit::new(Interval::closed_open(t(1.0), t(2.0)), false),
            ConstUnit::new(Interval::closed(t(3.0), t(4.0)), true),
        ])
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_mbool(&m, &mut store);
        let view = view_mbool(&stored, &store);
        for k in [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.5, 4.0, 9.0] {
            assert_eq!(view.at_instant(t(k)), m.at_instant(t(k)), "t={k}");
        }
        assert_eq!(view.materialize(), m);
    }

    #[test]
    fn view_agrees_with_memory_mregion() {
        let u1 = URegion::interpolate(
            Interval::closed_open(t(0.0), t(1.0)),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
        )
        .unwrap();
        let u2 = URegion::interpolate(
            Interval::closed(t(1.0), t(2.0)),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
            &rect_ring(1.0, 1.0, 2.0, 2.0),
        )
        .unwrap();
        let m: MovingRegion = Mapping::try_new(vec![u1, u2]).unwrap();
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        let view = view_mregion(&stored, &store);
        view.reset_counters();
        for k in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let a = m.at_instant(t(k)).unwrap();
            let b = view.at_instant(t(k)).unwrap();
            assert_eq!(a.area(), b.area(), "t={k}");
            assert_eq!(a.num_faces(), b.num_faces(), "t={k}");
        }
        // One decode per probe, no more.
        assert_eq!(view.units_decoded(), 5);
    }

    #[test]
    fn at_periods_on_view() {
        let m = long_mpoint(100);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = view_mpoint(&stored, &store);
        let p = mob_base::Periods::from_unmerged(vec![
            Interval::closed(t(10.5), t(12.5)),
            Interval::closed(t(80.0), t(81.0)),
        ]);
        view.reset_counters();
        let restricted = view.at_periods(&p);
        assert_eq!(restricted, m.atperiods(&p));
        // Only the overlapped units were decoded.
        assert!(view.units_decoded() <= 6, "{}", view.units_decoded());
    }
}
