//! Database arrays (\[DG98\], Sec 4): variable-size components of attribute
//! values, "automatically either represented *inline* in a tuple
//! representation, or outside in a separate list of pages, depending on
//! their size".

use crate::page::{BlobId, PageStore};
use crate::record::{read_all, write_all, FixedRecord};
use mob_base::{DecodeError, DecodeResult};

/// Size threshold (bytes): arrays up to this size are stored inline in
/// the tuple; larger ones go to separate pages.
pub const INLINE_THRESHOLD: usize = 256;

/// Where a saved array's bytes live.
#[derive(Clone, Debug, PartialEq)]
pub enum Placement {
    /// Bytes embedded in the tuple representation.
    Inline(Vec<u8>),
    /// Bytes in a separate page chain.
    External(BlobId),
}

/// Descriptor of a saved database array (part of the root record's
/// persistent state).
#[derive(Clone, Debug, PartialEq)]
pub struct SavedArray {
    /// Number of records.
    pub count: usize,
    /// Byte placement.
    pub placement: Placement,
}

impl SavedArray {
    /// `true` if stored inline.
    pub fn is_inline(&self) -> bool {
        matches!(self.placement, Placement::Inline(_))
    }

    /// Bytes occupied inline in the tuple (0 for external placement).
    pub fn inline_bytes(&self) -> usize {
        match &self.placement {
            Placement::Inline(b) => b.len(),
            Placement::External(_) => 0,
        }
    }

    /// Total byte length of the stored array.
    pub fn byte_len(&self, store: &PageStore) -> DecodeResult<usize> {
        match &self.placement {
            Placement::Inline(b) => Ok(b.len()),
            Placement::External(id) => store.blob_len(*id),
        }
    }

    /// Check that the stored byte length is exactly `count × T::SIZE` —
    /// the layout precondition for every record-wise access below.
    pub fn check_layout<T: FixedRecord>(&self, store: &PageStore) -> DecodeResult<()> {
        let len = self.byte_len(store)?;
        if !len.is_multiple_of(T::SIZE) {
            return Err(DecodeError::Ragged {
                what: T::WHAT,
                len,
                record_size: T::SIZE,
            });
        }
        let found = len / T::SIZE;
        if found != self.count {
            return Err(DecodeError::CountMismatch {
                what: T::WHAT,
                expected: self.count,
                found,
            });
        }
        Ok(())
    }
}

/// Save a record slice as a database array: inline when small, external
/// pages when large. This mirrors \[DG98\]'s automatic placement.
pub fn save_array<T: FixedRecord>(items: &[T], store: &mut PageStore) -> SavedArray {
    save_array_with_threshold(items, store, INLINE_THRESHOLD)
}

/// Save with an explicit inline threshold (experiment E5 sweeps this).
pub fn save_array_with_threshold<T: FixedRecord>(
    items: &[T],
    store: &mut PageStore,
    threshold: usize,
) -> SavedArray {
    let bytes = write_all(items);
    let placement = if bytes.len() <= threshold {
        Placement::Inline(bytes)
    } else {
        Placement::External(store.write_blob(&bytes))
    };
    SavedArray {
        count: items.len(),
        placement,
    }
}

/// Load a database array back into records.
///
/// The stored bytes are untrusted: ragged buffers, counts that disagree
/// with the byte length, and invalid record values all surface as
/// [`DecodeError`]s.
pub fn load_array<T: FixedRecord>(saved: &SavedArray, store: &PageStore) -> DecodeResult<Vec<T>> {
    let bytes = match &saved.placement {
        Placement::Inline(b) => b.clone(),
        Placement::External(id) => store.try_read_blob(*id)?,
    };
    let items = read_all::<T>(&bytes)?;
    if items.len() != saved.count {
        return Err(DecodeError::CountMismatch {
            what: T::WHAT,
            expected: saved.count,
            found: items.len(),
        });
    }
    Ok(items)
}

/// Read `byte_len` bytes of a saved array starting at `byte_off`,
/// without loading the rest: sliced from the tuple for inline placement,
/// read via [`PageStore::read_blob_range`] for external placement.
pub fn read_array_bytes(
    saved: &SavedArray,
    store: &PageStore,
    byte_off: usize,
    byte_len: usize,
) -> DecodeResult<Vec<u8>> {
    match &saved.placement {
        Placement::Inline(b) => match b.get(byte_off..byte_off + byte_len) {
            Some(s) => Ok(s.to_vec()),
            None => Err(DecodeError::Truncated {
                what: "inline array range",
                need: byte_off + byte_len,
                have: b.len(),
            }),
        },
        Placement::External(id) => store.try_read_blob_range(*id, byte_off, byte_len),
    }
}

/// Load only the records of a subrange `[start, end)` of a saved array —
/// the lazy counterpart of [`load_array`] used by the storage-backed
/// views: touches `O(sub.len())` records, not `O(count)`.
pub fn read_subarray<T: FixedRecord>(
    saved: &SavedArray,
    store: &PageStore,
    sub: SubArrayRef,
) -> DecodeResult<Vec<T>> {
    sub.check(saved.count, T::WHAT)?;
    let bytes = read_array_bytes(
        saved,
        store,
        sub.start as usize * T::SIZE,
        sub.len() * T::SIZE,
    )?;
    read_all::<T>(&bytes)
}

/// A *subarray* (Sec 4.2): a reference to a subrange `[start, end)` of a
/// shared database array — the mechanism by which all units of a
/// `mapping` share the same arrays (Fig 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubArrayRef {
    /// First record index.
    pub start: u32,
    /// One past the last record index.
    pub end: u32,
}

impl SubArrayRef {
    /// Number of records referenced.
    ///
    /// A decoded ref with `end < start` must be rejected via
    /// [`SubArrayRef::check`] before this is called; `len` saturates so
    /// even un-checked corrupt refs cannot underflow.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start) as usize
    }

    /// `true` for an empty subrange.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Check that the reference is well-formed (`start ≤ end`) and stays
    /// inside a shared array of `bound` records.
    pub fn check(&self, bound: usize, what: &'static str) -> DecodeResult<()> {
        if self.end < self.start {
            return Err(DecodeError::BadStructure {
                what,
                detail: format!("subarray end {} before start {}", self.end, self.start),
            });
        }
        if self.end as usize > bound {
            return Err(DecodeError::OutOfBounds {
                what,
                index: self.end as usize,
                bound,
            });
        }
        Ok(())
    }

    /// Slice the referenced records out of the shared array.
    ///
    /// Callers must have verified the ref with [`SubArrayRef::check`]
    /// against `shared.len()` (views do this at construction).
    pub fn slice<'a, T>(&self, shared: &'a [T]) -> &'a [T] {
        &shared[self.start as usize..self.end as usize]
    }
}

impl FixedRecord for SubArrayRef {
    const SIZE: usize = 8;
    const WHAT: &'static str = "subarray ref";
    fn write(&self, out: &mut Vec<u8>) {
        crate::record::put_u32(out, self.start);
        crate::record::put_u32(out, self.end);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(SubArrayRef {
            start: crate::record::get_u32(buf, 0)?,
            end: crate::record::get_u32(buf, 4)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_spatial::{pt, Point};

    #[test]
    fn small_arrays_go_inline() {
        let mut store = PageStore::new();
        let pts = vec![pt(0.0, 0.0), pt(1.0, 1.0)];
        let saved = save_array(&pts, &mut store);
        assert!(saved.is_inline());
        assert_eq!(saved.inline_bytes(), 32);
        assert_eq!(store.pages_written(), 0);
        assert_eq!(load_array::<Point>(&saved, &store).unwrap(), pts);
        saved.check_layout::<Point>(&store).unwrap();
    }

    #[test]
    fn large_arrays_go_external() {
        let mut store = PageStore::new();
        let pts: Vec<Point> = (0..100).map(|i| pt(f64::from(i), 0.0)).collect();
        let saved = save_array(&pts, &mut store);
        assert!(!saved.is_inline());
        assert!(store.pages_written() > 0);
        assert_eq!(load_array::<Point>(&saved, &store).unwrap(), pts);
        saved.check_layout::<Point>(&store).unwrap();
    }

    #[test]
    fn threshold_boundary() {
        let mut store = PageStore::new();
        // 16 points = 256 bytes: exactly at the threshold stays inline.
        let pts: Vec<Point> = (0..16).map(|i| pt(f64::from(i), 0.0)).collect();
        let saved = save_array(&pts, &mut store);
        assert!(saved.is_inline());
        // One more record crosses it.
        let pts17: Vec<Point> = (0..17).map(|i| pt(f64::from(i), 0.0)).collect();
        let saved17 = save_array(&pts17, &mut store);
        assert!(!saved17.is_inline());
    }

    #[test]
    fn subarray_refs() {
        let shared = vec![10, 20, 30, 40, 50];
        let r = SubArrayRef { start: 1, end: 4 };
        assert_eq!(r.len(), 3);
        assert_eq!(r.slice(&shared), &[20, 30, 40]);
        assert!(!r.is_empty());
        let e = SubArrayRef { start: 2, end: 2 };
        assert!(e.is_empty());
        // Record roundtrip.
        let mut buf = Vec::new();
        r.write(&mut buf);
        assert_eq!(SubArrayRef::read(&buf).unwrap(), r);
    }

    #[test]
    fn corrupt_subarray_refs_are_rejected_not_ub() {
        // end < start: len saturates, check() rejects.
        let bad = SubArrayRef { start: 4, end: 1 };
        assert_eq!(bad.len(), 0);
        assert!(matches!(
            bad.check(10, "test"),
            Err(DecodeError::BadStructure { .. })
        ));
        // end beyond the shared array.
        let oob = SubArrayRef { start: 0, end: 9 };
        assert!(matches!(
            oob.check(5, "test"),
            Err(DecodeError::OutOfBounds { .. })
        ));
        assert!(oob.check(9, "test").is_ok());
    }

    #[test]
    fn corrupt_counts_and_ragged_bytes_are_errors() {
        let mut store = PageStore::new();
        let pts = vec![pt(0.0, 0.0), pt(1.0, 1.0)];
        let mut saved = save_array(&pts, &mut store);
        saved.count = 3; // lie about the count
        assert!(matches!(
            load_array::<Point>(&saved, &store),
            Err(DecodeError::CountMismatch { .. })
        ));
        assert!(saved.check_layout::<Point>(&store).is_err());
        // Ragged inline bytes.
        let ragged = SavedArray {
            count: 1,
            placement: Placement::Inline(vec![0u8; 15]),
        };
        assert!(matches!(
            load_array::<Point>(&ragged, &store),
            Err(DecodeError::Ragged { .. })
        ));
        // Out-of-range byte read.
        let small = save_array(&pts, &mut store);
        assert!(read_array_bytes(&small, &store, 30, 10).is_err());
    }

    #[test]
    fn empty_array() {
        let mut store = PageStore::new();
        let saved = save_array::<Point>(&[], &mut store);
        assert!(saved.is_inline());
        assert_eq!(load_array::<Point>(&saved, &store).unwrap().len(), 0);
    }

    #[test]
    fn read_subarray_checks_bounds() {
        let mut store = PageStore::new();
        let pts: Vec<Point> = (0..8).map(|i| pt(f64::from(i), 0.0)).collect();
        let saved = save_array(&pts, &mut store);
        let ok = read_subarray::<Point>(&saved, &store, SubArrayRef { start: 2, end: 5 }).unwrap();
        assert_eq!(ok, pts[2..5]);
        assert!(read_subarray::<Point>(&saved, &store, SubArrayRef { start: 2, end: 9 }).is_err());
    }
}
