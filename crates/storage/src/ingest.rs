//! Live ingestion front end: many objects' tails, one transaction.
//!
//! An [`Ingestor`] owns one [`TailBuilder`] per moving object and turns
//! a stream of `(object, instant, position)` samples into the delta
//! commit path: [`Ingestor::seal_into`] seals every non-empty tail
//! (applying the ι endpoint cleanup exactly as
//! `Mapping::from_samples` would) and stages the batches on a [`Txn`],
//! so one `txn.commit()` makes the whole tick durable with I/O
//! proportional to the appended units.
//!
//! ```
//! use mob_base::t;
//! use mob_spatial::pt;
//! use mob_storage::{DurableStore, Ingestor, MemIo};
//!
//! let mut store = DurableStore::options().open(MemIo::new()).unwrap();
//! let mut ingest = Ingestor::new();
//! ingest.append("car0", t(0.0), pt(0.0, 0.0)).unwrap();
//! ingest.append("car0", t(1.0), pt(1.0, 0.0)).unwrap();
//! ingest.append("car1", t(0.5), pt(9.0, 9.0)).unwrap();
//!
//! let mut txn = store.begin();
//! let sealed = ingest.seal_into(&mut txn);
//! assert!(sealed > 0);
//! txn.commit().unwrap();
//!
//! let snap = store.snapshot().unwrap();
//! assert!(snap.get("car0").is_some() && snap.get("car1").is_some());
//! ```

use crate::durable::Txn;
use crate::io::StoreIo;
use mob_base::{Instant, Result};
use mob_core::TailBuilder;
use mob_spatial::Point;

/// Accumulates open trajectory tails for many objects and seals them
/// into delta-commit transactions. Object ids are kept sorted, so
/// sealed batches land in the transaction in deterministic (name)
/// order regardless of sample arrival order.
#[derive(Clone, Debug, Default)]
pub struct Ingestor {
    /// `(object id, tail)` sorted by id.
    tails: Vec<(String, TailBuilder)>,
}

impl Ingestor {
    /// New ingestor with no tracked objects.
    #[must_use]
    pub fn new() -> Ingestor {
        Ingestor { tails: Vec::new() }
    }

    /// Record one sample for `oid`. Instants must strictly increase per
    /// object across the whole stream, including across seals.
    pub fn append(&mut self, oid: &str, t: Instant, p: Point) -> Result<()> {
        match self.tails.binary_search_by(|(n, _)| n.as_str().cmp(oid)) {
            Ok(i) => match self.tails.get_mut(i) {
                Some((_, tail)) => tail.push(t, p),
                None => Ok(()), // unreachable: binary_search returned a hit
            },
            Err(i) => {
                let mut tail = TailBuilder::new();
                tail.push(t, p)?;
                self.tails.insert(i, (oid.to_string(), tail));
                Ok(())
            }
        }
    }

    /// Total samples buffered since the last seal, across all objects.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.tails.iter().map(|(_, tail)| tail.pending()).sum()
    }

    /// Number of objects that have ever received a sample.
    #[must_use]
    pub fn objects(&self) -> usize {
        self.tails.len()
    }

    /// Seal every non-empty tail and stage the batches on `txn` (one
    /// `append_units` per object, in id order). Returns the number of
    /// units staged. Objects with no new samples are left untouched —
    /// their anchors keep guarding the seam for the next tick.
    pub fn seal_into<I: StoreIo>(&mut self, txn: &mut Txn<'_, I>) -> usize {
        let mut sealed = 0usize;
        for (name, tail) in &mut self.tails {
            if tail.is_empty() {
                continue;
            }
            let units = tail.seal();
            sealed += units.len();
            txn.append_units(name, &units);
        }
        sealed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;
    use crate::mapping_store::UPointRecord;
    use crate::store_file::RootRecord;
    use crate::DurableStore;
    use mob_base::t;
    use mob_core::{MovingPoint, Unit};
    use mob_spatial::pt;

    fn stored_units(snap: &crate::generation::Generation, name: &str) -> Vec<UPointRecord> {
        match snap.get(name).unwrap() {
            RootRecord::MPoint(m) => {
                crate::dbarray::load_array::<UPointRecord>(&m.units, snap.store()).unwrap()
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn ticked_ingestion_matches_from_samples() {
        // Two objects, samples interleaved, sealed every 3 ticks: the
        // stored mappings must equal one from_samples call per object.
        let mut store = DurableStore::options().open(MemIo::new()).unwrap();
        let mut ingest = Ingestor::new();
        let mut all: Vec<(&str, Vec<(mob_base::Instant, mob_spatial::Point)>)> =
            vec![("car0", Vec::new()), ("car1", Vec::new())];
        for k in 0..10 {
            let tk = f64::from(k);
            for (i, (oid, samples)) in all.iter_mut().enumerate() {
                let x = tk * (i as f64 + 1.0);
                let s = (t(tk), pt(x, -x));
                samples.push(s);
                ingest.append(oid, s.0, s.1).unwrap();
            }
            if k % 3 == 2 {
                let mut txn = store.begin();
                ingest.seal_into(&mut txn);
                txn.commit().unwrap();
            }
        }
        // Final partial tick.
        let mut txn = store.begin();
        ingest.seal_into(&mut txn);
        txn.commit().unwrap();
        assert_eq!(ingest.pending(), 0);
        assert_eq!(ingest.objects(), 2);

        let snap = store.snapshot().unwrap();
        for (oid, samples) in &all {
            let whole: Vec<UPointRecord> = MovingPoint::from_samples(samples)
                .units()
                .iter()
                .map(|u| UPointRecord {
                    interval: *u.interval(),
                    motion: *u.motion(),
                })
                .collect();
            assert_eq!(stored_units(&snap, oid), whole, "{oid}");
        }
    }

    #[test]
    fn append_rejects_per_object_time_regressions() {
        let mut ingest = Ingestor::new();
        ingest.append("a", t(1.0), pt(0.0, 0.0)).unwrap();
        assert!(ingest.append("a", t(1.0), pt(1.0, 0.0)).is_err());
        // Other objects have independent clocks.
        ingest.append("b", t(0.0), pt(0.0, 0.0)).unwrap();
        assert_eq!(ingest.pending(), 2);
    }

    #[test]
    fn empty_seal_stages_nothing() {
        let mut store = DurableStore::options().open(MemIo::new()).unwrap();
        let mut ingest = Ingestor::new();
        let mut txn = store.begin();
        assert_eq!(ingest.seal_into(&mut txn), 0);
        assert!(txn.commit().is_err(), "nothing staged");
    }
}
