//! Fault-tolerant background maintenance: supervised compaction and
//! post-compaction index rebuild with retry/backoff.
//!
//! PR 9 left the store's two maintenance duties — folding the WAL delta
//! chain ([`DurableStore::compact`]) and refreshing the stale stored
//! index — as blocking manual calls that abort on the first I/O error.
//! This module turns them into a supervised loop:
//!
//! * a [`Supervisor`] watches the committed chain through
//!   [`DurableStore::pending_deltas`] / `pending_delta_bytes` and fires
//!   maintenance when either crosses its [`SupervisorConfig`] threshold;
//! * every maintenance step runs through a [`RetryPolicy`]: failures
//!   are classified ([`classify`]) as *transient* (retry after a
//!   bounded, seeded-jitter exponential backoff) or *permanent*
//!   (give up immediately — e.g. [`STORAGE_FULL_MARKER`] errors);
//! * time flows through a [`Clock`], so tests drive whole schedules
//!   with virtual time — no real sleeps;
//! * exhausted retries degrade to **manual mode** (`maint.gave_up`):
//!   the supervisor stops attempting until [`Supervisor::resume`],
//!   never panicking and never poisoning the store. Every attempt is
//!   commit-or-nothing — a failure leaves the committed chain exactly
//!   as it was (the shadow-write discipline of [`crate::durable`]),
//!   and pinned [`Generation`] snapshots are immutable throughout.
//!
//! The index rebuild step is pluggable ([`Rebuilder`]): `mob-storage`
//! cannot see the relation layer, so `mob-rel` supplies a closure that
//! re-derives the stored R-tree from a pinned snapshot; the supervisor
//! commits the result only if no writer advanced the chain in between
//! (otherwise the next cycle rebuilds against the newer state).

use crate::clock::Clock;
use crate::durable::{DurableStore, Txn};
use crate::generation::Generation;
use crate::io::{StoreIo, STORAGE_FULL_MARKER};
use crate::store_file::StoreFile;
use mob_base::{DecodeError, DecodeResult};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

// ---------------------------------------------------------------------
// Error classification
// ---------------------------------------------------------------------

/// How the retry loop should treat a failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// Worth retrying after a backoff: an I/O hiccup that a later
    /// attempt may not see.
    Transient,
    /// Retrying cannot help: storage full, or a structural/validation
    /// error — the same inputs will fail the same way.
    Permanent,
}

/// Classify a maintenance failure. I/O errors are presumed transient —
/// retrying them is the whole point — unless they carry the
/// [`STORAGE_FULL_MARKER`]; everything else (bad structure, checksum
/// mismatches, invariant violations) is deterministic on its inputs and
/// therefore permanent.
#[must_use]
pub fn classify(err: &DecodeError) -> FaultClass {
    match err {
        DecodeError::Io(msg) if msg.contains(STORAGE_FULL_MARKER) => FaultClass::Permanent,
        DecodeError::Io(_) => FaultClass::Transient,
        _ => FaultClass::Permanent,
    }
}

// ---------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------

/// Bounded exponential backoff with seeded, deterministic jitter.
///
/// The raw schedule doubles from [`RetryPolicy::base_delay`] and is
/// clamped to [`RetryPolicy::cap`]; jitter then shaves a seed-chosen
/// fraction (at most ~25%) off each delay so concurrent retriers
/// de-synchronize, while the same `(seed, attempt)` pair always yields
/// the same duration — campaigns replay byte-identically.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempt budget (first try included), at least 1.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Ceiling for any single delay (pre-jitter).
    pub cap: Duration,
    /// Seed driving the jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The un-jittered schedule: `min(cap, base_delay * 2^(attempt-1))`
    /// for `attempt >= 1` (monotone non-decreasing, bounded by the
    /// cap). `attempt` counts the failure being backed off from.
    #[must_use]
    pub fn raw_backoff(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(31);
        self.base_delay
            .checked_mul(1u32 << exp)
            .map_or(self.cap, |d| d.min(self.cap))
    }

    /// The jittered delay actually slept after failed `attempt`:
    /// [`RetryPolicy::raw_backoff`] minus a deterministic seed-chosen
    /// shave of at most 255/1024 (~25%). Never exceeds the cap.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> Duration {
        let raw = self.raw_backoff(attempt);
        let r = crate::checksum::checksum64_seeded(&u64::from(attempt).to_le_bytes(), self.seed);
        let frac = u128::from(r & 0xff);
        let shave = raw.as_nanos().saturating_mul(frac) / 1024;
        raw.saturating_sub(Duration::from_nanos(u64::try_from(shave).unwrap_or(0)))
    }

    /// Drive `op` to success or exhaustion: transient failures back off
    /// through `clock` (recording `maint.retries`), permanent failures
    /// give up immediately, and no more than
    /// [`RetryPolicy::max_attempts`] attempts are ever made.
    pub fn run<T>(
        &self,
        clock: &dyn Clock,
        mut op: impl FnMut() -> DecodeResult<T>,
    ) -> RetryOutcome<T> {
        let budget = self.max_attempts.max(1);
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op() {
                Ok(value) => {
                    return RetryOutcome::Ok {
                        value,
                        retries: attempt - 1,
                    }
                }
                Err(error) => {
                    let class = classify(&error);
                    if class == FaultClass::Permanent || attempt >= budget {
                        return RetryOutcome::GaveUp {
                            error,
                            class,
                            attempts: attempt,
                        };
                    }
                    mob_obs::metric!("maint.retries").add(1);
                    clock.sleep(self.backoff(attempt));
                }
            }
        }
    }
}

/// What a retried operation came to.
#[derive(Debug)]
pub enum RetryOutcome<T> {
    /// `op` succeeded, after this many *retried* (failed-then-slept)
    /// attempts.
    Ok {
        /// The operation's result.
        value: T,
        /// Failed attempts that preceded the success.
        retries: u32,
    },
    /// The budget is spent or the failure was permanent.
    GaveUp {
        /// The last error observed.
        error: DecodeError,
        /// How that error was classified.
        class: FaultClass,
        /// Attempts actually made (≤ `max_attempts`).
        attempts: u32,
    },
}

// ---------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------

/// Pluggable post-compaction index rebuild: given the pinned snapshot
/// the supervisor just compacted to, return a full [`StoreFile`] with a
/// fresh index attached (or `None` when there is nothing to rebuild).
/// Supplied by `mob-rel` (`rebuild_index_root`), which can see the
/// relation schema this crate cannot.
pub type Rebuilder = Arc<dyn Fn(&Generation) -> DecodeResult<Option<StoreFile>> + Send + Sync>;

/// When the supervisor acts.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Compact once this many delta commits sit on the chain.
    pub delta_threshold: u64,
    /// … or once the pending chain reaches this many encoded bytes.
    pub delta_bytes_threshold: u64,
    /// Retry discipline for every maintenance step.
    pub policy: RetryPolicy,
    /// Background-thread cadence between idle checks.
    pub poll_interval: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            delta_threshold: 8,
            delta_bytes_threshold: 1 << 20,
            policy: RetryPolicy::default(),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// One snapshot of the supervisor's counters and mode, cheap to clone
/// out for assertions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintStatus {
    /// `true` after a give-up: no further automatic maintenance until
    /// [`Supervisor::resume`].
    pub manual: bool,
    /// Successful supervised compactions.
    pub compactions: u64,
    /// Successful supervised index-rebuild commits.
    pub rebuilds: u64,
    /// Failed-then-retried attempts across all steps.
    pub retries: u64,
    /// Give-up events (transitions to manual mode).
    pub gave_up: u64,
    /// The error that caused the most recent give-up, rendered.
    pub last_error: Option<String>,
}

/// What one [`Supervisor::run_once`] tick did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaintTick {
    /// Below thresholds, or in manual mode: nothing attempted.
    Idle,
    /// Compaction (and possibly an index rebuild) committed.
    Compacted {
        /// Generation the compaction committed.
        generation: u64,
        /// Generation of the index-rebuild commit, when one landed.
        rebuilt: Option<u64>,
        /// Failed-then-retried attempts spent across both steps.
        retries: u32,
    },
    /// Retries exhausted (or a permanent fault): now in manual mode.
    GaveUp {
        /// Rendered error that ended the campaign.
        error: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

/// Supervised background maintenance over a shared [`DurableStore`].
///
/// The store lives behind `Arc<Mutex<…>>` so a writer thread keeps
/// committing while the supervisor waits out a backoff: the lock is
/// held only for the duration of one maintenance attempt, never across
/// a sleep.
pub struct Supervisor<I: StoreIo> {
    store: Arc<Mutex<DurableStore<I>>>,
    config: SupervisorConfig,
    clock: Arc<dyn Clock>,
    rebuilder: Option<Rebuilder>,
    status: Arc<Mutex<MaintStatus>>,
}

impl<I: StoreIo> Supervisor<I> {
    /// Supervise `store` under `config`, telling time through `clock`.
    #[must_use]
    pub fn new(
        store: Arc<Mutex<DurableStore<I>>>,
        config: SupervisorConfig,
        clock: Arc<dyn Clock>,
    ) -> Supervisor<I> {
        Supervisor {
            store,
            config,
            clock,
            rebuilder: None,
            status: Arc::new(Mutex::new(MaintStatus::default())),
        }
    }

    /// Attach a post-compaction index rebuild step (see [`Rebuilder`]).
    #[must_use]
    pub fn with_rebuilder(mut self, rebuilder: Rebuilder) -> Supervisor<I> {
        self.rebuilder = Some(rebuilder);
        self
    }

    /// The shared store handle (for writers and readers).
    #[must_use]
    pub fn store(&self) -> Arc<Mutex<DurableStore<I>>> {
        Arc::clone(&self.store)
    }

    /// Current counters and mode.
    #[must_use]
    pub fn status(&self) -> MaintStatus {
        self.with_status(|s| s.clone())
    }

    /// Leave manual mode: the next tick checks thresholds again.
    pub fn resume(&self) {
        self.with_status(|s| s.manual = false);
    }

    fn with_status<R>(&self, f: impl FnOnce(&mut MaintStatus) -> R) -> R {
        match self.status.lock() {
            Ok(mut g) => f(&mut g),
            Err(p) => f(&mut p.into_inner()),
        }
    }

    fn lock_store(&self) -> MutexGuard<'_, DurableStore<I>> {
        match self.store.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Whether either chain threshold is crossed.
    #[must_use]
    pub fn due(&self) -> bool {
        let store = self.lock_store();
        store.pending_deltas() >= self.config.delta_threshold
            || store.pending_delta_bytes() >= self.config.delta_bytes_threshold
    }

    /// One synchronous maintenance tick: check thresholds, then run
    /// compaction (and the index rebuild, when configured) through the
    /// retry policy. Deterministic under a [`crate::clock::VirtualClock`] —
    /// this is the engine the background thread loops over, exposed so
    /// tests can single-step it.
    pub fn run_once(&self) -> MaintTick {
        if self.with_status(|s| s.manual) || !self.due() {
            return MaintTick::Idle;
        }
        // Step 1: compact the delta chain (commit-or-nothing per
        // attempt; the lock is released between attempts).
        let compacted = self.config.policy.run(self.clock.as_ref(), || {
            let mut store = self.lock_store();
            store.compact()
        });
        let (generation, mut retries) = match compacted {
            RetryOutcome::Ok { value, retries } => (value, retries),
            RetryOutcome::GaveUp {
                error, attempts, ..
            } => return self.give_up(&error, attempts),
        };
        self.with_status(|s| {
            s.compactions += 1;
            s.retries += u64::from(retries);
        });
        mob_obs::metric!("maint.compactions").add(1);

        // Step 2: rebuild the index against the compacted snapshot.
        let mut rebuilt = None;
        if let Some(rebuilder) = &self.rebuilder {
            let outcome = self.config.policy.run(self.clock.as_ref(), || {
                self.rebuild_once(rebuilder, generation)
            });
            match outcome {
                RetryOutcome::Ok { value, retries: r } => {
                    retries += r;
                    self.with_status(|s| s.retries += u64::from(r));
                    if let Some(g) = value {
                        rebuilt = Some(g);
                        self.with_status(|s| s.rebuilds += 1);
                        mob_obs::metric!("maint.rebuilds").add(1);
                    }
                }
                RetryOutcome::GaveUp {
                    error, attempts, ..
                } => return self.give_up(&error, attempts),
            }
        }
        MaintTick::Compacted {
            generation,
            rebuilt,
            retries,
        }
    }

    /// One index-rebuild attempt: pin the snapshot, derive the fresh
    /// file outside the lock, and commit it only if no writer advanced
    /// the chain in between — otherwise skip (`Ok(None)`); the next
    /// cycle rebuilds against the newer state.
    fn rebuild_once(&self, rebuilder: &Rebuilder, base: u64) -> DecodeResult<Option<u64>> {
        let snap = {
            let store = self.lock_store();
            if store.generation() != base {
                return Ok(None);
            }
            store.snapshot()?
        };
        let Some(file) = rebuilder(&snap)? else {
            return Ok(None);
        };
        let mut store = self.lock_store();
        if store.generation() != base {
            return Ok(None);
        }
        let mut txn: Txn<'_, I> = store.begin();
        txn.put_store_file(&file)?;
        txn.commit().map(Some)
    }

    fn give_up(&self, error: &DecodeError, attempts: u32) -> MaintTick {
        let rendered = error.to_string();
        self.with_status(|s| {
            s.manual = true;
            s.gave_up += 1;
            s.last_error = Some(rendered.clone());
        });
        mob_obs::metric!("maint.gave_up").add(1);
        MaintTick::GaveUp {
            error: rendered,
            attempts,
        }
    }

    /// Move the supervisor onto a dedicated maintenance thread looping
    /// [`Supervisor::run_once`] at the configured poll cadence. The
    /// returned handle stops (and joins) the thread on
    /// [`SupervisorHandle::stop`] or drop; counters remain readable
    /// through [`SupervisorHandle::status`] while it runs.
    #[must_use]
    pub fn spawn(self) -> SupervisorHandle
    where
        I: Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let status = Arc::clone(&self.status);
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                if matches!(self.run_once(), MaintTick::Idle) {
                    self.clock.sleep(self.config.poll_interval);
                }
            }
        });
        SupervisorHandle {
            stop,
            status,
            thread: Some(thread),
        }
    }
}

/// Owner handle for a spawned maintenance thread.
pub struct SupervisorHandle {
    stop: Arc<AtomicBool>,
    status: Arc<Mutex<MaintStatus>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Counters and mode of the running supervisor.
    #[must_use]
    pub fn status(&self) -> MaintStatus {
        match self.status.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Signal the maintenance thread to stop and join it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // A maintenance thread that panicked already recorded its
            // own failure; joining is best-effort cleanup.
            let _ = t.join();
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::io::{FaultyIo, MemIo};
    use mob_base::t;
    use mob_core::MovingPoint;
    use mob_spatial::pt;

    fn policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            cap: Duration::from_millis(60),
            seed,
        }
    }

    #[test]
    fn classification_splits_io_from_structure() {
        assert_eq!(
            classify(&DecodeError::Io("read x: connection reset".into())),
            FaultClass::Transient
        );
        assert_eq!(
            classify(&DecodeError::Io(format!("write y: {STORAGE_FULL_MARKER}"))),
            FaultClass::Permanent
        );
        assert_eq!(
            classify(&DecodeError::BadStructure {
                what: "x",
                detail: "y".into()
            }),
            FaultClass::Permanent
        );
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_capped() {
        let p = policy(99);
        for attempt in 1..10 {
            assert_eq!(p.backoff(attempt), p.backoff(attempt), "deterministic");
            assert!(p.backoff(attempt) <= p.cap);
            assert!(p.raw_backoff(attempt) <= p.raw_backoff(attempt + 1));
            // Jitter shaves at most ~25%.
            let raw = p.raw_backoff(attempt);
            assert!(p.backoff(attempt) >= raw - raw / 4, "attempt {attempt}");
        }
    }

    #[test]
    fn retry_run_recovers_after_transient_failures() {
        let clock = VirtualClock::new();
        let mut left = 2;
        let out = policy(1).run(&clock, || {
            if left > 0 {
                left -= 1;
                Err(DecodeError::Io("flaky".into()))
            } else {
                Ok(42)
            }
        });
        match out {
            RetryOutcome::Ok { value, retries } => {
                assert_eq!(value, 42);
                assert_eq!(retries, 2);
            }
            RetryOutcome::GaveUp { error, .. } => panic!("gave up: {error}"),
        }
        // Two backoffs were slept, in schedule order, in virtual time.
        assert_eq!(
            clock.slept(),
            vec![policy(1).backoff(1), policy(1).backoff(2)]
        );
    }

    #[test]
    fn permanent_failures_give_up_without_sleeping() {
        let clock = VirtualClock::new();
        let out: RetryOutcome<()> = policy(1).run(&clock, || {
            Err(DecodeError::Io(format!("write f: {STORAGE_FULL_MARKER}")))
        });
        match out {
            RetryOutcome::GaveUp {
                class, attempts, ..
            } => {
                assert_eq!(class, FaultClass::Permanent);
                assert_eq!(attempts, 1);
            }
            RetryOutcome::Ok { .. } => panic!("cannot succeed"),
        }
        assert!(clock.slept().is_empty());
    }

    fn shared_store_with_deltas(io: FaultyIo, ticks: u64) -> Arc<Mutex<DurableStore<FaultyIo>>> {
        let mut store = DurableStore::options().open(io).expect("open");
        for k in 0..ticks {
            let t0 = k as f64 * 2.0;
            let samples = vec![(t(t0), pt(t0, 0.0)), (t(t0 + 1.0), pt(t0 + 1.0, 1.0))];
            let units = MovingPoint::from_samples(&samples).units().to_vec();
            let mut txn = store.begin();
            txn.append_units(&format!("obj{k}"), &units);
            txn.commit().expect("delta commit");
        }
        Arc::new(Mutex::new(store))
    }

    #[test]
    fn run_once_is_idle_below_threshold_and_compacts_above() {
        let clock = Arc::new(VirtualClock::new());
        let store = shared_store_with_deltas(
            FaultyIo::new(
                MemIo::new(),
                u64::MAX,
                crate::io::FaultMask::KeepUnsynced,
                0,
            ),
            2,
        );
        let config = SupervisorConfig {
            delta_threshold: 3,
            delta_bytes_threshold: u64::MAX,
            policy: policy(5),
            poll_interval: Duration::from_millis(1),
        };
        let sup = Supervisor::new(Arc::clone(&store), config, clock.clone());
        assert_eq!(sup.run_once(), MaintTick::Idle);

        // Cross the threshold with one more delta.
        {
            let mut s = match store.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            let units =
                MovingPoint::from_samples(&[(t(100.0), pt(0.0, 0.0)), (t(101.0), pt(1.0, 1.0))])
                    .units()
                    .to_vec();
            let mut txn = s.begin();
            txn.append_units("late", &units);
            txn.commit().expect("delta");
        }
        match sup.run_once() {
            MaintTick::Compacted {
                generation,
                rebuilt,
                retries,
            } => {
                assert_eq!(generation, 4);
                assert_eq!(rebuilt, None);
                assert_eq!(retries, 0);
            }
            other => panic!("expected compaction, got {other:?}"),
        }
        assert_eq!(sup.run_once(), MaintTick::Idle, "counters reset");
        let st = sup.status();
        assert_eq!((st.compactions, st.gave_up, st.manual), (1, 0, false));
    }

    #[test]
    fn transient_faults_retry_then_succeed() {
        let clock = Arc::new(VirtualClock::new());
        // Stage three deltas on a clean disk, then reopen it through a
        // transient injector: every (file, op) fails once first — well
        // within the 4-attempt budget, compaction must come through.
        let disk = MemIo::new();
        {
            let probe = FaultyIo::new(
                disk.clone(),
                u64::MAX,
                crate::io::FaultMask::KeepUnsynced,
                0,
            );
            let _ = shared_store_with_deltas(probe, 3);
        }
        let io = FaultyIo::transient(disk, 1, 7);
        let store = Arc::new(Mutex::new(
            DurableStore::options().open(io).expect("reopen"),
        ));
        let config = SupervisorConfig {
            delta_threshold: 1,
            delta_bytes_threshold: u64::MAX,
            policy: policy(7),
            poll_interval: Duration::from_millis(1),
        };
        let sup = Supervisor::new(store, config, clock.clone());
        match sup.run_once() {
            MaintTick::Compacted { retries, .. } => assert!(retries >= 1),
            other => panic!("expected retried compaction, got {other:?}"),
        }
        assert!(!clock.slept().is_empty(), "backoff ran in virtual time");
        assert!(sup.status().retries >= 1);
    }

    #[test]
    fn storage_full_gives_up_to_manual_mode_and_resume_rearms() {
        let clock = Arc::new(VirtualClock::new());
        let probe = FaultyIo::new(
            MemIo::new(),
            u64::MAX,
            crate::io::FaultMask::KeepUnsynced,
            0,
        );
        let store = shared_store_with_deltas(probe, 3);
        let spent = {
            let s = match store.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            s.io().write_units()
        };
        drop(store);
        // Re-run the same workload on a disk that fills up right after
        // the deltas land: compaction cannot fit its snapshot.
        let io = FaultyIo::storage_full(MemIo::new(), spent + 8, 3);
        let store = shared_store_with_deltas(io, 3);
        let config = SupervisorConfig {
            delta_threshold: 1,
            delta_bytes_threshold: u64::MAX,
            policy: policy(3),
            poll_interval: Duration::from_millis(1),
        };
        let sup = Supervisor::new(Arc::clone(&store), config, clock.clone());
        match sup.run_once() {
            MaintTick::GaveUp { error, attempts } => {
                assert!(error.contains(STORAGE_FULL_MARKER), "{error}");
                assert_eq!(attempts, 1, "permanent: no retries");
            }
            other => panic!("expected give-up, got {other:?}"),
        }
        let st = sup.status();
        assert!(st.manual && st.gave_up == 1);
        // Manual mode holds until resume…
        assert_eq!(sup.run_once(), MaintTick::Idle);
        sup.resume();
        assert!(!sup.status().manual);
        // …and the chain is still intact for readers.
        let s = match store.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        assert!(s.snapshot().is_ok());
        assert_eq!(s.generation(), 3, "failed maintenance left the chain");
    }
}
