//! Storage layout for `points` and `line` values (Sec 4.1).
//!
//! A `line` value is stored as an ordered array of *halfsegment records*
//! (four reals plus a flag indicating the dominating point); the root
//! record carries the segment count, total length and bounding box.

use crate::checked::{count_u32, idx_usize};
use crate::dbarray::{load_array, save_array, SavedArray};
use crate::page::PageStore;
use crate::record::{get_bool, get_f64, put_f64, FixedRecord};
use mob_base::{DecodeError, DecodeResult, Real};
use mob_spatial::{HalfSeg, Line, Point, Points, Seg};

/// A halfsegment record: the segment's four coordinates plus the
/// dominating-point flag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HalfSegRecord {
    /// Left end point x.
    pub x1: f64,
    /// Left end point y.
    pub y1: f64,
    /// Right end point x.
    pub x2: f64,
    /// Right end point y.
    pub y2: f64,
    /// `true` if the dominating point is the left end point.
    pub left_dom: bool,
}

impl HalfSegRecord {
    /// Build from a halfsegment.
    pub fn from_halfseg(hs: &HalfSeg) -> HalfSegRecord {
        let s = hs.seg();
        HalfSegRecord {
            x1: s.u().x.get(),
            y1: s.u().y.get(),
            x2: s.v().x.get(),
            y2: s.v().y.get(),
            left_dom: hs.is_left(),
        }
    }

    /// The stored segment.
    pub fn seg(&self) -> Seg {
        Seg::new(
            Point::from_f64(self.x1, self.y1),
            Point::from_f64(self.x2, self.y2),
        )
    }

    /// Fallible segment decode: rejects NaN coordinates and degenerate
    /// (zero-length) segments instead of panicking.
    pub fn try_seg(&self) -> DecodeResult<Seg> {
        let u = Point::new(Real::try_new(self.x1)?, Real::try_new(self.y1)?);
        let v = Point::new(Real::try_new(self.x2)?, Real::try_new(self.y2)?);
        if u == v {
            return Err(DecodeError::BadStructure {
                what: Self::WHAT,
                detail: "degenerate segment (u = v)".to_string(),
            });
        }
        Ok(Seg::new(u, v))
    }

    /// The halfsegment.
    pub fn halfseg(&self) -> HalfSeg {
        if self.left_dom {
            HalfSeg::left(self.seg())
        } else {
            HalfSeg::right(self.seg())
        }
    }
}

impl FixedRecord for HalfSegRecord {
    const SIZE: usize = 33;
    const WHAT: &'static str = "halfsegment record";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.x1);
        put_f64(out, self.y1);
        put_f64(out, self.x2);
        put_f64(out, self.y2);
        out.push(u8::from(self.left_dom));
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(HalfSegRecord {
            x1: get_f64(buf, 0)?,
            y1: get_f64(buf, 8)?,
            x2: get_f64(buf, 16)?,
            y2: get_f64(buf, 24)?,
            left_dom: get_bool(buf, 32)?,
        })
    }
}

/// A stored `line` value: root record plus the halfsegment array.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredLine {
    /// Number of segments (halfsegment count is twice this).
    pub num_segments: u32,
    /// Total length (summary information in the root record).
    pub length: f64,
    /// Bounding box: `(min_x, min_y, max_x, max_y)`; meaningless when
    /// `num_segments == 0`.
    pub bbox: [f64; 4],
    /// The ordered halfsegment array.
    pub halfsegs: SavedArray,
}

/// Save a `line` value.
pub fn save_line(line: &Line, store: &mut PageStore) -> StoredLine {
    let records: Vec<HalfSegRecord> = line
        .halfsegments()
        .iter()
        .map(HalfSegRecord::from_halfseg)
        .collect();
    let bbox = line.bbox();
    StoredLine {
        num_segments: count_u32(line.num_segments()),
        length: line.length().get(),
        bbox: [
            bbox.min_x().get(),
            bbox.min_y().get(),
            bbox.max_x().get(),
            bbox.max_y().get(),
        ],
        halfsegs: save_array(&records, store),
    }
}

/// Load a `line` value back.
pub fn load_line(stored: &StoredLine, store: &PageStore) -> DecodeResult<Line> {
    let records: Vec<HalfSegRecord> = load_array(&stored.halfsegs, store)?;
    let mut segs: Vec<Seg> = Vec::with_capacity(records.len() / 2);
    for r in records.iter().filter(|r| r.left_dom) {
        segs.push(r.try_seg()?);
    }
    if segs.len() != idx_usize(stored.num_segments) {
        return Err(DecodeError::CountMismatch {
            what: "line root record",
            expected: idx_usize(stored.num_segments),
            found: segs.len(),
        });
    }
    Ok(Line::try_new(segs)?)
}

/// A stored `points` value: count plus the ordered point array.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredPoints {
    /// Number of points.
    pub count: u32,
    /// Lexicographically ordered points.
    pub points: SavedArray,
}

/// Save a `points` value.
pub fn save_points(points: &Points, store: &mut PageStore) -> StoredPoints {
    let pts: Vec<Point> = points.iter().collect();
    StoredPoints {
        count: count_u32(pts.len()),
        points: save_array(&pts, store),
    }
}

/// Load a `points` value back.
pub fn load_points(stored: &StoredPoints, store: &PageStore) -> DecodeResult<Points> {
    Ok(Points::from_points(load_array::<Point>(
        &stored.points,
        store,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_spatial::{pt, seg};

    #[test]
    fn line_roundtrip() {
        let line = Line::normalize(vec![
            seg(0.0, 0.0, 3.0, 4.0),
            seg(1.0, 1.0, 2.0, 5.0),
            seg(-1.0, 0.0, 0.0, 0.0),
        ]);
        let mut store = PageStore::new();
        let stored = save_line(&line, &mut store);
        assert_eq!(stored.num_segments, 3);
        assert_eq!(mob_base::Real::new(stored.length), line.length());
        let back = load_line(&stored, &store).unwrap();
        assert_eq!(back, line);
    }

    #[test]
    fn line_halfsegment_order_is_persisted() {
        let line = Line::normalize(vec![seg(5.0, 0.0, 6.0, 0.0), seg(0.0, 0.0, 1.0, 0.0)]);
        let mut store = PageStore::new();
        let stored = save_line(&line, &mut store);
        let recs: Vec<HalfSegRecord> = load_array(&stored.halfsegs, &store).unwrap();
        let hs: Vec<_> = recs.iter().map(HalfSegRecord::halfseg).collect();
        for w in hs.windows(2) {
            assert!(w[0] < w[1], "halfsegments stored out of order");
        }
    }

    #[test]
    fn empty_line_roundtrip() {
        let mut store = PageStore::new();
        let stored = save_line(&Line::empty(), &mut store);
        assert_eq!(stored.num_segments, 0);
        assert!(load_line(&stored, &store).unwrap().is_empty());
    }

    #[test]
    fn big_line_goes_external() {
        let segs: Vec<_> = (0..200)
            .map(|i| seg(i as f64 * 2.0, 0.0, i as f64 * 2.0 + 1.0, 1.0))
            .collect();
        let line = Line::normalize(segs);
        let mut store = PageStore::new();
        let stored = save_line(&line, &mut store);
        assert!(!stored.halfsegs.is_inline());
        assert_eq!(load_line(&stored, &store).unwrap(), line);
    }

    #[test]
    fn points_roundtrip() {
        let points = Points::from_points(vec![pt(2.0, 1.0), pt(0.0, 0.0), pt(2.0, 1.0)]);
        let mut store = PageStore::new();
        let stored = save_points(&points, &mut store);
        assert_eq!(stored.count, 2);
        assert_eq!(load_points(&stored, &store).unwrap(), points);
    }
}
