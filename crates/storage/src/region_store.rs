//! Storage layout for `region` values (Sec 4.1).
//!
//! The halfsegment array is augmented with link fields (`next_in_cycle`)
//! and two further arrays `cycles` and `faces` represent the structure:
//! each cycle record points (by index — never by pointer) to its first
//! halfsegment and to the next cycle of its face; each face record points
//! to its first cycle. The root record carries counts, bounding box,
//! area and perimeter summary fields.

use crate::checked::{count_u32, idx_usize};
use crate::dbarray::{load_array, save_array, SavedArray};
use crate::line_store::HalfSegRecord;
use crate::page::PageStore;
use crate::record::{get_bool, get_u32, put_u32, FixedRecord};
use mob_base::{DecodeError, DecodeResult};
use mob_spatial::{Face, HalfSeg, Point, Region, Ring, Seg};
use std::collections::BTreeMap;

/// Sentinel index meaning "no next element".
pub const NIL: u32 = u32::MAX;

/// A region halfsegment record: the geometric record plus structure
/// links.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionHalfSegRecord {
    /// The geometric halfsegment.
    pub hs: HalfSegRecord,
    /// Index of the next halfsegment of the same cycle (circular).
    pub next_in_cycle: u32,
    /// Index of the owning cycle.
    pub cycle: u32,
}

impl FixedRecord for RegionHalfSegRecord {
    const SIZE: usize = HalfSegRecord::SIZE + 8;
    const WHAT: &'static str = "region halfsegment record";
    fn write(&self, out: &mut Vec<u8>) {
        self.hs.write(out);
        put_u32(out, self.next_in_cycle);
        put_u32(out, self.cycle);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(RegionHalfSegRecord {
            hs: HalfSegRecord::read(buf)?,
            next_in_cycle: get_u32(buf, HalfSegRecord::SIZE)?,
            cycle: get_u32(buf, HalfSegRecord::SIZE + 4)?,
        })
    }
}

/// A cycle record: first halfsegment and next cycle of the same face.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CycleRecord {
    /// Index of the first halfsegment of this cycle.
    pub first_halfseg: u32,
    /// Index of the next cycle of the same face, or [`NIL`].
    pub next_cycle_in_face: u32,
    /// `true` for hole cycles.
    pub is_hole: bool,
}

impl FixedRecord for CycleRecord {
    const SIZE: usize = 9;
    const WHAT: &'static str = "cycle record";
    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.first_halfseg);
        put_u32(out, self.next_cycle_in_face);
        out.push(u8::from(self.is_hole));
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(CycleRecord {
            first_halfseg: get_u32(buf, 0)?,
            next_cycle_in_face: get_u32(buf, 4)?,
            is_hole: get_bool(buf, 8)?,
        })
    }
}

/// A face record: its first cycle (the outer cycle).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaceRecord {
    /// Index into the cycles array.
    pub first_cycle: u32,
}

impl FixedRecord for FaceRecord {
    const SIZE: usize = 4;
    const WHAT: &'static str = "face record";
    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.first_cycle);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(FaceRecord {
            first_cycle: get_u32(buf, 0)?,
        })
    }
}

/// A stored `region` value: root record plus three database arrays.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRegion {
    /// Number of faces.
    pub num_faces: u32,
    /// Number of cycles.
    pub num_cycles: u32,
    /// Number of segments (halfsegment count is twice this).
    pub num_segments: u32,
    /// Total area (root-record summary field).
    pub area: f64,
    /// Total perimeter.
    pub perimeter: f64,
    /// Bounding box `(min_x, min_y, max_x, max_y)`.
    pub bbox: [f64; 4],
    /// Ordered halfsegment records with links.
    pub halfsegments: SavedArray,
    /// Cycle records.
    pub cycles: SavedArray,
    /// Face records.
    pub faces: SavedArray,
}

/// Save a `region` value, deriving the link structure (the inverse of
/// `close()`: the logical structure is turned into linked index arrays).
pub fn save_region(region: &Region, store: &mut PageStore) -> StoredRegion {
    // Ordered halfsegment sequence and an index by (seg, is_left).
    let hsegs: Vec<HalfSeg> = region.halfsegments();
    let index: BTreeMap<(Seg, bool), u32> = hsegs
        .iter()
        .enumerate()
        .map(|(i, h)| ((h.seg(), h.is_left()), count_u32(i)))
        .collect();
    let mut records: Vec<RegionHalfSegRecord> = hsegs
        .iter()
        .map(|h| RegionHalfSegRecord {
            hs: HalfSegRecord::from_halfseg(h),
            next_in_cycle: NIL,
            cycle: NIL,
        })
        .collect();
    let mut cycles: Vec<CycleRecord> = Vec::new();
    let mut faces: Vec<FaceRecord> = Vec::new();
    for face in region.faces() {
        let face_first_cycle = count_u32(cycles.len());
        faces.push(FaceRecord {
            first_cycle: face_first_cycle,
        });
        let mut link_cycle = |ring: &Ring, is_hole: bool, cycles: &mut Vec<CycleRecord>| {
            let cycle_id = count_u32(cycles.len());
            // Both halfsegments of each ring edge, chained circularly in
            // ring order (left halfsegment then right halfsegment).
            let mut chain: Vec<u32> = Vec::with_capacity(ring.len() * 2);
            for s in ring.segments() {
                chain.push(index[&(s, true)]);
                chain.push(index[&(s, false)]);
            }
            for (k, &idx) in chain.iter().enumerate() {
                records[idx as usize].next_in_cycle = chain[(k + 1) % chain.len()];
                records[idx as usize].cycle = cycle_id;
            }
            cycles.push(CycleRecord {
                first_halfseg: chain[0],
                next_cycle_in_face: NIL,
                is_hole,
            });
            cycle_id
        };
        let outer_id = link_cycle(face.outer(), false, &mut cycles);
        let mut prev = outer_id;
        for hole in face.holes() {
            let hid = link_cycle(hole, true, &mut cycles);
            cycles[prev as usize].next_cycle_in_face = hid;
            prev = hid;
        }
    }
    let bbox = region.bbox();
    StoredRegion {
        num_faces: count_u32(region.num_faces()),
        num_cycles: count_u32(region.num_cycles()),
        num_segments: count_u32(region.num_segments()),
        area: region.area().get(),
        perimeter: region.perimeter().get(),
        bbox: [
            bbox.min_x().get(),
            bbox.min_y().get(),
            bbox.max_x().get(),
            bbox.max_y().get(),
        ],
        halfsegments: save_array(&records, store),
        cycles: save_array(&cycles, store),
        faces: save_array(&faces, store),
    }
}

/// Load a `region` value back by following the face → cycle →
/// halfsegment links.
///
/// The link structure is untrusted: dangling indices, non-terminating
/// chains and faces without an outer cycle are reported as
/// [`DecodeError`]s (a corrupt `next_in_cycle` byte must not hang the
/// loader).
pub fn load_region(stored: &StoredRegion, store: &PageStore) -> DecodeResult<Region> {
    let records: Vec<RegionHalfSegRecord> = load_array(&stored.halfsegments, store)?;
    let cycles: Vec<CycleRecord> = load_array(&stored.cycles, store)?;
    let faces: Vec<FaceRecord> = load_array(&stored.faces, store)?;
    let hs_at = |i: u32| -> DecodeResult<&RegionHalfSegRecord> {
        records.get(idx_usize(i)).ok_or(DecodeError::OutOfBounds {
            what: RegionHalfSegRecord::WHAT,
            index: idx_usize(i),
            bound: records.len(),
        })
    };
    let mut region_faces: Vec<Face> = Vec::with_capacity(faces.len());
    for f in &faces {
        let mut outer: Option<Ring> = None;
        let mut holes: Vec<Ring> = Vec::new();
        let mut cid = f.first_cycle;
        // Bound the cycle chain: a well-formed chain visits each cycle
        // at most once.
        let mut cycle_steps = 0usize;
        while cid != NIL {
            cycle_steps += 1;
            if cycle_steps > cycles.len() {
                return Err(DecodeError::BadStructure {
                    what: CycleRecord::WHAT,
                    detail: "next_cycle_in_face chain does not terminate".to_string(),
                });
            }
            let c = cycles.get(idx_usize(cid)).ok_or(DecodeError::OutOfBounds {
                what: CycleRecord::WHAT,
                index: idx_usize(cid),
                bound: cycles.len(),
            })?;
            // Walk the circular chain; keep each edge once (left hs).
            // Bound the walk: a valid chain has at most `records.len()`
            // links before returning to its start.
            let mut segs: Vec<Seg> = Vec::new();
            let mut idx = c.first_halfseg;
            let mut hs_steps = 0usize;
            loop {
                hs_steps += 1;
                if hs_steps > records.len() {
                    return Err(DecodeError::BadStructure {
                        what: RegionHalfSegRecord::WHAT,
                        detail: "next_in_cycle chain does not return to its start".to_string(),
                    });
                }
                let rec = hs_at(idx)?;
                if rec.hs.left_dom {
                    segs.push(rec.hs.try_seg()?);
                }
                idx = rec.next_in_cycle;
                if idx == c.first_halfseg {
                    break;
                }
            }
            let ring = ring_from_segs(&segs)?;
            if c.is_hole {
                holes.push(ring);
            } else {
                outer = Some(ring);
            }
            cid = c.next_cycle_in_face;
        }
        let Some(outer) = outer else {
            return Err(DecodeError::BadStructure {
                what: FaceRecord::WHAT,
                detail: "face has no outer cycle".to_string(),
            });
        };
        region_faces.push(Face::try_new(outer, holes)?);
    }
    Ok(Region::try_new(region_faces)?)
}

/// Chain an unordered set of cycle edges into a ring (vertex walk).
///
/// Rejects edge sets that are not a single simple cycle (every vertex
/// must have degree exactly 2, and the walk must close after visiting
/// all vertices) instead of panicking or looping.
pub fn ring_from_segs(segs: &[Seg]) -> DecodeResult<Ring> {
    let mut adjacency: BTreeMap<Point, Vec<Point>> = BTreeMap::new();
    for s in segs {
        adjacency.entry(s.u()).or_default().push(s.v());
        adjacency.entry(s.v()).or_default().push(s.u());
    }
    for (v, nbrs) in &adjacency {
        if nbrs.len() != 2 {
            return Err(DecodeError::BadStructure {
                what: "cycle edges",
                detail: format!("vertex {v:?} has degree {} (want 2)", nbrs.len()),
            });
        }
    }
    let Some(start) = adjacency.keys().next().copied() else {
        return Err(DecodeError::BadStructure {
            what: "cycle edges",
            detail: "empty cycle".to_string(),
        });
    };
    let mut walk = vec![start];
    let mut prev = start;
    let mut cur = adjacency[&start][0];
    while cur != start {
        if walk.len() > adjacency.len() {
            return Err(DecodeError::BadStructure {
                what: "cycle edges",
                detail: "edge walk does not close".to_string(),
            });
        }
        walk.push(cur);
        let nbrs = &adjacency[&cur];
        let next = if nbrs[0] == prev { nbrs[1] } else { nbrs[0] };
        prev = cur;
        cur = next;
    }
    if walk.len() != adjacency.len() {
        return Err(DecodeError::BadStructure {
            what: "cycle edges",
            detail: "edges form more than one cycle".to_string(),
        });
    }
    Ok(Ring::try_new(walk)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_spatial::{pt, rect_ring};

    fn figure3_region() -> Region {
        // Face with hole, plus an island face inside the hole (Fig 3).
        Region::try_new(vec![
            Face::try_new(
                rect_ring(0.0, 0.0, 10.0, 10.0),
                vec![rect_ring(2.0, 2.0, 8.0, 8.0)],
            )
            .unwrap(),
            Face::simple(rect_ring(4.0, 4.0, 6.0, 6.0)),
        ])
        .unwrap()
    }

    #[test]
    fn region_roundtrip_with_structure() {
        let region = figure3_region();
        let mut store = PageStore::new();
        let stored = save_region(&region, &mut store);
        assert_eq!(stored.num_faces, 2);
        assert_eq!(stored.num_cycles, 3);
        assert_eq!(stored.num_segments, 12);
        assert_eq!(mob_base::Real::new(stored.area), region.area());
        let back = load_region(&stored, &store).unwrap();
        assert_eq!(back.area(), region.area());
        assert_eq!(back.num_faces(), 2);
        assert_eq!(back.num_cycles(), 3);
        // Semantics preserved: same membership on probe points.
        for p in [
            pt(1.0, 5.0),
            pt(3.0, 5.0),
            pt(5.0, 5.0),
            pt(20.0, 20.0),
            pt(2.0, 2.0),
        ] {
            assert_eq!(back.contains_point(p), region.contains_point(p), "{p:?}");
        }
    }

    #[test]
    fn links_are_circular_and_complete() {
        let region = figure3_region();
        let mut store = PageStore::new();
        let stored = save_region(&region, &mut store);
        let records: Vec<RegionHalfSegRecord> = load_array(&stored.halfsegments, &store).unwrap();
        // Every halfsegment belongs to exactly one cycle and the chains
        // partition the array.
        let mut seen = vec![false; records.len()];
        let cycles: Vec<CycleRecord> = load_array(&stored.cycles, &store).unwrap();
        for c in &cycles {
            let mut idx = c.first_halfseg;
            loop {
                assert!(!seen[idx as usize], "halfsegment in two cycles");
                seen[idx as usize] = true;
                assert_eq!(records[idx as usize].cycle, cycles_index_of(&cycles, c));
                idx = records[idx as usize].next_in_cycle;
                if idx == c.first_halfseg {
                    break;
                }
            }
        }
        assert!(seen.iter().all(|b| *b), "unlinked halfsegment");
    }

    fn cycles_index_of(cycles: &[CycleRecord], c: &CycleRecord) -> u32 {
        cycles
            .iter()
            .position(|x| x == c)
            .expect("cycle must be present") as u32
    }

    #[test]
    fn empty_region_roundtrip() {
        let mut store = PageStore::new();
        let stored = save_region(&Region::empty(), &mut store);
        assert_eq!(stored.num_faces, 0);
        let back = load_region(&stored, &store).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn ring_from_segs_chains() {
        let ring = rect_ring(0.0, 0.0, 2.0, 2.0);
        let rebuilt = ring_from_segs(&ring.segments()).unwrap();
        // Same cycle up to orientation.
        assert!(rebuilt == ring || rebuilt == ring.reversed());
    }
}
