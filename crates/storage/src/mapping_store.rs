//! Storage layout for sliced representations (Sec 4.2–4.3, Fig 7).
//!
//! Fixed-size units (`const(bool)`, `ureal`, `upoint`, ...) are stored
//! directly in the `units` array. Variable-size units (`upoints`,
//! `uregion`) store subarray references; all units of one `mapping`
//! share the same database arrays, exactly as in Fig 7.

use crate::checked::{count_u32, idx_usize};
use crate::dbarray::{save_array, SavedArray, SubArrayRef};
use crate::page::PageStore;
use crate::record::{get_bool, get_f64, put_f64, FixedRecord};
use mob_base::{DecodeError, DecodeResult, Real, TimeInterval};
use mob_core::{
    MCycle, MovingBool, MovingLine, MovingPoint, MovingPoints, MovingReal, MovingRegion,
    PointMotion, Unit,
};

impl FixedRecord for PointMotion {
    const SIZE: usize = 32;
    const WHAT: &'static str = "point motion";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.x0.get());
        put_f64(out, self.x1.get());
        put_f64(out, self.y0.get());
        put_f64(out, self.y1.get());
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(PointMotion::new(
            Real::try_new(get_f64(buf, 0)?)?,
            Real::try_new(get_f64(buf, 8)?)?,
            Real::try_new(get_f64(buf, 16)?)?,
            Real::try_new(get_f64(buf, 24)?)?,
        ))
    }
}

// ---------------------------------------------------------------------
// Fixed-size units
// ---------------------------------------------------------------------

/// `const(bool)` unit record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UBoolRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// The constant value.
    pub value: bool,
}

impl FixedRecord for UBoolRecord {
    const SIZE: usize = TimeInterval::SIZE + 1;
    const WHAT: &'static str = "ubool record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        out.push(u8::from(self.value));
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(UBoolRecord {
            interval: TimeInterval::read(buf)?,
            value: get_bool(buf, TimeInterval::SIZE)?,
        })
    }
}

/// `ureal` unit record: interval plus `(a, b, c, r)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct URealRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// Quadratic coefficient.
    pub a: f64,
    /// Linear coefficient.
    pub b: f64,
    /// Constant coefficient.
    pub c: f64,
    /// Square-root flag.
    pub r: bool,
}

impl FixedRecord for URealRecord {
    const SIZE: usize = TimeInterval::SIZE + 25;
    const WHAT: &'static str = "ureal record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        put_f64(out, self.a);
        put_f64(out, self.b);
        put_f64(out, self.c);
        out.push(u8::from(self.r));
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        let o = TimeInterval::SIZE;
        Ok(URealRecord {
            interval: TimeInterval::read(buf)?,
            a: get_f64(buf, o)?,
            b: get_f64(buf, o + 8)?,
            c: get_f64(buf, o + 16)?,
            r: get_bool(buf, o + 24)?,
        })
    }
}

/// `upoint` unit record: interval plus the `MPoint` quadruple.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UPointRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// The linear motion.
    pub motion: PointMotion,
}

impl FixedRecord for UPointRecord {
    const SIZE: usize = TimeInterval::SIZE + PointMotion::SIZE;
    const WHAT: &'static str = "upoint record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        self.motion.write(out);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        Ok(UPointRecord {
            interval: TimeInterval::read(buf)?,
            motion: PointMotion::read(&buf[TimeInterval::SIZE..])?,
        })
    }
}

/// A stored fixed-size-unit mapping: a root record (count) and one
/// `units` database array.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMapping {
    /// Number of units.
    pub num_units: u32,
    /// The ordered units array.
    pub units: SavedArray,
}

/// Check the root-record count against the saved units array.
pub(crate) fn check_root_count(num_units: u32, units: &SavedArray) -> DecodeResult<()> {
    if idx_usize(num_units) != units.count {
        return Err(DecodeError::CountMismatch {
            what: "mapping root record",
            expected: idx_usize(num_units),
            found: units.count,
        });
    }
    Ok(())
}

/// Save `moving(bool)`.
pub fn save_mbool(m: &MovingBool, store: &mut PageStore) -> StoredMapping {
    let records: Vec<UBoolRecord> = m
        .units()
        .iter()
        .map(|u| UBoolRecord {
            interval: *u.interval(),
            value: *u.value(),
        })
        .collect();
    StoredMapping {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
    }
}

/// Save `moving(real)`.
pub fn save_mreal(m: &MovingReal, store: &mut PageStore) -> StoredMapping {
    let records: Vec<URealRecord> = m
        .units()
        .iter()
        .map(|u| {
            let (a, b, c, r) = u.coeffs();
            URealRecord {
                interval: *u.interval(),
                a: a.get(),
                b: b.get(),
                c: c.get(),
                r,
            }
        })
        .collect();
    StoredMapping {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
    }
}

/// Save `moving(point)`.
pub fn save_mpoint(m: &MovingPoint, store: &mut PageStore) -> StoredMapping {
    let records: Vec<UPointRecord> = m
        .units()
        .iter()
        .map(|u| UPointRecord {
            interval: *u.interval(),
            motion: *u.motion(),
        })
        .collect();
    StoredMapping {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
    }
}

// ---------------------------------------------------------------------
// Variable-size units: upoints (Fig 7's example shape)
// ---------------------------------------------------------------------

/// `upoints` unit record: interval, subarray reference into the shared
/// motions array, and the 3D bounding cube.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UPointsRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// Subrange of the shared motions array.
    pub sub: SubArrayRef,
    /// Bounding cube `(min_x, min_y, max_x, max_y, t_min, t_max)`.
    pub cube: [f64; 6],
}

impl FixedRecord for UPointsRecord {
    const SIZE: usize = TimeInterval::SIZE + SubArrayRef::SIZE + 48;
    const WHAT: &'static str = "upoints record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        self.sub.write(out);
        for v in self.cube {
            put_f64(out, v);
        }
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        let o = TimeInterval::SIZE + SubArrayRef::SIZE;
        let mut cube = [0.0; 6];
        for (k, c) in cube.iter_mut().enumerate() {
            *c = get_f64(buf, o + 8 * k)?;
        }
        Ok(UPointsRecord {
            interval: TimeInterval::read(buf)?,
            sub: SubArrayRef::read(&buf[TimeInterval::SIZE..])?,
            cube,
        })
    }
}

/// A stored `moving(points)`: the units array plus one shared subarray
/// (Fig 7: "a `mapping` data structure containing three units, for a
/// unit type with one subarray, such as `upoints`").
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMPoints {
    /// Number of units.
    pub num_units: u32,
    /// The ordered units array.
    pub units: SavedArray,
    /// The shared motions array.
    pub motions: SavedArray,
}

/// Save `moving(points)`.
pub fn save_mpoints(m: &MovingPoints, store: &mut PageStore) -> StoredMPoints {
    let mut motions: Vec<PointMotion> = Vec::new();
    let mut records: Vec<UPointsRecord> = Vec::with_capacity(m.num_units());
    for u in m.units() {
        let start = count_u32(motions.len());
        motions.extend_from_slice(u.motions());
        let cube = u.bounding_cube();
        records.push(UPointsRecord {
            interval: *u.interval(),
            sub: SubArrayRef {
                start,
                end: count_u32(motions.len()),
            },
            cube: [
                cube.rect.min_x().get(),
                cube.rect.min_y().get(),
                cube.rect.max_x().get(),
                cube.rect.max_y().get(),
                cube.t_min.as_f64(),
                cube.t_max.as_f64(),
            ],
        });
    }
    StoredMPoints {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
        motions: save_array(&motions, store),
    }
}

// ---------------------------------------------------------------------
// Variable-size units: uline (one msegments subarray, Sec 4.2)
// ---------------------------------------------------------------------

/// `uline` unit record: interval, subarray reference into the shared
/// moving-segment array, bounding cube.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ULineRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// Subrange of the shared msegments array.
    pub sub: SubArrayRef,
    /// Bounding cube `(min_x, min_y, max_x, max_y, t_min, t_max)`.
    pub cube: [f64; 6],
}

impl FixedRecord for ULineRecord {
    const SIZE: usize = TimeInterval::SIZE + SubArrayRef::SIZE + 48;
    const WHAT: &'static str = "uline record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        self.sub.write(out);
        for v in self.cube {
            put_f64(out, v);
        }
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        let o = TimeInterval::SIZE + SubArrayRef::SIZE;
        let mut cube = [0.0; 6];
        for (k, c) in cube.iter_mut().enumerate() {
            *c = get_f64(buf, o + 8 * k)?;
        }
        Ok(ULineRecord {
            interval: TimeInterval::read(buf)?,
            sub: SubArrayRef::read(&buf[TimeInterval::SIZE..])?,
            cube,
        })
    }
}

/// A stored `moving(line)`: units array plus one shared msegments array.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMLine {
    /// Number of units.
    pub num_units: u32,
    /// The ordered units array.
    pub units: SavedArray,
    /// The shared moving-segment array.
    pub msegments: SavedArray,
}

/// Save `moving(line)`.
pub fn save_mline(m: &MovingLine, store: &mut PageStore) -> StoredMLine {
    let mut msegments: Vec<MSegRecord> = Vec::new();
    let mut records: Vec<ULineRecord> = Vec::with_capacity(m.num_units());
    for u in m.units() {
        let start = count_u32(msegments.len());
        for ms in u.msegs() {
            msegments.push(MSegRecord {
                s: *ms.start_motion(),
                e: *ms.end_motion(),
            });
        }
        let cube = u.bounding_cube();
        records.push(ULineRecord {
            interval: *u.interval(),
            sub: SubArrayRef {
                start,
                end: count_u32(msegments.len()),
            },
            cube: [
                cube.rect.min_x().get(),
                cube.rect.min_y().get(),
                cube.rect.max_x().get(),
                cube.rect.max_y().get(),
                cube.t_min.as_f64(),
                cube.t_max.as_f64(),
            ],
        });
    }
    StoredMLine {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
        msegments: save_array(&msegments, store),
    }
}

// ---------------------------------------------------------------------
// Variable-size units: uregion (three subarrays, Sec 4.2)
// ---------------------------------------------------------------------

/// Moving-segment record: the two motions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MSegRecord {
    /// Start-vertex motion.
    pub s: PointMotion,
    /// End-vertex motion.
    pub e: PointMotion,
}

impl FixedRecord for MSegRecord {
    const SIZE: usize = 2 * PointMotion::SIZE;
    const WHAT: &'static str = "mseg record";
    fn write(&self, out: &mut Vec<u8>) {
        self.s.write(out);
        self.e.write(out);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        Ok(MSegRecord {
            s: PointMotion::read(buf)?,
            e: PointMotion::read(&buf[PointMotion::SIZE..])?,
        })
    }
}

/// Moving-cycle record: subrange of the `msegments` array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MCycleRecord {
    /// Moving segments of this cycle.
    pub msegs: SubArrayRef,
    /// `true` for hole cycles.
    pub is_hole: bool,
}

impl FixedRecord for MCycleRecord {
    const SIZE: usize = SubArrayRef::SIZE + 1;
    const WHAT: &'static str = "mcycle record";
    fn write(&self, out: &mut Vec<u8>) {
        self.msegs.write(out);
        out.push(u8::from(self.is_hole));
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(MCycleRecord {
            msegs: SubArrayRef::read(buf)?,
            is_hole: get_bool(buf, SubArrayRef::SIZE)?,
        })
    }
}

/// Moving-face record: subrange of the `mcycles` array (first cycle is
/// the outer one).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MFaceRecord {
    /// Cycles of this face.
    pub cycles: SubArrayRef,
}

impl FixedRecord for MFaceRecord {
    const SIZE: usize = SubArrayRef::SIZE;
    const WHAT: &'static str = "mface record";
    fn write(&self, out: &mut Vec<u8>) {
        self.cycles.write(out);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(MFaceRecord {
            cycles: SubArrayRef::read(buf)?,
        })
    }
}

/// `uregion` unit record: interval, subarray reference, bounding cube,
/// plus the Sec 4.2 summary quadruple for the time-dependent *size*
/// ("one might add further summary information ... such as the
/// (a, b, c, r) quadruples for ... perimeter and size").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct URegionRecord {
    /// Unit interval.
    pub interval: TimeInterval,
    /// Faces of this unit (subrange of `mfaces`).
    pub faces: SubArrayRef,
    /// Bounding cube.
    pub cube: [f64; 6],
    /// Area summary: coefficients of the exact quadratic `a·t² + b·t + c`.
    pub area: [f64; 3],
}

impl FixedRecord for URegionRecord {
    const SIZE: usize = TimeInterval::SIZE + SubArrayRef::SIZE + 48 + 24;
    const WHAT: &'static str = "uregion record";
    fn write(&self, out: &mut Vec<u8>) {
        self.interval.write(out);
        self.faces.write(out);
        for v in self.cube {
            put_f64(out, v);
        }
        for v in self.area {
            put_f64(out, v);
        }
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        let o = TimeInterval::SIZE + SubArrayRef::SIZE;
        let mut cube = [0.0; 6];
        for (k, c) in cube.iter_mut().enumerate() {
            *c = get_f64(buf, o + 8 * k)?;
        }
        let mut area = [0.0; 3];
        for (k, c) in area.iter_mut().enumerate() {
            *c = get_f64(buf, o + 48 + 8 * k)?;
        }
        Ok(URegionRecord {
            interval: TimeInterval::read(buf)?,
            faces: SubArrayRef::read(&buf[TimeInterval::SIZE..])?,
            cube,
            area,
        })
    }
}

/// A stored `moving(region)`: the units array plus three shared
/// subarrays (`msegments`, `mcycles`, `mfaces` — Sec 4.2).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredMRegion {
    /// Number of units.
    pub num_units: u32,
    /// The ordered units array.
    pub units: SavedArray,
    /// Shared moving-segment array.
    pub msegments: SavedArray,
    /// Shared moving-cycle array.
    pub mcycles: SavedArray,
    /// Shared moving-face array.
    pub mfaces: SavedArray,
}

/// Save `moving(region)`.
pub fn save_mregion(m: &MovingRegion, store: &mut PageStore) -> StoredMRegion {
    let mut msegments: Vec<MSegRecord> = Vec::new();
    let mut mcycles: Vec<MCycleRecord> = Vec::new();
    let mut mfaces: Vec<MFaceRecord> = Vec::new();
    let mut records: Vec<URegionRecord> = Vec::with_capacity(m.num_units());
    for u in m.units() {
        let face_start = count_u32(mfaces.len());
        for f in u.faces() {
            let cycle_start = count_u32(mcycles.len());
            let mut push_cycle = |cyc: &MCycle, is_hole: bool, mcycles: &mut Vec<MCycleRecord>| {
                let seg_start = count_u32(msegments.len());
                for ms in cyc.msegs() {
                    msegments.push(MSegRecord {
                        s: *ms.start_motion(),
                        e: *ms.end_motion(),
                    });
                }
                mcycles.push(MCycleRecord {
                    msegs: SubArrayRef {
                        start: seg_start,
                        end: count_u32(msegments.len()),
                    },
                    is_hole,
                });
            };
            push_cycle(&f.outer, false, &mut mcycles);
            for h in &f.holes {
                push_cycle(h, true, &mut mcycles);
            }
            mfaces.push(MFaceRecord {
                cycles: SubArrayRef {
                    start: cycle_start,
                    end: count_u32(mcycles.len()),
                },
            });
        }
        let cube = u.bounding_cube();
        let (aa, ab, ac, _) = u.area_ureal().coeffs();
        records.push(URegionRecord {
            interval: *u.interval(),
            faces: SubArrayRef {
                start: face_start,
                end: count_u32(mfaces.len()),
            },
            cube: [
                cube.rect.min_x().get(),
                cube.rect.min_y().get(),
                cube.rect.max_x().get(),
                cube.rect.max_y().get(),
                cube.t_min.as_f64(),
                cube.t_max.as_f64(),
            ],
            area: [aa.get(), ab.get(), ac.get()],
        });
    }
    StoredMRegion {
        num_units: count_u32(records.len()),
        units: save_array(&records, store),
        msegments: save_array(&msegments, store),
        mcycles: save_array(&mcycles, store),
        mfaces: save_array(&mfaces, store),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbarray::load_array;
    use crate::view::{
        open_mbool, open_mline, open_mpoint, open_mpoints, open_mreal, open_mregion, Verify,
    };
    use mob_base::{r, t, Interval, Val};
    use mob_core::{ConstUnit, MFace, MSeg, Mapping, ULine, UPoints, UReal, URegion};
    use mob_spatial::{pt, rect_ring};

    fn iv(s: f64, e: f64) -> TimeInterval {
        Interval::closed(t(s), t(e))
    }

    #[test]
    fn mbool_roundtrip() {
        let m = Mapping::try_new(vec![
            ConstUnit::new(Interval::closed_open(t(0.0), t(1.0)), true),
            ConstUnit::new(Interval::closed_open(t(1.0), t(2.0)), false),
        ])
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_mbool(&m, &mut store);
        assert_eq!(stored.num_units, 2);
        let view = open_mbool(&stored, &store, Verify::Full).unwrap();
        assert_eq!(view.materialize_validated().unwrap(), m);
    }

    #[test]
    fn mreal_roundtrip() {
        let m = Mapping::try_new(vec![
            UReal::quadratic(
                Interval::closed_open(t(0.0), t(1.0)),
                r(1.0),
                r(2.0),
                r(3.0),
            ),
            UReal::try_new(iv(1.0, 2.0), r(0.0), r(0.0), r(4.0), true).unwrap(),
        ])
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_mreal(&m, &mut store);
        let back = open_mreal(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        assert_eq!(back, m);
        assert_eq!(back.at_instant(t(1.5)), Val::Def(r(2.0)));
    }

    #[test]
    fn mpoint_roundtrip() {
        let m = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(2.0, 1.0)),
            (t(2.0), pt(0.0, 3.0)),
        ]);
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let back = open_mpoint(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        assert_eq!(back, m);
        assert_eq!(back.at_instant(t(0.5)), Val::Def(pt(1.0, 0.5)));
    }

    #[test]
    fn mpoints_roundtrip_with_shared_subarray() {
        let u1 = UPoints::try_new(
            Interval::closed_open(t(0.0), t(1.0)),
            vec![
                PointMotion::stationary(pt(0.0, 0.0)),
                PointMotion::stationary(pt(1.0, 0.0)),
            ],
        )
        .unwrap();
        let u2 = UPoints::try_new(
            iv(1.0, 2.0),
            vec![
                PointMotion::stationary(pt(0.0, 0.0)),
                PointMotion::stationary(pt(1.0, 0.0)),
                PointMotion::stationary(pt(2.0, 0.0)),
            ],
        )
        .unwrap();
        let m = Mapping::try_new(vec![u1, u2]).unwrap();
        let mut store = PageStore::new();
        let stored = save_mpoints(&m, &mut store);
        assert_eq!(stored.num_units, 2);
        // One shared motions array holding 5 records.
        let motions: Vec<PointMotion> = load_array(&stored.motions, &store).unwrap();
        assert_eq!(motions.len(), 5);
        let back = open_mpoints(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mregion_roundtrip() {
        let u1 = URegion::interpolate(
            Interval::closed_open(t(0.0), t(1.0)),
            &rect_ring(0.0, 0.0, 1.0, 1.0),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
        )
        .unwrap();
        let u2 = URegion::interpolate(
            iv(1.0, 2.0),
            &rect_ring(1.0, 0.0, 2.0, 1.0),
            &rect_ring(1.0, 1.0, 2.0, 2.0),
        )
        .unwrap();
        let m: MovingRegion = Mapping::try_new(vec![u1, u2]).unwrap();
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        assert_eq!(stored.num_units, 2);
        let back = open_mregion(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        // Compare semantically: same region at probe instants.
        for k in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let a = m.at_instant(t(k)).unwrap();
            let b = back.at_instant(t(k)).unwrap();
            assert_eq!(a.area(), b.area(), "at t={k}");
            assert_eq!(a.num_faces(), b.num_faces());
        }
    }

    #[test]
    fn mregion_area_summary_matches() {
        // The stored summary quadruple evaluates to the live area.
        let u = URegion::interpolate(
            iv(0.0, 1.0),
            &rect_ring(0.0, 0.0, 2.0, 2.0),
            &rect_ring(0.0, 0.0, 4.0, 4.0),
        )
        .unwrap();
        let m: MovingRegion = Mapping::single(u.clone());
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        let rec: Vec<URegionRecord> = crate::dbarray::load_array(&stored.units, &store).unwrap();
        let [a, b, c] = rec[0].area;
        for k in [0.0f64, 0.5, 1.0] {
            let summary = a * k * k + b * k + c;
            let live = u.area_ureal().value_at(t(k)).get();
            assert!((summary - live).abs() < 1e-9, "{summary} vs {live}");
        }
    }

    #[test]
    fn mregion_with_hole_roundtrip() {
        let outer = MCycle::interpolate(
            t(0.0),
            &rect_ring(0.0, 0.0, 4.0, 4.0),
            t(1.0),
            &rect_ring(0.0, 0.0, 4.0, 4.0),
        )
        .unwrap();
        let hole = MCycle::interpolate(
            t(0.0),
            &rect_ring(1.0, 1.0, 2.0, 2.0),
            t(1.0),
            &rect_ring(2.0, 2.0, 3.0, 3.0),
        )
        .unwrap();
        let m: MovingRegion = Mapping::single(
            URegion::try_new(iv(0.0, 1.0), vec![MFace::new(outer, vec![hole])]).unwrap(),
        );
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        let back = open_mregion(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        let reg = back.at_instant(t(0.5)).unwrap();
        assert_eq!(reg.num_cycles(), 2);
        assert_eq!(reg.area(), r(15.0));
    }

    #[test]
    fn mline_roundtrip() {
        let m1 = MSeg::between(
            t(0.0),
            mob_spatial::pt(0.0, 0.0),
            mob_spatial::pt(1.0, 0.0),
            t(1.0),
            mob_spatial::pt(0.0, 1.0),
            mob_spatial::pt(1.0, 1.0),
        )
        .unwrap();
        let m2 = MSeg::between(
            t(1.0),
            mob_spatial::pt(0.0, 1.0),
            mob_spatial::pt(1.0, 1.0),
            t(2.0),
            mob_spatial::pt(0.0, 3.0),
            mob_spatial::pt(1.0, 3.0),
        )
        .unwrap();
        let ml: MovingLine = Mapping::try_new(vec![
            ULine::try_new(Interval::closed_open(t(0.0), t(1.0)), vec![m1]).unwrap(),
            ULine::try_new(iv(1.0, 2.0), vec![m2]).unwrap(),
        ])
        .unwrap();
        let mut store = PageStore::new();
        let stored = save_mline(&ml, &mut store);
        assert_eq!(stored.num_units, 2);
        let back = open_mline(&stored, &store, Verify::Full)
            .unwrap()
            .materialize_validated()
            .unwrap();
        assert_eq!(back, ml);
        for k in [0.0, 0.5, 1.5, 2.0] {
            assert_eq!(back.at_instant(t(k)).unwrap(), ml.at_instant(t(k)).unwrap());
        }
    }

    #[test]
    fn empty_mappings() {
        let mut store = PageStore::new();
        let stored = save_mpoint(&MovingPoint::empty(), &mut store);
        assert_eq!(stored.num_units, 0);
        let view = open_mpoint(&stored, &store, Verify::Full).unwrap();
        assert!(view.materialize_validated().unwrap().is_empty());
    }
}
