//! Storage layout for `range(instant)` (periods) and `intime` values —
//! the remaining non-temporal constructed types of Sec 4.1: "a value of
//! type `range(α)` is represented as an array of interval records
//! ordered by value".

use crate::checked::count_u32;
use crate::dbarray::{load_array, save_array, SavedArray};
use crate::page::PageStore;
use crate::record::FixedRecord;
use mob_base::{DecodeResult, Instant, Intime, Periods, TimeInterval};
use mob_spatial::Point;

/// A stored `range(instant)` value.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredPeriods {
    /// Number of component intervals.
    pub count: u32,
    /// The ordered interval records.
    pub intervals: SavedArray,
}

/// Save a periods value.
pub fn save_periods(p: &Periods, store: &mut PageStore) -> StoredPeriods {
    let records: Vec<TimeInterval> = p.iter().copied().collect();
    StoredPeriods {
        count: count_u32(records.len()),
        intervals: save_array(&records, store),
    }
}

/// Load a periods value back.
pub fn load_periods(stored: &StoredPeriods, store: &PageStore) -> DecodeResult<Periods> {
    let records: Vec<TimeInterval> = load_array(&stored.intervals, store)?;
    Ok(Periods::try_new(records)?)
}

/// An `intime(point)` record: instant plus position (Sec 4.1: "a value
/// of type `intime(α)` is represented by a corresponding record").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IPointRecord {
    /// The instant.
    pub instant: Instant,
    /// The position.
    pub value: Point,
}

impl FixedRecord for IPointRecord {
    const SIZE: usize = Instant::SIZE + Point::SIZE;
    const WHAT: &'static str = "intime(point) record";
    fn write(&self, out: &mut Vec<u8>) {
        self.instant.write(out);
        self.value.write(out);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        crate::record::need_bytes(buf, Self::SIZE, Self::WHAT)?;
        Ok(IPointRecord {
            instant: Instant::read(buf)?,
            value: Point::read(&buf[Instant::SIZE..])?,
        })
    }
}

impl From<Intime<Point>> for IPointRecord {
    fn from(it: Intime<Point>) -> Self {
        IPointRecord {
            instant: it.instant,
            value: it.value,
        }
    }
}

impl From<IPointRecord> for Intime<Point> {
    fn from(r: IPointRecord) -> Self {
        Intime::new(r.instant, r.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, Interval};
    use mob_spatial::pt;

    #[test]
    fn periods_roundtrip() {
        let p = Periods::from_unmerged(vec![
            Interval::closed(t(0.0), t(1.0)),
            Interval::open(t(3.0), t(4.0)),
            TimeInterval::point(t(7.0)),
        ]);
        let mut store = PageStore::new();
        let stored = save_periods(&p, &mut store);
        assert_eq!(stored.count, 3);
        assert_eq!(load_periods(&stored, &store).unwrap(), p);
    }

    #[test]
    fn empty_periods() {
        let mut store = PageStore::new();
        let stored = save_periods(&Periods::empty(), &mut store);
        assert_eq!(stored.count, 0);
        assert!(load_periods(&stored, &store).unwrap().is_empty());
    }

    #[test]
    fn large_periods_external() {
        let p = Periods::from_unmerged(
            (0..200)
                .map(|k| Interval::closed(t(k as f64 * 2.0), t(k as f64 * 2.0 + 1.0)))
                .collect(),
        );
        let mut store = PageStore::new();
        let stored = save_periods(&p, &mut store);
        assert!(!stored.intervals.is_inline());
        assert_eq!(load_periods(&stored, &store).unwrap(), p);
    }

    #[test]
    fn intime_record_roundtrip() {
        let it = Intime::new(t(2.5), pt(1.0, -3.0));
        let rec: IPointRecord = it.into();
        let mut buf = Vec::new();
        rec.write(&mut buf);
        assert_eq!(buf.len(), IPointRecord::SIZE);
        let back: Intime<Point> = IPointRecord::read(&buf).unwrap().into();
        assert_eq!(back, it);
    }
}
