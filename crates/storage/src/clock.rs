//! Injectable time for the maintenance supervisor.
//!
//! Everything in the retry/backoff path tells time through a [`Clock`],
//! never through `std::time::Instant` or `std::thread::sleep` directly:
//! this module is the single sanctioned home of those raw calls (the
//! `no_raw_sleep` xtask lint bans them everywhere else), so tests drive
//! whole backoff schedules through a [`VirtualClock`] in zero real
//! time and still observe every sleep the policy would have taken.

use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonic clock plus a sleep. Implementations must be cheap to
/// share across threads (`Send + Sync`).
pub trait Clock: Send + Sync {
    /// Monotonic elapsed time since an arbitrary per-clock origin.
    fn now(&self) -> Duration;

    /// Block the calling thread for `d` (real or virtual).
    fn sleep(&self, d: Duration);
}

/// Real time: `Instant::now` against a construction-time origin, and
/// `thread::sleep`.
#[derive(Clone, Debug)]
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> SystemClock {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

#[derive(Debug, Default)]
struct VirtualState {
    now: Duration,
    slept: Vec<Duration>,
}

/// Deterministic test time: `sleep` advances the clock instantly and
/// records the requested duration, so a test can run a whole retry
/// schedule synchronously and then assert on exactly what was slept.
/// Clones share state (the handle is an `Arc`).
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    inner: Arc<Mutex<VirtualState>>,
}

impl VirtualClock {
    /// A virtual clock starting at zero with no recorded sleeps.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    fn with<R>(&self, f: impl FnOnce(&mut VirtualState) -> R) -> R {
        match self.inner.lock() {
            Ok(mut g) => f(&mut g),
            Err(p) => f(&mut p.into_inner()),
        }
    }

    /// Advance virtual time without recording a sleep (an external
    /// event, e.g. "a poll interval passed").
    pub fn advance(&self, d: Duration) {
        self.with(|s| s.now += d);
    }

    /// Every duration passed to [`Clock::sleep`] so far, in order.
    #[must_use]
    pub fn slept(&self) -> Vec<Duration> {
        self.with(|s| s.slept.clone())
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.with(|s| s.now)
    }

    fn sleep(&self, d: Duration) {
        self.with(|s| {
            s.now += d;
            s.slept.push(d);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_instantly_and_records() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_millis(5));
        clock.advance(Duration::from_millis(2));
        clock.sleep(Duration::from_millis(1));
        assert_eq!(clock.now(), Duration::from_millis(8));
        assert_eq!(
            clock.slept(),
            vec![Duration::from_millis(5), Duration::from_millis(1)]
        );
        // Clones share the same timeline.
        let other = clock.clone();
        other.sleep(Duration::from_millis(1));
        assert_eq!(clock.slept().len(), 3);
    }

    #[test]
    fn system_clock_is_monotone() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
