//! `StoreIo` — the only gate between the storage layer and the world.
//!
//! Everything the durable store lifecycle ([`crate::durable`]) does to
//! the outside world goes through this small trait: whole-file reads,
//! whole-file writes, fsync, atomic rename, remove, list. Three
//! implementations cover the whole test matrix:
//!
//! * [`MemIo`] — an in-memory directory (`BTreeMap` behind a mutex);
//!   hermetic tests and the `mob-check --self-test` fixtures.
//! * [`FsIo`] — real `std::fs` rooted at a directory. The *only* module
//!   in the workspace allowed to call `std::fs` write paths (enforced by
//!   the `no_unchecked_io` xtask lint).
//! * [`FaultyIo`] — a deterministic, seeded fault injector wrapping any
//!   inner `StoreIo`: crash points measured in *write units* (every
//!   payload byte is one unit, every metadata operation one more), torn
//!   writes at the crash point, loss or scrambling of un-synced data at
//!   the crash, read-side bit flips, and forced operation errors. The
//!   crash-consistency campaign sweeps its crash budget over every unit
//!   of a commit.
//!
//! # Fault model
//!
//! [`FaultyIo`] models a page cache over a durable disk:
//!
//! * `write_file` lands in the **cache** only. If the crash budget runs
//!   out mid-write, a prefix of the bytes lands (a torn write) and the
//!   process is dead: every later operation fails with a crashed error.
//! * `append_file` also lands in the cache, but with **append-unit
//!   granularity**: the previously durable prefix of the file is
//!   recorded as a watermark, and no crash mask may damage bytes below
//!   it — only the un-synced appended suffix is at risk. This is what
//!   makes crash points inside a WAL delta append meaningful instead of
//!   all-or-nothing.
//! * `sync` flushes one file's cached content to the **disk** image.
//! * `rename` is atomic in the cache; it flushes through to disk only
//!   what the cache holds — renaming a never-synced file moves whatever
//!   prefix the cache has (exactly the hazard that makes
//!   *shadow-write → fsync → rename* an ordering, not a style choice).
//! * At crash time the surviving state is: the disk image, plus — per
//!   un-synced cached file — either nothing, a prefix, or a
//!   same-length scramble, chosen by the seed ([`FaultMask`]).
//!
//! After a simulated crash, [`FaultyIo::into_survivor`] produces a clean
//! [`MemIo`] holding exactly what a rebooted process would find.

use crate::checksum::checksum64_seeded;
use mob_base::{DecodeError, DecodeResult};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Abstract file operations for store files. All paths are flat names
/// inside one logical directory; implementations may map them onto a
/// real directory ([`FsIo`]) or a map ([`MemIo`]).
pub trait StoreIo {
    /// Read a whole file. Missing files are a [`DecodeError::Io`].
    fn read_file(&self, name: &str) -> DecodeResult<Vec<u8>>;

    /// Write (create or truncate) a whole file. Not durable until
    /// [`StoreIo::sync`] — a crash may tear or drop it.
    fn write_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()>;

    /// Append bytes to a file, creating it if missing. Not durable until
    /// [`StoreIo::sync`]. Unlike a whole-file rewrite, the previously
    /// *synced* content of the file is never at risk: appends only add
    /// blocks, so a crash can damage at most the un-synced suffix — the
    /// property the WAL delta commit protocol relies on.
    ///
    /// The default implementation is read + concat + rewrite, which is
    /// semantically correct for implementations without a cheaper path.
    fn append_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        let mut existing = if self.exists(name) {
            self.read_file(name)?
        } else {
            Vec::new()
        };
        existing.extend_from_slice(bytes);
        self.write_file(name, &existing)
    }

    /// Make a previously written file durable (fsync).
    fn sync(&self, name: &str) -> DecodeResult<()>;

    /// Atomically rename `from` over `to` (replacing `to` if present).
    fn rename(&self, from: &str, to: &str) -> DecodeResult<()>;

    /// Remove a file. Removing a missing file is an error.
    fn remove(&self, name: &str) -> DecodeResult<()>;

    /// Whether a file exists.
    fn exists(&self, name: &str) -> bool;

    /// All file names, sorted.
    fn list(&self) -> DecodeResult<Vec<String>>;
}

fn io_err(op: &str, name: &str, detail: impl std::fmt::Display) -> DecodeError {
    DecodeError::Io(format!("{op} {name}: {detail}"))
}

/// Marker substring carried by every **permanent** storage-full error a
/// [`FaultyIo`] injects. The maintenance retry classifier
/// ([`crate::supervisor::classify`]) treats any I/O error containing
/// this text as not worth retrying; everything else I/O-shaped is
/// presumed transient.
pub const STORAGE_FULL_MARKER: &str = "storage full: no space left on device";

// ---------------------------------------------------------------------
// MemIo
// ---------------------------------------------------------------------

/// An in-memory [`StoreIo`]: a map of name → bytes behind a mutex.
/// Cloning shares the underlying directory (it is an `Arc`), so a
/// [`FaultyIo`] wrapper and a post-crash reopen can observe the same
/// surviving state.
#[derive(Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemIo {
    /// An empty in-memory directory.
    #[must_use]
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// Direct snapshot of the directory contents (test introspection).
    pub fn dump(&self) -> Vec<(String, Vec<u8>)> {
        match self.files.lock() {
            Ok(f) => f.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            Err(p) => p
                .into_inner()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut BTreeMap<String, Vec<u8>>) -> R) -> R {
        match self.files.lock() {
            Ok(mut g) => f(&mut g),
            Err(p) => f(&mut p.into_inner()),
        }
    }
}

impl StoreIo for MemIo {
    fn read_file(&self, name: &str) -> DecodeResult<Vec<u8>> {
        self.with(|f| {
            f.get(name)
                .cloned()
                .ok_or_else(|| io_err("read", name, "no such file"))
        })
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        self.with(|f| {
            f.insert(name.to_string(), bytes.to_vec());
        });
        Ok(())
    }

    fn append_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        self.with(|f| {
            f.entry(name.to_string())
                .or_default()
                .extend_from_slice(bytes);
        });
        Ok(())
    }

    fn sync(&self, _name: &str) -> DecodeResult<()> {
        Ok(()) // memory is always "durable" for the process lifetime
    }

    fn rename(&self, from: &str, to: &str) -> DecodeResult<()> {
        self.with(|f| match f.remove(from) {
            Some(bytes) => {
                f.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(io_err("rename", from, "no such file")),
        })
    }

    fn remove(&self, name: &str) -> DecodeResult<()> {
        self.with(|f| match f.remove(name) {
            Some(_) => Ok(()),
            None => Err(io_err("remove", name, "no such file")),
        })
    }

    fn exists(&self, name: &str) -> bool {
        self.with(|f| f.contains_key(name))
    }

    fn list(&self) -> DecodeResult<Vec<String>> {
        Ok(self.with(|f| f.keys().cloned().collect()))
    }
}

// ---------------------------------------------------------------------
// FsIo
// ---------------------------------------------------------------------

/// Real-filesystem [`StoreIo`] rooted at a directory.
///
/// This is the single sanctioned home of `std::fs` write calls in the
/// workspace (`no_unchecked_io` lint): every other crate that wants to
/// put bytes on disk goes through a `StoreIo`, which is what makes the
/// fault-injection campaign representative of the real write path.
pub struct FsIo {
    root: PathBuf,
}

impl FsIo {
    /// Open (creating if needed) a directory as the store root.
    pub fn open(root: impl AsRef<Path>) -> DecodeResult<FsIo> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create_dir_all", &root.display().to_string(), e))?;
        Ok(FsIo { root })
    }

    /// The root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> DecodeResult<PathBuf> {
        // Flat namespace only: no separators, no traversal.
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(io_err("resolve", name, "invalid store file name"));
        }
        Ok(self.root.join(name))
    }

    fn sync_root_dir(&self) -> DecodeResult<()> {
        // Directory fsync makes renames durable on POSIX. Failure to
        // *open* the directory is reported; platforms where directories
        // cannot be fsynced degrade silently (the rename itself is still
        // atomic there).
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| io_err("open dir", &self.root.display().to_string(), e))?;
        let _ = dir.sync_all();
        Ok(())
    }
}

impl StoreIo for FsIo {
    fn read_file(&self, name: &str) -> DecodeResult<Vec<u8>> {
        let path = self.path_of(name)?;
        std::fs::read(&path).map_err(|e| io_err("read", name, e))
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        let path = self.path_of(name)?;
        let mut f = std::fs::File::create(&path).map_err(|e| io_err("create", name, e))?;
        f.write_all(bytes).map_err(|e| io_err("write", name, e))?;
        Ok(())
    }

    fn append_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        let path = self.path_of(name)?;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("append-open", name, e))?;
        f.write_all(bytes).map_err(|e| io_err("append", name, e))?;
        Ok(())
    }

    fn sync(&self, name: &str) -> DecodeResult<()> {
        let path = self.path_of(name)?;
        let f = std::fs::File::open(&path).map_err(|e| io_err("open", name, e))?;
        f.sync_all().map_err(|e| io_err("fsync", name, e))
    }

    fn rename(&self, from: &str, to: &str) -> DecodeResult<()> {
        let from_p = self.path_of(from)?;
        let to_p = self.path_of(to)?;
        std::fs::rename(&from_p, &to_p).map_err(|e| io_err("rename", from, e))?;
        self.sync_root_dir()
    }

    fn remove(&self, name: &str) -> DecodeResult<()> {
        let path = self.path_of(name)?;
        std::fs::remove_file(&path).map_err(|e| io_err("remove", name, e))
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).map(|p| p.exists()).unwrap_or(false)
    }

    fn list(&self) -> DecodeResult<Vec<String>> {
        let rd = std::fs::read_dir(&self.root)
            .map_err(|e| io_err("read_dir", &self.root.display().to_string(), e))?;
        let mut out: Vec<String> = rd
            .flatten()
            .filter(|e| e.path().is_file())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .collect();
        out.sort();
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// FaultyIo
// ---------------------------------------------------------------------

/// What happens to each un-synced cached file at crash time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMask {
    /// Un-synced writes survive intact (a kind filesystem).
    KeepUnsynced,
    /// Un-synced writes are truncated to a seed-chosen prefix.
    DropUnsynced,
    /// Un-synced writes keep their length but a seed-chosen suffix is
    /// scrambled (the page cache wrote some pages, not others).
    ScrambleUnsynced,
}

/// All fault masks, for campaign sweeps.
pub const FAULT_MASKS: [FaultMask; 3] = [
    FaultMask::KeepUnsynced,
    FaultMask::DropUnsynced,
    FaultMask::ScrambleUnsynced,
];

#[derive(Default)]
struct FaultState {
    /// Un-flushed file contents (the page cache).
    cache: BTreeMap<String, Vec<u8>>,
    /// Names written since their last sync, mapped to the length of the
    /// prefix that *was* durable when the file first went dirty. A
    /// whole-file rewrite puts everything at risk (prefix 0); an append
    /// to a synced file risks only the appended suffix — the crash mask
    /// never damages bytes below this watermark.
    dirty: BTreeMap<String, usize>,
    /// Write units consumed so far.
    spent: u64,
    /// Whether the crash point has fired.
    crashed: bool,
    /// Transient-fault bookkeeping: how many injected failures each
    /// `(file, operation)` pair has already seen.
    transient_seen: BTreeMap<(String, &'static str), u32>,
}

/// A deterministic fault-injecting [`StoreIo`] wrapper (see the module
/// docs for the fault model).
pub struct FaultyIo {
    disk: MemIo,
    state: Mutex<FaultState>,
    /// Crash after this many write units (`u64::MAX` = never).
    crash_after: u64,
    mask: FaultMask,
    seed: u64,
    /// Flip this many read-side bits per `read_file` (bit rot).
    read_flips: u32,
    /// Fail each `(file, op)` pair this many times before letting it
    /// through (0 = transient injection off). Failed attempts consume
    /// no write units and leave no state behind.
    transient_fails: u32,
    /// Permanent storage-full threshold in write units (`u64::MAX` =
    /// unlimited disk). Once the *next* operation would push `spent`
    /// past it, mutating operations fail forever with a
    /// [`STORAGE_FULL_MARKER`] error — without crashing the process.
    full_after: u64,
}

impl FaultyIo {
    /// Wrap `disk` with a crash point at `crash_after` write units and
    /// the given un-synced-data policy. `seed` drives every
    /// pseudo-random choice (truncation points, scramble bytes, read
    /// flips), so a `(crash_after, mask, seed)` triple is fully
    /// reproducible.
    #[must_use]
    pub fn new(disk: MemIo, crash_after: u64, mask: FaultMask, seed: u64) -> FaultyIo {
        FaultyIo {
            disk,
            state: Mutex::new(FaultState::default()),
            crash_after,
            mask,
            seed,
            read_flips: 0,
            transient_fails: 0,
            full_after: u64::MAX,
        }
    }

    /// A wrapper that never crashes but flips `flips` deterministic bits
    /// in every `read_file` result (bit rot / bad sector injection).
    #[must_use]
    pub fn with_read_flips(disk: MemIo, flips: u32, seed: u64) -> FaultyIo {
        FaultyIo {
            disk,
            state: Mutex::new(FaultState::default()),
            crash_after: u64::MAX,
            mask: FaultMask::KeepUnsynced,
            seed,
            read_flips: flips,
            transient_fails: 0,
            full_after: u64::MAX,
        }
    }

    /// A wrapper that never crashes but fails every `(file, operation)`
    /// pair `fails_per_op` times before letting it through — the
    /// transient-fault mode the maintenance retry loop trains against.
    /// Counting is exact and per pair, so a retried operation succeeds
    /// on attempt `fails_per_op + 1` while a *different* file or
    /// operation still owes its own failures. Only mutating operations
    /// (write, append, sync, rename, remove) are gated: failing reads
    /// would make *recovery* discard committed deltas it merely could
    /// not read, which is a different fault class (see
    /// [`FaultyIo::with_read_flips`]). Deterministic: the same call
    /// sequence produces the same outcomes under any seed.
    #[must_use]
    pub fn transient(disk: MemIo, fails_per_op: u32, seed: u64) -> FaultyIo {
        FaultyIo::new(disk, u64::MAX, FaultMask::KeepUnsynced, seed).with_transient(fails_per_op)
    }

    /// A wrapper modelling a disk with `budget` write units of free
    /// space: once an operation would push the total spent past it,
    /// every mutating operation fails forever with a permanent
    /// [`STORAGE_FULL_MARKER`] error. Reads keep working — the store is
    /// wedged, not dead.
    #[must_use]
    pub fn storage_full(disk: MemIo, budget: u64, seed: u64) -> FaultyIo {
        FaultyIo::new(disk, u64::MAX, FaultMask::KeepUnsynced, seed).with_storage_full(budget)
    }

    /// Add transient injection (see [`FaultyIo::transient`]) to this
    /// wrapper, composing with any crash budget already configured.
    #[must_use]
    pub fn with_transient(mut self, fails_per_op: u32) -> FaultyIo {
        self.transient_fails = fails_per_op;
        self
    }

    /// Add a storage-full threshold (see [`FaultyIo::storage_full`]) to
    /// this wrapper, composing with any crash budget already configured.
    #[must_use]
    pub fn with_storage_full(mut self, budget: u64) -> FaultyIo {
        self.full_after = budget;
        self
    }

    /// Total write units a workload would consume (run it against a
    /// `crash_after = u64::MAX` wrapper, then ask). Sweeping
    /// `0..=write_units()` visits **every** crash point of the workload.
    #[must_use]
    pub fn write_units(&self) -> u64 {
        self.with_state(|s| s.spent)
    }

    /// Whether the crash point has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.with_state(|s| s.crashed)
    }

    /// Tear down the dead process: apply the fault mask to every
    /// un-synced cached file and return the surviving durable state as a
    /// clean [`MemIo`] — what a rebooted process finds.
    #[must_use]
    pub fn into_survivor(self) -> MemIo {
        let state = match self.state.into_inner() {
            Ok(s) => s,
            Err(p) => p.into_inner(),
        };
        let seed = self.seed;
        let mask = self.mask;
        let disk = self.disk;
        for (name, &synced) in &state.dirty {
            let Some(cached) = state.cache.get(name) else {
                continue;
            };
            // Bytes below the watermark were durable before the file
            // went dirty: no mask may touch them.
            let synced = synced.min(cached.len());
            let file_seed = checksum64_seeded(name.as_bytes(), seed);
            match mask {
                FaultMask::KeepUnsynced => {
                    let _ = disk.write_file(name, cached);
                }
                FaultMask::DropUnsynced => {
                    // Keep a seed-chosen prefix (possibly empty, possibly
                    // everything — the filesystem wrote some pages), but
                    // never less than the synced watermark.
                    let keep = if cached.is_empty() {
                        0
                    } else {
                        usize::try_from(file_seed % (cached.len() as u64 + 1)).unwrap_or(0)
                    };
                    let keep = keep.max(synced);
                    let _ = disk.write_file(name, &cached[..keep]);
                }
                FaultMask::ScrambleUnsynced => {
                    let mut bytes = cached.clone();
                    if !bytes.is_empty() {
                        let from = usize::try_from(file_seed % (bytes.len() as u64)).unwrap_or(0);
                        let from = from.max(synced);
                        for (i, b) in bytes.iter_mut().enumerate().skip(from) {
                            let r = checksum64_seeded(&(i as u64).to_le_bytes(), file_seed);
                            *b ^= u8::try_from(r & 0xff).unwrap_or(1);
                        }
                    }
                    let _ = disk.write_file(name, &bytes);
                }
            }
        }
        // Synced files already live on `disk`; cached-but-clean files
        // were flushed by `sync`. Nothing else survives.
        disk
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut FaultState) -> R) -> R {
        match self.state.lock() {
            Ok(mut g) => f(&mut g),
            Err(p) => f(&mut p.into_inner()),
        }
    }

    /// Transient gate: fail the first `transient_fails` calls for each
    /// `(file, op)` pair, then let every later call through. Runs before
    /// any write units are spent, so rejected attempts leave no trace.
    fn transient_gate(&self, op: &'static str, name: &str) -> DecodeResult<()> {
        if self.transient_fails == 0 {
            return Ok(());
        }
        self.with_state(|s| {
            let seen = s.transient_seen.entry((name.to_string(), op)).or_insert(0);
            if *seen < self.transient_fails {
                *seen += 1;
                Err(DecodeError::Io(format!(
                    "transient fault injected: {op} {name} (failure {seen} of {})",
                    self.transient_fails
                )))
            } else {
                Ok(())
            }
        })
    }

    /// Storage-full gate: a mutating operation that would push the
    /// spent-unit total past `full_after` fails permanently — forever,
    /// for every file — without crashing the process or spending units.
    fn full_gate(&self, op: &'static str, name: &str, cost: u64) -> DecodeResult<()> {
        if self.full_after == u64::MAX {
            return Ok(());
        }
        let over = self.with_state(|s| s.spent.saturating_add(cost) > self.full_after);
        if over {
            Err(DecodeError::Io(format!(
                "{op} {name}: {STORAGE_FULL_MARKER}"
            )))
        } else {
            Ok(())
        }
    }

    /// Spend `cost` write units; returns how many were granted before
    /// the crash point (and marks the crash once the budget is gone).
    fn spend(&self, cost: u64) -> DecodeResult<u64> {
        self.with_state(|s| {
            if s.crashed {
                return Err(DecodeError::Io("simulated crash: process is dead".into()));
            }
            let budget = self.crash_after.saturating_sub(s.spent);
            let granted = budget.min(cost);
            s.spent += granted;
            if granted < cost {
                s.crashed = true;
            }
            Ok(granted)
        })
    }

    fn crashed_err() -> DecodeError {
        DecodeError::Io("simulated crash: torn write".into())
    }

    /// Current content of `name` as the process sees it (cache over
    /// disk).
    fn visible(&self, name: &str) -> DecodeResult<Vec<u8>> {
        let cached = self.with_state(|s| s.cache.get(name).cloned());
        match cached {
            Some(b) => Ok(b),
            None => self.disk.read_file(name),
        }
    }
}

impl StoreIo for FaultyIo {
    fn read_file(&self, name: &str) -> DecodeResult<Vec<u8>> {
        self.spend(0)?; // dead processes do not read
        let mut bytes = self.visible(name)?;
        if self.read_flips > 0 && !bytes.is_empty() {
            let file_seed = checksum64_seeded(name.as_bytes(), self.seed ^ 0xB17F);
            for k in 0..u64::from(self.read_flips) {
                let r = checksum64_seeded(&k.to_le_bytes(), file_seed);
                let pos = usize::try_from(r % (bytes.len() as u64)).unwrap_or(0);
                bytes[pos] ^= 1 << ((r >> 32) & 7);
            }
        }
        Ok(bytes)
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        self.spend(0)?; // dead processes do not write
        self.transient_gate("write", name)?;
        self.full_gate("write", name, bytes.len() as u64)?;
        let granted = self.spend(bytes.len() as u64)?;
        let torn = granted < bytes.len() as u64;
        let landed = usize::try_from(granted).unwrap_or(bytes.len());
        self.with_state(|s| {
            s.cache.insert(name.to_string(), bytes[..landed].to_vec());
            // A rewrite truncates: everything is at risk, watermark 0.
            s.dirty.insert(name.to_string(), 0);
        });
        if torn {
            Err(Self::crashed_err())
        } else {
            Ok(())
        }
    }

    fn append_file(&self, name: &str, bytes: &[u8]) -> DecodeResult<()> {
        self.spend(0)?; // dead processes do not write
        self.transient_gate("append", name)?;
        self.full_gate("append", name, bytes.len() as u64)?;
        // Snapshot the visible content before spending: if this call
        // crashes, the cache must still record the torn prefix.
        let prior = {
            let cached = self.with_state(|s| s.cache.get(name).cloned());
            match cached {
                Some(b) => b,
                None if self.disk.exists(name) => self.disk.read_file(name)?,
                None => Vec::new(),
            }
        };
        let granted = self.spend(bytes.len() as u64)?;
        let torn = granted < bytes.len() as u64;
        let landed = usize::try_from(granted).unwrap_or(bytes.len());
        let base = prior.len();
        let mut content = prior;
        content.extend_from_slice(&bytes[..landed]);
        self.with_state(|s| {
            s.cache.insert(name.to_string(), content);
            // First dirtying append on a clean file: everything visible
            // so far is durable, so the watermark is its length. A file
            // already dirty keeps its (lower) watermark.
            s.dirty.entry(name.to_string()).or_insert(base);
        });
        if torn {
            Err(Self::crashed_err())
        } else {
            Ok(())
        }
    }

    fn sync(&self, name: &str) -> DecodeResult<()> {
        self.spend(0)?; // dead processes do not sync
        self.transient_gate("sync", name)?;
        self.full_gate("sync", name, 1)?;
        let granted = self.spend(1)?;
        if granted < 1 {
            return Err(Self::crashed_err());
        }
        let cached = self.with_state(|s| {
            s.dirty.remove(name);
            s.cache.get(name).cloned()
        });
        if let Some(bytes) = cached {
            self.disk.write_file(name, &bytes)?;
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> DecodeResult<()> {
        self.spend(0)?; // dead processes do not rename
        self.transient_gate("rename", from)?;
        self.full_gate("rename", from, 1)?;
        let granted = self.spend(1)?;
        if granted < 1 {
            return Err(Self::crashed_err());
        }
        // Atomic in the visible namespace; what lands on disk is
        // whatever the cache holds (possibly a torn prefix, if the
        // caller skipped the fsync).
        let content = self.visible(from)?;
        let was_dirty = self.with_state(|s| {
            let dirty = s.dirty.remove(from);
            s.cache.remove(from);
            dirty
        });
        if self.disk.exists(from) {
            self.disk.remove(from)?;
        }
        if let Some(watermark) = was_dirty {
            // The rename's directory update is durable (journaled
            // metadata), but the *data* it points at keeps its un-synced
            // status: model by re-dirtying under the new name, carrying
            // the synced watermark along.
            self.with_state(|s| {
                s.cache.insert(to.to_string(), content.clone());
                s.dirty.insert(to.to_string(), watermark);
            });
            // Ensure the name exists on disk even if the data is later
            // damaged by the crash mask.
            self.disk.write_file(to, &content)?;
        } else {
            self.disk.write_file(to, &content)?;
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> DecodeResult<()> {
        self.spend(0)?; // dead processes do not remove
                        // Removing frees space, so the full gate does not apply here.
        self.transient_gate("remove", name)?;
        let granted = self.spend(1)?;
        if granted < 1 {
            return Err(Self::crashed_err());
        }
        let had_cache = self.with_state(|s| {
            s.dirty.remove(name);
            s.cache.remove(name).is_some()
        });
        if self.disk.exists(name) {
            self.disk.remove(name)?;
        } else if !had_cache {
            return Err(io_err("remove", name, "no such file"));
        }
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        if self.crashed() {
            return false;
        }
        self.with_state(|s| s.cache.contains_key(name)) || self.disk.exists(name)
    }

    fn list(&self) -> DecodeResult<Vec<String>> {
        self.spend(0)?;
        let mut names = self.disk.list()?;
        self.with_state(|s| names.extend(s.cache.keys().cloned()));
        names.sort();
        names.dedup();
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_roundtrip_and_errors() {
        let io = MemIo::new();
        assert!(io.read_file("a").is_err());
        io.write_file("a", b"hello").unwrap();
        assert_eq!(io.read_file("a").unwrap(), b"hello");
        assert!(io.exists("a"));
        io.sync("a").unwrap();
        io.rename("a", "b").unwrap();
        assert!(!io.exists("a"));
        assert_eq!(io.read_file("b").unwrap(), b"hello");
        assert_eq!(io.list().unwrap(), vec!["b".to_string()]);
        io.remove("b").unwrap();
        assert!(io.remove("b").is_err());
        assert!(io.rename("b", "c").is_err());
    }

    #[test]
    fn fs_io_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mob-io-test-{}", std::process::id()));
        let io = FsIo::open(&dir).unwrap();
        io.write_file("x.bin", &[1, 2, 3]).unwrap();
        io.sync("x.bin").unwrap();
        assert_eq!(io.read_file("x.bin").unwrap(), vec![1, 2, 3]);
        io.rename("x.bin", "y.bin").unwrap();
        assert!(io.exists("y.bin") && !io.exists("x.bin"));
        assert_eq!(io.list().unwrap(), vec!["y.bin".to_string()]);
        io.remove("y.bin").unwrap();
        // Traversal is rejected.
        assert!(io.write_file("../evil", b"x").is_err());
        assert!(io.write_file("a/b", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_counts_units_and_tears_writes() {
        // Budget-free run to count units.
        let io = FaultyIo::new(MemIo::new(), u64::MAX, FaultMask::KeepUnsynced, 1);
        io.write_file("f", &[9; 10]).unwrap();
        io.sync("f").unwrap();
        io.rename("f", "g").unwrap();
        assert_eq!(io.write_units(), 12); // 10 bytes + sync + rename
        assert!(!io.crashed());

        // Crash mid-write: 4 of 10 bytes land, everything after fails.
        let io = FaultyIo::new(MemIo::new(), 4, FaultMask::KeepUnsynced, 1);
        assert!(io.write_file("f", &[9; 10]).is_err());
        assert!(io.crashed());
        assert!(io.sync("f").is_err());
        let survivor = io.into_survivor();
        assert_eq!(survivor.read_file("f").unwrap(), vec![9; 4]);
    }

    #[test]
    fn unsynced_data_obeys_the_fault_mask() {
        for mask in FAULT_MASKS {
            // Write 8 bytes un-synced, then crash on the sync (budget 8
            // covers the write, not the sync op).
            let io = FaultyIo::new(MemIo::new(), 8, mask, 7);
            io.write_file("f", &[0xAB; 8]).unwrap();
            assert!(io.sync("f").is_err());
            let survivor = io.into_survivor();
            let got = survivor.read_file("f").unwrap_or_default();
            match mask {
                FaultMask::KeepUnsynced => assert_eq!(got, vec![0xAB; 8]),
                FaultMask::DropUnsynced => {
                    assert!(got.len() <= 8);
                    assert!(got.iter().all(|&b| b == 0xAB));
                }
                FaultMask::ScrambleUnsynced => assert_eq!(got.len(), 8),
            }
        }
    }

    #[test]
    fn synced_data_survives_every_mask() {
        for mask in FAULT_MASKS {
            let io = FaultyIo::new(MemIo::new(), 10, mask, 3);
            io.write_file("f", &[1, 2, 3]).unwrap();
            io.sync("f").unwrap();
            // Crash later, on an unrelated write.
            let _ = io.write_file("g", &[0; 100]);
            let survivor = io.into_survivor();
            assert_eq!(survivor.read_file("f").unwrap(), vec![1, 2, 3], "{mask:?}");
        }
    }

    #[test]
    fn append_preserves_synced_prefix_under_every_mask() {
        for mask in FAULT_MASKS {
            for seed in 0..8u64 {
                // 6 synced bytes, then an un-synced 6-byte append; the
                // crash fires on the sync that would cover the append.
                let io = FaultyIo::new(MemIo::new(), 12, mask, seed);
                io.write_file("wal", &[0x11; 6]).unwrap();
                io.sync("wal").unwrap();
                let _ = io.append_file("wal", &[0x22; 6]);
                assert!(io.sync("wal").is_err());
                let survivor = io.into_survivor();
                let got = survivor.read_file("wal").unwrap_or_default();
                assert!(
                    got.len() >= 6 && got[..6] == [0x11; 6],
                    "synced prefix damaged under {mask:?} seed {seed}: {got:?}"
                );
                // Whatever suffix survives is a prefix of the append
                // (possibly scrambled under ScrambleUnsynced).
                assert!(got.len() <= 12, "{mask:?} seed {seed}");
                if mask != FaultMask::ScrambleUnsynced {
                    assert!(got[6..].iter().all(|&b| b == 0x22), "{mask:?} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn torn_append_lands_a_prefix_after_the_synced_base() {
        // Budget 8: 6-byte write + sync leaves 1 unit, so a 6-byte
        // append tears after 1 byte.
        let io = FaultyIo::new(MemIo::new(), 8, FaultMask::KeepUnsynced, 5);
        io.write_file("wal", &[0x11; 6]).unwrap();
        io.sync("wal").unwrap();
        assert!(io.append_file("wal", &[0x22; 6]).is_err());
        assert!(io.crashed());
        let survivor = io.into_survivor();
        let got = survivor.read_file("wal").unwrap();
        assert_eq!(got, vec![0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x22]);
    }

    #[test]
    fn append_then_rename_carries_the_watermark() {
        for mask in FAULT_MASKS {
            // Synced 4 bytes, un-synced 4-byte append, rename, crash.
            let io = FaultyIo::new(MemIo::new(), 10, mask, 11);
            io.write_file("a", &[0x33; 4]).unwrap();
            io.sync("a").unwrap();
            io.append_file("a", &[0x44; 4]).unwrap();
            io.rename("a", "b").unwrap();
            let _ = io.write_file("spill", &[0; 64]);
            let survivor = io.into_survivor();
            let got = survivor.read_file("b").unwrap();
            assert!(
                got.len() >= 4 && got[..4] == [0x33; 4],
                "watermark lost across rename under {mask:?}: {got:?}"
            );
        }
    }

    #[test]
    fn rewrite_resets_the_watermark() {
        // A whole-file rewrite of a previously synced file puts all of
        // it back at risk: DropUnsynced may truncate below the old
        // synced length.
        let mut saw_truncation_below_old_len = false;
        for seed in 0..32u64 {
            let io = FaultyIo::new(MemIo::new(), 13, FaultMask::DropUnsynced, seed);
            io.write_file("f", &[0x55; 6]).unwrap();
            io.sync("f").unwrap();
            io.write_file("f", &[0x66; 6]).unwrap();
            assert!(io.sync("f").is_err());
            let survivor = io.into_survivor();
            let got = survivor.read_file("f").unwrap_or_default();
            if got.len() < 6 {
                saw_truncation_below_old_len = true;
            }
            assert!(got.iter().all(|&b| b == 0x66), "seed {seed}: {got:?}");
        }
        assert!(saw_truncation_below_old_len);
    }

    #[test]
    fn mem_and_fs_append_create_and_extend() {
        let io = MemIo::new();
        io.append_file("log", &[1, 2]).unwrap();
        io.append_file("log", &[3]).unwrap();
        assert_eq!(io.read_file("log").unwrap(), vec![1, 2, 3]);

        let dir = std::env::temp_dir().join(format!("mob-io-append-{}", std::process::id()));
        let io = FsIo::open(&dir).unwrap();
        io.append_file("log", &[1, 2]).unwrap();
        io.append_file("log", &[3]).unwrap();
        assert_eq!(io.read_file("log").unwrap(), vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_faults_count_per_file_and_op() {
        let io = FaultyIo::transient(MemIo::new(), 2, 42);
        // Writing "a" fails exactly twice, then succeeds; the failed
        // attempts spend no write units.
        assert!(io.write_file("a", b"x").is_err());
        assert!(io.write_file("a", b"x").is_err());
        io.write_file("a", b"x").unwrap();
        assert_eq!(io.write_units(), 1);
        // A different op on the same file owes its own failures...
        assert!(io.sync("a").is_err());
        assert!(io.sync("a").is_err());
        io.sync("a").unwrap();
        // ...as does the same op on a different file.
        assert!(io.write_file("b", b"y").is_err());
        assert!(io.write_file("b", b"y").is_err());
        io.write_file("b", b"y").unwrap();
        // Once paid off, the pair stays healthy; nothing crashed.
        io.write_file("a", b"z").unwrap();
        assert!(!io.crashed());
    }

    #[test]
    fn transient_outcomes_are_stable_under_a_fixed_seed() {
        let run = |seed| {
            let io = FaultyIo::transient(MemIo::new(), 1, seed);
            let mut outcomes = Vec::new();
            for k in 0..4u8 {
                outcomes.push(io.write_file("f", &[k]).is_ok());
                outcomes.push(io.sync("f").is_ok());
            }
            (outcomes, io.into_survivor().dump())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn storage_full_is_permanent_and_leaves_reads_working() {
        let io = FaultyIo::storage_full(MemIo::new(), 8, 3);
        io.write_file("f", &[1; 6]).unwrap();
        io.sync("f").unwrap(); // 7 of 8 units spent
                               // The next write would cross the threshold: permanent failure
                               // carrying the classifier's marker...
        let err = io.write_file("g", &[2; 4]).unwrap_err();
        assert!(err.to_string().contains(STORAGE_FULL_MARKER), "{err}");
        // ...and every later mutation fails too, without a crash.
        assert!(io.write_file("f", &[0; 100]).is_err());
        assert!(!io.crashed());
        // Reads still serve, and removing (freeing space) is allowed.
        assert_eq!(io.read_file("f").unwrap(), vec![1; 6]);
        io.remove("f").unwrap();
    }

    #[test]
    fn read_flips_are_deterministic() {
        let disk = MemIo::new();
        disk.write_file("f", &[0u8; 64]).unwrap();
        let a = FaultyIo::with_read_flips(disk.clone(), 3, 99)
            .read_file("f")
            .unwrap();
        let b = FaultyIo::with_read_flips(disk.clone(), 3, 99)
            .read_file("f")
            .unwrap();
        assert_eq!(a, b);
        assert_ne!(a, vec![0u8; 64]);
        // At most 3 bytes differ (flips may collide).
        let diffs = a.iter().filter(|&&x| x != 0).count();
        assert!((1..=3).contains(&diffs));
        // The underlying disk is untouched.
        assert_eq!(disk.read_file("f").unwrap(), vec![0u8; 64]);
    }
}
