//! A simulated page store.
//!
//! Section 4 requires that attribute values "consist of a small number of
//! memory blocks that can be moved efficiently between secondary and main
//! memory". [`PageStore`] simulates that environment: blobs are stored as
//! chains of fixed-size pages, and page reads/writes are counted so that
//! experiments can measure I/O behaviour (experiment E5).

use mob_base::{DecodeError, DecodeResult};
use mob_obs::SharedCounter;

/// Default page size (bytes), matching common DBMS pages.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a stored blob (a chain of pages).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct BlobId(usize);

impl BlobId {
    /// The raw index of the blob inside its [`PageStore`].
    ///
    /// Exposed so a serialized root record can reference its blob by
    /// index; [`PageStore::write_blob`] assigns indices sequentially, so
    /// rewriting blobs in index order reproduces the same ids.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstruct a blob id from a raw index (used by store-file
    /// loading; validity is checked at first access).
    pub fn from_index(index: usize) -> BlobId {
        BlobId(index)
    }
}

struct Blob {
    /// Page images; all but the last are full.
    pages: Vec<Vec<u8>>,
    /// Exact byte length.
    len: usize,
}

/// A page-based blob store with I/O counters.
///
/// The counters are [`SharedCounter`]s (relaxed atomics mirrored into the
/// `mob-obs` registry as `store.pages_read` / `store.pages_written`), so a
/// `PageStore` is `Sync`: the parallel relation scans of `mob-rel` share
/// one store across worker threads behind an `Arc`, each worker opening
/// its own [`crate::view`] over the immutable, append-only blob data.
/// Counter totals remain exact under concurrency; only the interleaving
/// is unspecified.
pub struct PageStore {
    page_size: usize,
    blobs: Vec<Blob>,
    pages_written: SharedCounter,
    pages_read: SharedCounter,
}

impl PageStore {
    /// Create a store with the default page size.
    pub fn new() -> PageStore {
        PageStore::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Create a store with a custom page size.
    pub fn with_page_size(page_size: usize) -> PageStore {
        assert!(page_size > 0, "page size must be positive");
        PageStore {
            page_size,
            blobs: Vec::new(),
            pages_written: SharedCounter::new(mob_obs::metric!("store.pages_written")),
            pages_read: SharedCounter::new(mob_obs::metric!("store.pages_read")),
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Store a blob, counting one page write per page.
    pub fn write_blob(&mut self, bytes: &[u8]) -> BlobId {
        let pages: Vec<Vec<u8>> = if bytes.is_empty() {
            Vec::new()
        } else {
            bytes.chunks(self.page_size).map(|c| c.to_vec()).collect()
        };
        self.pages_written.add(pages.len() as u64);
        self.blobs.push(Blob {
            pages,
            len: bytes.len(),
        });
        BlobId(self.blobs.len() - 1)
    }

    /// Number of blobs currently stored.
    pub fn num_blobs(&self) -> usize {
        self.blobs.len()
    }

    /// Exact byte length of a blob, or a [`DecodeError`] for a dangling
    /// blob id.
    pub fn blob_len(&self, id: BlobId) -> DecodeResult<usize> {
        match self.blobs.get(id.0) {
            Some(b) => Ok(b.len),
            None => Err(DecodeError::OutOfBounds {
                what: "blob id",
                index: id.0,
                bound: self.blobs.len(),
            }),
        }
    }

    /// Fallible counterpart of [`PageStore::read_blob`]: dangling blob
    /// ids (e.g. decoded from corrupt root records) surface as a
    /// [`DecodeError`] instead of a panic.
    pub fn try_read_blob(&self, id: BlobId) -> DecodeResult<Vec<u8>> {
        let blob = match self.blobs.get(id.0) {
            Some(b) => b,
            None => {
                return Err(DecodeError::OutOfBounds {
                    what: "blob id",
                    index: id.0,
                    bound: self.blobs.len(),
                })
            }
        };
        self.pages_read.add(blob.pages.len() as u64);
        let mut out = Vec::with_capacity(blob.len);
        for p in &blob.pages {
            out.extend_from_slice(p);
        }
        Ok(out)
    }

    /// Fallible counterpart of [`PageStore::read_blob_range`]: dangling
    /// ids and out-of-range byte ranges surface as [`DecodeError`]s.
    pub fn try_read_blob_range(
        &self,
        id: BlobId,
        offset: usize,
        len: usize,
    ) -> DecodeResult<Vec<u8>> {
        let blob_len = self.blob_len(id)?;
        let end = offset.checked_add(len).ok_or(DecodeError::OutOfBounds {
            what: "blob range",
            index: usize::MAX,
            bound: blob_len,
        })?;
        if end > blob_len {
            return Err(DecodeError::OutOfBounds {
                what: "blob range",
                index: end,
                bound: blob_len,
            });
        }
        Ok(self.read_blob_range(id, offset, len))
    }

    /// Read a blob back, counting one page read per page.
    ///
    /// Panics on a dangling id — for trusted in-process ids only; decode
    /// paths use [`PageStore::try_read_blob`].
    pub fn read_blob(&self, id: BlobId) -> Vec<u8> {
        let blob = &self.blobs[id.0];
        self.pages_read.add(blob.pages.len() as u64);
        let mut out = Vec::with_capacity(blob.len);
        for p in &blob.pages {
            out.extend_from_slice(p);
        }
        out
    }

    /// Read `len` bytes of a blob starting at `offset`, touching (and
    /// counting) **only the pages that overlap the range** — the page-I/O
    /// primitive behind the lazy `MappingView` access path: a binary
    /// search over unit records reads `O(log n)` pages, not the whole
    /// blob.
    pub fn read_blob_range(&self, id: BlobId, offset: usize, len: usize) -> Vec<u8> {
        let blob = &self.blobs[id.0];
        assert!(
            offset + len <= blob.len,
            "read_blob_range: range {offset}..{} out of bounds (blob len {})",
            offset + len,
            blob.len
        );
        if len == 0 {
            return Vec::new();
        }
        let first = offset / self.page_size;
        let last = (offset + len - 1) / self.page_size;
        self.pages_read.add((last - first + 1) as u64);
        let mut out = Vec::with_capacity(len);
        for p in first..=last {
            let page = &blob.pages[p];
            let base = p * self.page_size;
            let s = if p == first { offset - base } else { 0 };
            let e = if p == last {
                offset + len - base
            } else {
                page.len()
            };
            out.extend_from_slice(&page[s..e]);
        }
        out
    }

    /// Number of pages a blob occupies.
    pub fn blob_pages(&self, id: BlobId) -> usize {
        self.blobs[id.0].pages.len()
    }

    /// Pages written since the last counter reset.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.get()
    }

    /// Pages read since the last counter reset.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.get()
    }

    /// Reset both I/O counters.
    pub fn reset_counters(&self) {
        self.pages_written.reset_local();
        self.pages_read.reset_local();
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_page_count() {
        let mut store = PageStore::with_page_size(8);
        let data: Vec<u8> = (0..20).collect();
        let id = store.write_blob(&data);
        assert_eq!(store.blob_pages(id), 3); // 8 + 8 + 4
        assert_eq!(store.pages_written(), 3);
        assert_eq!(store.read_blob(id), data);
        assert_eq!(store.pages_read(), 3);
        store.reset_counters();
        assert_eq!(store.pages_written(), 0);
        assert_eq!(store.pages_read(), 0);
    }

    #[test]
    fn range_reads_touch_only_overlapping_pages() {
        let mut store = PageStore::with_page_size(8);
        let data: Vec<u8> = (0..32).collect();
        let id = store.write_blob(&data);
        store.reset_counters();
        // Range inside one page.
        assert_eq!(store.read_blob_range(id, 9, 4), vec![9, 10, 11, 12]);
        assert_eq!(store.pages_read(), 1);
        // Range spanning a page boundary.
        store.reset_counters();
        assert_eq!(store.read_blob_range(id, 6, 4), vec![6, 7, 8, 9]);
        assert_eq!(store.pages_read(), 2);
        // Whole blob.
        store.reset_counters();
        assert_eq!(store.read_blob_range(id, 0, 32), data);
        assert_eq!(store.pages_read(), 4);
        // Empty range is free.
        store.reset_counters();
        assert!(store.read_blob_range(id, 16, 0).is_empty());
        assert_eq!(store.pages_read(), 0);
    }

    #[test]
    fn empty_blob() {
        let mut store = PageStore::new();
        let id = store.write_blob(&[]);
        assert_eq!(store.blob_pages(id), 0);
        assert!(store.read_blob(id).is_empty());
    }

    #[test]
    fn try_reads_reject_bad_ids_and_ranges() {
        let mut store = PageStore::with_page_size(8);
        let id = store.write_blob(&[1, 2, 3, 4]);
        assert_eq!(store.num_blobs(), 1);
        assert_eq!(store.blob_len(id).unwrap(), 4);
        assert_eq!(store.try_read_blob(id).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(store.try_read_blob_range(id, 1, 2).unwrap(), vec![2, 3]);
        // Dangling id.
        let dangling = BlobId::from_index(7);
        assert!(store.blob_len(dangling).is_err());
        assert!(store.try_read_blob(dangling).is_err());
        assert!(store.try_read_blob_range(dangling, 0, 1).is_err());
        // Out-of-range byte window.
        assert!(store.try_read_blob_range(id, 2, 3).is_err());
        assert!(store.try_read_blob_range(id, usize::MAX, 2).is_err());
    }

    #[test]
    fn multiple_blobs_independent() {
        let mut store = PageStore::with_page_size(4);
        let a = store.write_blob(&[1, 2, 3, 4, 5]);
        let b = store.write_blob(&[9, 9]);
        assert_eq!(store.read_blob(a), vec![1, 2, 3, 4, 5]);
        assert_eq!(store.read_blob(b), vec![9, 9]);
    }
}
