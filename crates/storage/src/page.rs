//! A simulated page store.
//!
//! Section 4 requires that attribute values "consist of a small number of
//! memory blocks that can be moved efficiently between secondary and main
//! memory". [`PageStore`] simulates that environment: blobs are stored as
//! chains of fixed-size pages, and page reads/writes are counted so that
//! experiments can measure I/O behaviour (experiment E5).

use crate::checksum::checksum64;
use mob_base::{DecodeError, DecodeResult};
use mob_obs::SharedCounter;
use std::sync::Arc;

/// Default page size (bytes), matching common DBMS pages.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Largest page size any header may declare (64 MiB). Anything beyond
/// this is treated as corruption: a single "page" larger than this is
/// not a page, it is an attacker-controlled allocation size.
pub const MAX_PAGE_SIZE: usize = 1 << 26;

/// Validate an untrusted page size: must be positive and at most
/// [`MAX_PAGE_SIZE`]. This is the single chokepoint through which every
/// decoded superblock/header page size must pass before a store is
/// built around it — a corrupt header can produce a [`DecodeError`],
/// never a panic or an absurd allocation.
pub fn validate_page_size(page_size: usize) -> DecodeResult<usize> {
    if page_size == 0 || page_size > MAX_PAGE_SIZE {
        return Err(DecodeError::BadStructure {
            what: "page size",
            detail: format!("page size {page_size} outside 1..={MAX_PAGE_SIZE}"),
        });
    }
    Ok(page_size)
}

/// Identifier of a stored blob (a chain of pages).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct BlobId(usize);

impl BlobId {
    /// The raw index of the blob inside its [`PageStore`].
    ///
    /// Exposed so a serialized root record can reference its blob by
    /// index; [`PageStore::write_blob`] assigns indices sequentially, so
    /// rewriting blobs in index order reproduces the same ids.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstruct a blob id from a raw index (used by store-file
    /// loading; validity is checked at first access).
    pub fn from_index(index: usize) -> BlobId {
        BlobId(index)
    }
}

struct Blob {
    /// Page images; all but the last are full. Shared via `Arc` so a
    /// [`PageStore::fork`] is O(#blobs) pointer copies, not a byte copy
    /// — the mechanism behind cheap immutable generations.
    pages: Arc<Vec<Vec<u8>>>,
    /// Exact byte length.
    len: usize,
    /// Set when the blob's backing storage failed an integrity check
    /// (page checksum mismatch in a durable file): reads surface
    /// [`DecodeError::Quarantined`] instead of untrusted bytes.
    quarantined: bool,
}

/// A page-based blob store with I/O counters.
///
/// The counters are [`SharedCounter`]s (relaxed atomics mirrored into the
/// `mob-obs` registry as `store.pages_read` / `store.pages_written`), so a
/// `PageStore` is `Sync`: the parallel relation scans of `mob-rel` share
/// one store across worker threads behind an `Arc`, each worker opening
/// its own [`crate::view`] over the immutable, append-only blob data.
/// Counter totals remain exact under concurrency; only the interleaving
/// is unspecified.
pub struct PageStore {
    page_size: usize,
    blobs: Vec<Blob>,
    pages_written: SharedCounter,
    pages_read: SharedCounter,
}

impl PageStore {
    /// Create a store with the default page size.
    pub fn new() -> PageStore {
        PageStore::with_page_size_trusted(DEFAULT_PAGE_SIZE)
    }

    /// Create a store with a custom page size.
    ///
    /// The size is validated through [`validate_page_size`] — zero or
    /// absurd sizes (e.g. decoded from a corrupt superblock) are a
    /// [`DecodeError`], never a panic. Trusted in-process literals can
    /// use [`PageStore::with_page_size_trusted`].
    pub fn with_page_size(page_size: usize) -> DecodeResult<PageStore> {
        Ok(PageStore::with_page_size_trusted(validate_page_size(
            page_size,
        )?))
    }

    /// Create a store with a compile-time-known page size.
    ///
    /// Panics (debug assert) on an invalid size — strictly for trusted
    /// in-process constants; anything decoded from bytes must go
    /// through [`PageStore::with_page_size`].
    pub fn with_page_size_trusted(page_size: usize) -> PageStore {
        debug_assert!(
            validate_page_size(page_size).is_ok(),
            "trusted page size {page_size} is invalid"
        );
        PageStore {
            page_size: page_size.clamp(1, MAX_PAGE_SIZE),
            blobs: Vec::new(),
            pages_written: SharedCounter::new(mob_obs::metric!("store.pages_written")),
            pages_read: SharedCounter::new(mob_obs::metric!("store.pages_read")),
        }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Store a blob, counting one page write per page.
    pub fn write_blob(&mut self, bytes: &[u8]) -> BlobId {
        let pages: Vec<Vec<u8>> = if bytes.is_empty() {
            Vec::new()
        } else {
            bytes.chunks(self.page_size).map(|c| c.to_vec()).collect()
        };
        self.pages_written.add(pages.len() as u64);
        self.blobs.push(Blob {
            pages: Arc::new(pages),
            len: bytes.len(),
            quarantined: false,
        });
        BlobId(self.blobs.len() - 1)
    }

    /// Fork the store: a new `PageStore` sharing every existing blob's
    /// page data by `Arc` pointer copy (no byte copies, no page-write
    /// accounting) with fresh I/O counters.
    ///
    /// This is the generational-MVCC snapshot primitive: a writer forks
    /// the current generation's store, appends re-saved mappings as new
    /// blobs, and publishes the fork as the next immutable generation
    /// while readers keep using the old one. Blob ids carry over
    /// unchanged, so root records referencing old blobs stay valid in
    /// the fork; quarantine flags are preserved.
    pub fn fork(&self) -> PageStore {
        PageStore {
            page_size: self.page_size,
            blobs: self
                .blobs
                .iter()
                .map(|b| Blob {
                    pages: Arc::clone(&b.pages),
                    len: b.len,
                    quarantined: b.quarantined,
                })
                .collect(),
            pages_written: SharedCounter::new(mob_obs::metric!("store.pages_written")),
            pages_read: SharedCounter::new(mob_obs::metric!("store.pages_read")),
        }
    }

    /// Quarantine a blob: its backing storage failed an integrity check
    /// (page checksum mismatch on a durable file), so every later read
    /// surfaces [`DecodeError::Quarantined`] instead of untrusted
    /// bytes. Counted in the `store.blobs_quarantined` metric.
    pub fn mark_quarantined(&mut self, id: BlobId) -> DecodeResult<()> {
        let n = self.blobs.len();
        match self.blobs.get_mut(id.0) {
            Some(b) => {
                if !b.quarantined {
                    b.quarantined = true;
                    mob_obs::metric!("store.blobs_quarantined").add(1);
                }
                Ok(())
            }
            None => Err(DecodeError::OutOfBounds {
                what: "blob id",
                index: id.0,
                bound: n,
            }),
        }
    }

    /// Whether a blob is quarantined (false for dangling ids).
    pub fn is_quarantined(&self, id: BlobId) -> bool {
        self.blobs.get(id.0).is_some_and(|b| b.quarantined)
    }

    /// Number of quarantined blobs.
    pub fn num_quarantined(&self) -> usize {
        self.blobs.iter().filter(|b| b.quarantined).count()
    }

    fn quarantine_check(&self, id: BlobId) -> DecodeResult<()> {
        if self.is_quarantined(id) {
            return Err(DecodeError::Quarantined {
                what: "blob",
                detail: format!("blob {} failed its page integrity checks", id.0),
            });
        }
        Ok(())
    }

    /// Number of blobs currently stored.
    pub fn num_blobs(&self) -> usize {
        self.blobs.len()
    }

    /// Exact byte length of a blob, or a [`DecodeError`] for a dangling
    /// blob id.
    pub fn blob_len(&self, id: BlobId) -> DecodeResult<usize> {
        self.quarantine_check(id)?;
        match self.blobs.get(id.0) {
            Some(b) => Ok(b.len),
            None => Err(DecodeError::OutOfBounds {
                what: "blob id",
                index: id.0,
                bound: self.blobs.len(),
            }),
        }
    }

    /// Fallible counterpart of [`PageStore::read_blob`]: dangling blob
    /// ids (e.g. decoded from corrupt root records) surface as a
    /// [`DecodeError`] instead of a panic.
    pub fn try_read_blob(&self, id: BlobId) -> DecodeResult<Vec<u8>> {
        self.quarantine_check(id)?;
        let blob = match self.blobs.get(id.0) {
            Some(b) => b,
            None => {
                return Err(DecodeError::OutOfBounds {
                    what: "blob id",
                    index: id.0,
                    bound: self.blobs.len(),
                })
            }
        };
        self.pages_read.add(blob.pages.len() as u64);
        let mut out = Vec::with_capacity(blob.len);
        for p in blob.pages.iter() {
            out.extend_from_slice(p);
        }
        Ok(out)
    }

    /// Fallible counterpart of [`PageStore::read_blob_range`]: dangling
    /// ids and out-of-range byte ranges surface as [`DecodeError`]s.
    pub fn try_read_blob_range(
        &self,
        id: BlobId,
        offset: usize,
        len: usize,
    ) -> DecodeResult<Vec<u8>> {
        let blob_len = self.blob_len(id)?;
        let end = offset.checked_add(len).ok_or(DecodeError::OutOfBounds {
            what: "blob range",
            index: usize::MAX,
            bound: blob_len,
        })?;
        if end > blob_len {
            return Err(DecodeError::OutOfBounds {
                what: "blob range",
                index: end,
                bound: blob_len,
            });
        }
        Ok(self.read_blob_range(id, offset, len))
    }

    /// Read a blob back, counting one page read per page.
    ///
    /// Panics on a dangling id — for trusted in-process ids only; decode
    /// paths use [`PageStore::try_read_blob`].
    pub fn read_blob(&self, id: BlobId) -> Vec<u8> {
        let blob = &self.blobs[id.0];
        self.pages_read.add(blob.pages.len() as u64);
        let mut out = Vec::with_capacity(blob.len);
        for p in blob.pages.iter() {
            out.extend_from_slice(p);
        }
        out
    }

    /// Read `len` bytes of a blob starting at `offset`, touching (and
    /// counting) **only the pages that overlap the range** — the page-I/O
    /// primitive behind the lazy `MappingView` access path: a binary
    /// search over unit records reads `O(log n)` pages, not the whole
    /// blob.
    pub fn read_blob_range(&self, id: BlobId, offset: usize, len: usize) -> Vec<u8> {
        let blob = &self.blobs[id.0];
        assert!(
            offset + len <= blob.len,
            "read_blob_range: range {offset}..{} out of bounds (blob len {})",
            offset + len,
            blob.len
        );
        if len == 0 {
            return Vec::new();
        }
        let first = offset / self.page_size;
        let last = (offset + len - 1) / self.page_size;
        self.pages_read.add((last - first + 1) as u64);
        let mut out = Vec::with_capacity(len);
        for p in first..=last {
            let page = &blob.pages[p];
            let base = p * self.page_size;
            let s = if p == first { offset - base } else { 0 };
            let e = if p == last {
                offset + len - base
            } else {
                page.len()
            };
            out.extend_from_slice(&page[s..e]);
        }
        out
    }

    /// Number of pages a blob occupies.
    pub fn blob_pages(&self, id: BlobId) -> usize {
        self.blobs[id.0].pages.len()
    }

    /// Pages written since the last counter reset.
    pub fn pages_written(&self) -> u64 {
        self.pages_written.get()
    }

    /// Pages read since the last counter reset.
    pub fn pages_read(&self) -> u64 {
        self.pages_read.get()
    }

    /// Reset both I/O counters.
    pub fn reset_counters(&self) {
        self.pages_written.reset_local();
        self.pages_read.reset_local();
    }
}

impl Default for PageStore {
    fn default() -> Self {
        PageStore::new()
    }
}

// ---------------------------------------------------------------------
// Sealed page frames
// ---------------------------------------------------------------------

/// Byte overhead of one sealed frame: checksum (8) + length (4).
pub const FRAME_OVERHEAD: usize = 12;

/// Seal a payload into a checksummed page frame and append it to `out`.
///
/// Layout: `crc u64 | len u32 | payload`, where `crc` is the
/// [`checksum64`] of `len || payload`. Every byte of the frame is
/// covered: a flip in the payload or the length disagrees with the
/// stored crc, and a flip in the stored crc disagrees with the
/// recomputed one — so damage is always caught *before* the structural
/// decoder sees the bytes ([`open_frame`]).
pub fn seal_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let len = crate::checked::count_u32(payload.len());
    let mut covered = Vec::with_capacity(4 + payload.len());
    covered.extend_from_slice(&len.to_le_bytes());
    covered.extend_from_slice(payload);
    out.extend_from_slice(&checksum64(&covered).to_le_bytes());
    out.extend_from_slice(&covered);
}

/// Open one sealed frame at the front of `bytes`: verify the checksum,
/// return the payload and the remainder of the buffer.
///
/// Damage classification: a frame whose advertised length does not fit
/// the buffer is [`DecodeError::Truncated`]; a checksum disagreement is
/// [`DecodeError::ChecksumMismatch`]. Neither lets a damaged payload
/// escape.
pub fn open_frame(bytes: &[u8]) -> DecodeResult<(&[u8], &[u8])> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(DecodeError::Truncated {
            what: "page frame header",
            need: FRAME_OVERHEAD,
            have: bytes.len(),
        });
    }
    // Total zip-copies: the length check above guarantees the full
    // header is present, and nothing here can panic regardless.
    let mut crc8 = [0u8; 8];
    for (d, s) in crc8.iter_mut().zip(bytes) {
        *d = *s;
    }
    let stored = u64::from_le_bytes(crc8);
    let mut len4 = [0u8; 4];
    for (d, s) in len4.iter_mut().zip(bytes.iter().skip(8)) {
        *d = *s;
    }
    let len = crate::checked::idx_usize(u32::from_le_bytes(len4));
    let end = FRAME_OVERHEAD
        .checked_add(len)
        .ok_or(DecodeError::Truncated {
            what: "page frame payload",
            need: usize::MAX,
            have: bytes.len(),
        })?;
    if end > bytes.len() {
        return Err(DecodeError::Truncated {
            what: "page frame payload",
            need: end,
            have: bytes.len(),
        });
    }
    let found = checksum64(bytes.get(8..end).unwrap_or_default());
    if found != stored {
        return Err(DecodeError::ChecksumMismatch {
            what: "page frame",
            expected: stored,
            found,
        });
    }
    let payload = bytes.get(FRAME_OVERHEAD..end).unwrap_or_default();
    let rest = bytes.get(end..).unwrap_or_default();
    Ok((payload, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_store(page_size: usize) -> PageStore {
        match PageStore::with_page_size(page_size) {
            Ok(s) => s,
            Err(e) => unreachable!("test page size {page_size} rejected: {e}"),
        }
    }

    #[test]
    fn roundtrip_and_page_count() {
        let mut store = small_store(8);
        let data: Vec<u8> = (0..20).collect();
        let id = store.write_blob(&data);
        assert_eq!(store.blob_pages(id), 3); // 8 + 8 + 4
        assert_eq!(store.pages_written(), 3);
        assert_eq!(store.read_blob(id), data);
        assert_eq!(store.pages_read(), 3);
        store.reset_counters();
        assert_eq!(store.pages_written(), 0);
        assert_eq!(store.pages_read(), 0);
    }

    #[test]
    fn range_reads_touch_only_overlapping_pages() {
        let mut store = small_store(8);
        let data: Vec<u8> = (0..32).collect();
        let id = store.write_blob(&data);
        store.reset_counters();
        // Range inside one page.
        assert_eq!(store.read_blob_range(id, 9, 4), vec![9, 10, 11, 12]);
        assert_eq!(store.pages_read(), 1);
        // Range spanning a page boundary.
        store.reset_counters();
        assert_eq!(store.read_blob_range(id, 6, 4), vec![6, 7, 8, 9]);
        assert_eq!(store.pages_read(), 2);
        // Whole blob.
        store.reset_counters();
        assert_eq!(store.read_blob_range(id, 0, 32), data);
        assert_eq!(store.pages_read(), 4);
        // Empty range is free.
        store.reset_counters();
        assert!(store.read_blob_range(id, 16, 0).is_empty());
        assert_eq!(store.pages_read(), 0);
    }

    #[test]
    fn empty_blob() {
        let mut store = PageStore::new();
        let id = store.write_blob(&[]);
        assert_eq!(store.blob_pages(id), 0);
        assert!(store.read_blob(id).is_empty());
    }

    #[test]
    fn try_reads_reject_bad_ids_and_ranges() {
        let mut store = small_store(8);
        let id = store.write_blob(&[1, 2, 3, 4]);
        assert_eq!(store.num_blobs(), 1);
        assert_eq!(store.blob_len(id).unwrap(), 4);
        assert_eq!(store.try_read_blob(id).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(store.try_read_blob_range(id, 1, 2).unwrap(), vec![2, 3]);
        // Dangling id.
        let dangling = BlobId::from_index(7);
        assert!(store.blob_len(dangling).is_err());
        assert!(store.try_read_blob(dangling).is_err());
        assert!(store.try_read_blob_range(dangling, 0, 1).is_err());
        // Out-of-range byte window.
        assert!(store.try_read_blob_range(id, 2, 3).is_err());
        assert!(store.try_read_blob_range(id, usize::MAX, 2).is_err());
    }

    #[test]
    fn multiple_blobs_independent() {
        let mut store = small_store(4);
        let a = store.write_blob(&[1, 2, 3, 4, 5]);
        let b = store.write_blob(&[9, 9]);
        assert_eq!(store.read_blob(a), vec![1, 2, 3, 4, 5]);
        assert_eq!(store.read_blob(b), vec![9, 9]);
    }

    #[test]
    fn page_size_validation() {
        assert!(PageStore::with_page_size(0).is_err());
        assert!(PageStore::with_page_size(MAX_PAGE_SIZE + 1).is_err());
        assert!(PageStore::with_page_size(1).is_ok());
        assert!(PageStore::with_page_size(MAX_PAGE_SIZE).is_ok());
        assert!(validate_page_size(0).is_err());
        assert_eq!(validate_page_size(4096).ok(), Some(4096));
    }

    #[test]
    fn quarantine_blocks_reads_but_not_neighbours() {
        let mut store = small_store(4);
        let bad = store.write_blob(&[1, 2, 3, 4, 5, 6]);
        let good = store.write_blob(&[7, 8]);
        assert!(!store.is_quarantined(bad));
        store.mark_quarantined(bad).unwrap_or(());
        // Idempotent; metric counted once (asserted indirectly: no panic).
        store.mark_quarantined(bad).unwrap_or(());
        assert!(store.is_quarantined(bad));
        assert_eq!(store.num_quarantined(), 1);
        let quarantined = |r: DecodeResult<Vec<u8>>| {
            matches!(r, Err(DecodeError::Quarantined { what: "blob", .. }))
        };
        assert!(quarantined(store.try_read_blob(bad)));
        assert!(quarantined(store.try_read_blob_range(bad, 0, 2)));
        assert!(matches!(
            store.blob_len(bad),
            Err(DecodeError::Quarantined { .. })
        ));
        // Healthy neighbour unaffected.
        assert_eq!(store.try_read_blob(good).unwrap_or_default(), vec![7, 8]);
        // Dangling ids are OutOfBounds, not quarantined.
        assert!(matches!(
            store.mark_quarantined(BlobId::from_index(9)),
            Err(DecodeError::OutOfBounds { .. })
        ));
        assert!(!store.is_quarantined(BlobId::from_index(9)));
    }

    #[test]
    fn fork_shares_blobs_and_isolates_appends() {
        let mut base = small_store(4);
        let a = base.write_blob(&[1, 2, 3, 4, 5]);
        let bad = base.write_blob(&[9]);
        base.mark_quarantined(bad).unwrap_or(());
        let mut fork = base.fork();
        // Existing blobs carry over: same ids, same bytes, same flags,
        // and no page writes were counted for the fork.
        assert_eq!(fork.num_blobs(), 2);
        assert_eq!(fork.pages_written(), 0);
        assert_eq!(fork.read_blob(a), vec![1, 2, 3, 4, 5]);
        assert!(fork.is_quarantined(bad));
        // New blobs in the fork do not appear in the base.
        let c = fork.write_blob(&[7, 7, 7]);
        assert_eq!(c.index(), 2);
        assert_eq!(fork.num_blobs(), 3);
        assert_eq!(base.num_blobs(), 2);
        // And the base can keep evolving independently.
        let d = base.write_blob(&[8]);
        assert_eq!(d.index(), 2);
        assert_eq!(base.read_blob(d), vec![8]);
        assert_eq!(fork.read_blob(c), vec![7, 7, 7]);
    }

    #[test]
    fn frame_roundtrip_including_empty() {
        for payload in [&b""[..], b"x", b"hello sealed frames", &[0u8; 300]] {
            let mut buf = Vec::new();
            seal_frame(&mut buf, payload);
            assert_eq!(buf.len(), FRAME_OVERHEAD + payload.len());
            let (got, rest) = match open_frame(&buf) {
                Ok(v) => v,
                Err(e) => unreachable!("clean frame rejected: {e}"),
            };
            assert_eq!(got, payload);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn frames_concatenate() {
        let mut buf = Vec::new();
        seal_frame(&mut buf, b"first");
        seal_frame(&mut buf, b"second");
        let (a, rest) = open_frame(&buf).unwrap_or((&[], &[]));
        assert_eq!(a, b"first");
        let (b, rest2) = open_frame(rest).unwrap_or((&[], &[]));
        assert_eq!(b, b"second");
        assert!(rest2.is_empty());
    }

    #[test]
    fn every_bit_flip_in_a_frame_is_caught() {
        let mut buf = Vec::new();
        seal_frame(&mut buf, b"payload under test");
        for pos in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[pos] ^= 1 << bit;
                let r = open_frame(&bad);
                assert!(
                    matches!(
                        r,
                        Err(DecodeError::ChecksumMismatch { .. })
                            | Err(DecodeError::Truncated { .. })
                    ),
                    "flip at byte {pos} bit {bit} escaped: {r:?}"
                );
            }
        }
    }

    #[test]
    fn truncated_frames_are_truncation_not_mismatch() {
        let mut buf = Vec::new();
        seal_frame(&mut buf, b"0123456789");
        for cut in 0..buf.len() {
            let r = open_frame(&buf[..cut]);
            assert!(
                matches!(r, Err(DecodeError::Truncated { .. })),
                "cut at {cut}: {r:?}"
            );
        }
    }
}
