//! Storage layout for the packed R-tree index (`mob-core`'s
//! [`RTree`]): two database arrays — leaf entries and nodes — behind a
//! fixed-size root record, exactly like every other Sec-4 value.
//!
//! Decode is untrusted end to end: record reads reject NaN coordinates
//! and inverted bounds, and [`load_index`] re-runs the full structural
//! validation ([`RTree::from_parts`]) — child ranges tiling each level,
//! parent-cube containment, leaf ids in range — so a forged or bit-rotted
//! index surfaces as a [`DecodeError`] and the query layer falls back to
//! a full scan instead of trusting a wrong candidate set.

use crate::checked::count_u32;
use crate::dbarray::{load_array, save_array, SavedArray};
use crate::page::PageStore;
use crate::record::{get_f64, get_u32, put_f64, put_u32, FixedRecord};
use mob_base::{DecodeError, DecodeResult, Instant, Interval, Real};
use mob_core::{IndexEntry, IndexNode, RTree};
use mob_spatial::{Cube, Rect};

/// Root record of a stored index: counts plus the two arrays.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredIndex {
    /// Number of tuples of the indexed relation.
    pub num_tuples: u32,
    /// Node fan-out the tree was packed with.
    pub fanout: u32,
    /// Leaf entries ([`IndexEntryRecord`]).
    pub entries: SavedArray,
    /// Tree nodes, leaves first, root last ([`IndexNodeRecord`]).
    pub nodes: SavedArray,
}

/// Serialize a cube as `(min_x, min_y, max_x, max_y, t_min, t_max)`.
fn put_cube(out: &mut Vec<u8>, c: &Cube) {
    put_f64(out, c.rect.min_x().get());
    put_f64(out, c.rect.min_y().get());
    put_f64(out, c.rect.max_x().get());
    put_f64(out, c.rect.max_y().get());
    put_f64(out, c.t_min.as_f64());
    put_f64(out, c.t_max.as_f64());
}

/// Decode a cube at `off`, rejecting NaN and inverted bounds — an
/// index cube damaged into a *smaller* box would prune wrongly, so
/// nothing questionable may pass.
fn get_cube(buf: &[u8], off: usize) -> DecodeResult<Cube> {
    let min_x = Real::try_new(get_f64(buf, off)?)?;
    let min_y = Real::try_new(get_f64(buf, off + 8)?)?;
    let max_x = Real::try_new(get_f64(buf, off + 16)?)?;
    let max_y = Real::try_new(get_f64(buf, off + 24)?)?;
    let t_min = Instant::try_from_f64(get_f64(buf, off + 32)?)?;
    let t_max = Instant::try_from_f64(get_f64(buf, off + 40)?)?;
    if min_x > max_x || min_y > max_y || t_max < t_min {
        return Err(DecodeError::BadStructure {
            what: "index cube",
            detail: "inverted bounding cube".to_string(),
        });
    }
    Ok(Cube::new(
        Rect::new(min_x, min_y, max_x, max_y),
        &Interval::closed(t_min, t_max),
    ))
}

const CUBE_SIZE: usize = 48;

/// Leaf-entry record: `(tuple, unit, cube)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexEntryRecord(pub IndexEntry);

impl FixedRecord for IndexEntryRecord {
    const SIZE: usize = 8 + CUBE_SIZE;
    const WHAT: &'static str = "index entry record";
    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, self.0.tuple);
        put_u32(out, self.0.unit);
        put_cube(out, &self.0.cube);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(IndexEntryRecord(IndexEntry {
            tuple: get_u32(buf, 0)?,
            unit: get_u32(buf, 4)?,
            cube: get_cube(buf, 8)?,
        }))
    }
}

/// Node record: `(cube, first, count, level)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IndexNodeRecord(pub IndexNode);

impl FixedRecord for IndexNodeRecord {
    const SIZE: usize = CUBE_SIZE + 12;
    const WHAT: &'static str = "index node record";
    fn write(&self, out: &mut Vec<u8>) {
        put_cube(out, &self.0.cube);
        put_u32(out, self.0.first);
        put_u32(out, self.0.count);
        put_u32(out, self.0.level);
    }
    fn read(buf: &[u8]) -> DecodeResult<Self> {
        Ok(IndexNodeRecord(IndexNode {
            cube: get_cube(buf, 0)?,
            first: get_u32(buf, CUBE_SIZE)?,
            count: get_u32(buf, CUBE_SIZE + 4)?,
            level: get_u32(buf, CUBE_SIZE + 8)?,
        }))
    }
}

/// Save a packed R-tree: entries and nodes as database arrays.
pub fn save_index(tree: &RTree, store: &mut PageStore) -> StoredIndex {
    let entries: Vec<IndexEntryRecord> = tree
        .entries()
        .iter()
        .map(|e| IndexEntryRecord(*e))
        .collect();
    let nodes: Vec<IndexNodeRecord> = tree.nodes().iter().map(|n| IndexNodeRecord(*n)).collect();
    StoredIndex {
        num_tuples: count_u32(tree.num_tuples()),
        fanout: count_u32(tree.fanout()),
        entries: save_array(&entries, store),
        nodes: save_array(&nodes, store),
    }
}

/// Load and fully re-validate a stored index.
///
/// Quarantined blobs, ragged arrays, NaN cubes and every structural
/// forgery (wrong tiling, broken containment, out-of-range ids) are
/// [`DecodeError`]s — the caller treats any failure as "no index" and
/// scans fully.
pub fn load_index(stored: &StoredIndex, store: &PageStore) -> DecodeResult<RTree> {
    let entries: Vec<IndexEntryRecord> = load_array(&stored.entries, store)?;
    let nodes: Vec<IndexNodeRecord> = load_array(&stored.nodes, store)?;
    RTree::from_parts(
        stored.num_tuples,
        stored.fanout,
        entries.into_iter().map(|r| r.0).collect(),
        nodes.into_iter().map(|r| r.0).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::t;
    use mob_core::{unit_cubes, MovingPoint};
    use mob_spatial::pt;

    fn sample_tree(tuples: usize, units: usize) -> RTree {
        let mut entries = Vec::new();
        for k in 0..tuples {
            let x0 = k as f64;
            let samples: Vec<_> = (0..units)
                .map(|i| (t(i as f64), pt(x0 + (i % 2) as f64, i as f64)))
                .collect();
            entries.extend(unit_cubes(k as u32, &MovingPoint::from_samples(&samples)));
        }
        RTree::bulk(tuples, entries)
    }

    #[test]
    fn roundtrip_preserves_tree_and_answers() {
        let tree = sample_tree(9, 20);
        let mut store = PageStore::new();
        let stored = save_index(&tree, &mut store);
        assert!(
            !stored.entries.is_inline(),
            "9×19 entries must land in an external blob"
        );
        let back = load_index(&stored, &store).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.query_instant(t(2.5)), tree.query_instant(t(2.5)));
    }

    #[test]
    fn empty_tree_roundtrips() {
        let tree = RTree::bulk(0, Vec::new());
        let mut store = PageStore::new();
        let stored = save_index(&tree, &mut store);
        let back = load_index(&stored, &store).unwrap();
        assert_eq!(back.num_entries(), 0);
    }

    #[test]
    fn record_level_damage_is_rejected() {
        // NaN coordinate.
        let tree = sample_tree(2, 4);
        let mut buf = Vec::new();
        IndexEntryRecord(tree.entries()[0]).write(&mut buf);
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(IndexEntryRecord::read(&bad).is_err());
        // Inverted cube (min_x > max_x).
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&1e9f64.to_le_bytes());
        assert!(matches!(
            IndexEntryRecord::read(&bad),
            Err(DecodeError::BadStructure { .. })
        ));
        // Truncation.
        assert!(IndexEntryRecord::read(&buf[..20]).is_err());
        let mut nbuf = Vec::new();
        IndexNodeRecord(tree.nodes()[0]).write(&mut nbuf);
        assert!(IndexNodeRecord::read(&nbuf[..50]).is_err());
        assert_eq!(IndexNodeRecord::read(&nbuf).unwrap().0, tree.nodes()[0]);
    }

    #[test]
    fn structural_forgeries_fail_load() {
        let tree = sample_tree(5, 8);
        let mut store = PageStore::new();
        let mut stored = save_index(&tree, &mut store);
        // Lie about the tuple count: leaf ids fall out of range.
        stored.num_tuples = 1;
        assert!(load_index(&stored, &store).is_err());
        stored.num_tuples = 5;
        // Quarantine the entries blob: load refuses.
        if let crate::dbarray::Placement::External(id) = stored.entries.placement {
            store.mark_quarantined(id).unwrap();
            assert!(matches!(
                load_index(&stored, &store),
                Err(DecodeError::Quarantined { .. })
            ));
        } else {
            panic!("test premise: external entries blob");
        }
    }
}
