//! WAL delta files: the append-path commit payload.
//!
//! A delta file `delta-<gen>.mob` carries the units appended by one
//! commit, keyed by mapping root name. Its outer framing is the same
//! generation + XXH64 chunk format as a full snapshot
//! ([`crate::durable`]), so torn or scrambled deltas fail checksum
//! verification before any structural decoding runs; this module is
//! only the *payload* codec.
//!
//! Payload layout (all integers little-endian):
//!
//! ```text
//! magic            8  b"MOBDELT1"
//! base_generation  8  generation this delta applies on top of
//! n_appends        4
//! per append:
//!   name_len       4
//!   name           name_len  (UTF-8 root name)
//!   kind           1  (3 = mpoint, the only kind with an append path)
//!   n_units        4
//!   units          n_units × UPointRecord::SIZE
//! ```
//!
//! [`decode_delta_payload`] treats its input as untrusted — it is a
//! `panic_reach` seed (reachable from store open on arbitrary bytes)
//! and must never panic: every length is bounds-checked, every record
//! decoded through the fallible [`FixedRecord`] path.

use crate::mapping_store::UPointRecord;
use crate::record::{get_u32, put_u32, read_all, write_all, FixedRecord};
use mob_base::{DecodeError, DecodeResult};

/// Magic prefix of a delta payload.
pub const DELTA_MAGIC: &[u8; 8] = b"MOBDELT1";

/// Root-kind tag for moving-point mappings (matches the `RootRecord`
/// tag used by full snapshots).
pub const DELTA_KIND_MPOINT: u8 = 3;

/// File name of the delta that produces generation `generation`.
#[must_use]
pub fn delta_name(generation: u64) -> String {
    format!("delta-{generation:016x}.mob")
}

/// Parse a `delta-<gen>.mob` name back to its generation.
#[must_use]
pub fn parse_delta_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("delta-")?.strip_suffix(".mob")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded delta payload: the generation it applies on top of and the
/// per-root appended units, in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaPayload {
    /// Generation this delta applies on top of (the file itself
    /// produces `base_generation + 1`).
    pub base_generation: u64,
    /// Appended units keyed by mapping root name.
    pub appends: Vec<(String, Vec<UPointRecord>)>,
}

/// Encode a delta payload (the inverse of [`decode_delta_payload`]).
///
/// Counts are checked: more than `u32::MAX` appends or units per root
/// is a [`DecodeError::BadStructure`], not a panic.
pub fn encode_delta_payload(
    base_generation: u64,
    appends: &[(String, Vec<UPointRecord>)],
) -> DecodeResult<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(DELTA_MAGIC);
    out.extend_from_slice(&base_generation.to_le_bytes());
    let n = u32::try_from(appends.len()).map_err(|_| DecodeError::BadStructure {
        what: "delta payload",
        detail: format!("too many appends: {}", appends.len()),
    })?;
    put_u32(&mut out, n);
    for (name, units) in appends {
        let name_len = u32::try_from(name.len()).map_err(|_| DecodeError::BadStructure {
            what: "delta payload",
            detail: format!("root name too long: {} bytes", name.len()),
        })?;
        put_u32(&mut out, name_len);
        out.extend_from_slice(name.as_bytes());
        out.push(DELTA_KIND_MPOINT);
        let n_units = u32::try_from(units.len()).map_err(|_| DecodeError::BadStructure {
            what: "delta payload",
            detail: format!("too many units for {name}: {}", units.len()),
        })?;
        put_u32(&mut out, n_units);
        out.extend_from_slice(&write_all(units));
    }
    Ok(out)
}

/// Bounds-checked slice of `bytes` starting at `*pos`, advancing it.
fn take<'a>(
    bytes: &'a [u8],
    pos: &mut usize,
    n: usize,
    what: &'static str,
) -> DecodeResult<&'a [u8]> {
    let end = pos.checked_add(n).ok_or(DecodeError::Truncated {
        what,
        need: usize::MAX,
        have: bytes.len(),
    })?;
    match bytes.get(*pos..end) {
        Some(s) => {
            *pos = end;
            Ok(s)
        }
        None => Err(DecodeError::Truncated {
            what,
            need: end,
            have: bytes.len(),
        }),
    }
}

/// Decode a delta payload from untrusted bytes.
///
/// Never panics: truncation, ragged unit arrays, bad magic, unknown
/// kinds, and non-UTF-8 names all surface as [`DecodeError`]s. Trailing
/// bytes after the last append are a structural error (a torn tail
/// that survived checksumming would otherwise hide there).
pub fn decode_delta_payload(bytes: &[u8]) -> DecodeResult<DeltaPayload> {
    let mut pos = 0usize;
    let magic = take(bytes, &mut pos, 8, "delta magic")?;
    if magic != DELTA_MAGIC {
        return Err(DecodeError::BadStructure {
            what: "delta payload",
            detail: "bad magic".into(),
        });
    }
    let gen_bytes = take(bytes, &mut pos, 8, "delta base generation")?;
    let mut arr = [0u8; 8];
    for (d, s) in arr.iter_mut().zip(gen_bytes) {
        *d = *s;
    }
    let base_generation = u64::from_le_bytes(arr);
    let n_appends = get_u32(take(bytes, &mut pos, 4, "delta append count")?, 0)?;
    let mut appends = Vec::new();
    for _ in 0..n_appends {
        let name_len = get_u32(take(bytes, &mut pos, 4, "delta name length")?, 0)? as usize;
        let name_bytes = take(bytes, &mut pos, name_len, "delta root name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| DecodeError::BadStructure {
                what: "delta payload",
                detail: "root name is not UTF-8".into(),
            })?
            .to_string();
        let kind = take(bytes, &mut pos, 1, "delta root kind")?[0];
        if kind != DELTA_KIND_MPOINT {
            return Err(DecodeError::BadTag {
                what: "delta root kind",
                tag: u32::from(kind),
            });
        }
        let n_units = get_u32(take(bytes, &mut pos, 4, "delta unit count")?, 0)? as usize;
        let byte_len = n_units
            .checked_mul(UPointRecord::SIZE)
            .ok_or(DecodeError::Truncated {
                what: "delta units",
                need: usize::MAX,
                have: bytes.len(),
            })?;
        let unit_bytes = take(bytes, &mut pos, byte_len, "delta units")?;
        let units: Vec<UPointRecord> = read_all(unit_bytes)?;
        appends.push((name, units));
    }
    if pos != bytes.len() {
        return Err(DecodeError::BadStructure {
            what: "delta payload",
            detail: format!("{} trailing bytes", bytes.len() - pos),
        });
    }
    Ok(DeltaPayload {
        base_generation,
        appends,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{t, TimeInterval};
    use mob_core::UPoint;
    use mob_spatial::pt;

    fn rec(a: f64, b: f64) -> UPointRecord {
        let u = UPoint::between(
            TimeInterval::new(t(a), t(b), true, false),
            pt(a, 0.0),
            pt(b, 0.0),
        );
        UPointRecord {
            interval: *mob_core::Unit::interval(&u),
            motion: *u.motion(),
        }
    }

    #[test]
    fn names_roundtrip() {
        assert_eq!(delta_name(7), "delta-0000000000000007.mob");
        assert_eq!(parse_delta_name(&delta_name(7)), Some(7));
        assert_eq!(parse_delta_name(&delta_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_delta_name("delta-xyz.mob"), None);
        assert_eq!(parse_delta_name("snap-0000000000000007.mob"), None);
        assert_eq!(parse_delta_name("delta-07.mob"), None);
    }

    #[test]
    fn payload_roundtrip() {
        let appends = vec![
            ("car0".to_string(), vec![rec(0.0, 1.0), rec(1.0, 2.0)]),
            ("car1".to_string(), vec![rec(5.0, 6.0)]),
            ("empty".to_string(), vec![]),
        ];
        let bytes = encode_delta_payload(41, &appends).unwrap();
        let decoded = decode_delta_payload(&bytes).unwrap();
        assert_eq!(decoded.base_generation, 41);
        assert_eq!(decoded.appends, appends);
    }

    #[test]
    fn decode_rejects_damage_without_panicking() {
        let appends = vec![("car".to_string(), vec![rec(0.0, 1.0)])];
        let good = encode_delta_payload(3, &appends).unwrap();
        // Every strict prefix is an error, never a panic.
        for cut in 0..good.len() {
            assert!(decode_delta_payload(&good[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage is an error.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_delta_payload(&padded).is_err());
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(decode_delta_payload(&bad).is_err());
        // Unknown kind byte (offset: 8 magic + 8 gen + 4 count + 4 len + 3 name).
        let mut bad = good.clone();
        bad[27] = 9;
        assert!(decode_delta_payload(&bad).is_err());
        // Absurd unit count: truncation error, no huge allocation.
        let mut bad = good;
        let count_off = 28;
        bad[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_delta_payload(&bad).is_err());
    }

    #[test]
    fn decode_rejects_invalid_interval_bytes() {
        // A record whose interval bytes decode to an inverted interval
        // must fail through the fallible FixedRecord path.
        let appends = vec![("car".to_string(), vec![rec(0.0, 1.0)])];
        let mut bytes = encode_delta_payload(0, &appends).unwrap();
        // Unit bytes start after: 8+8+4+4+3+1+4 = 32. First 8 bytes are
        // the interval start instant; overwrite with +inf.
        bytes[32..40].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(decode_delta_payload(&bytes).is_err());
    }
}
