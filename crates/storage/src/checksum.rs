//! A dependency-free 64-bit content checksum (XXH64-style).
//!
//! The durable store files ([`crate::durable`]) must detect torn writes
//! and bit rot *before* any byte reaches the structural decoder. This
//! module implements the XXH64 algorithm (Yann Collet's public-domain
//! specification): 4 interleaved 64-bit accumulators over 32-byte
//! stripes, a merge round, a tail loop and a final avalanche. It is not
//! cryptographic — the adversary is entropy, not an attacker — but a
//! single flipped bit anywhere in the input changes the digest with
//! overwhelming probability, and the avalanche step guarantees it is
//! never a fixed point for small inputs.
//!
//! The implementation is deliberately self-contained (no external
//! crates, no `unsafe`, no SIMD): at the page sizes the durable store
//! frames (≤ 64 KiB per frame) throughput is far from the bottleneck —
//! the fsyncs are.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

/// Seed used by every checksum in the store-file formats. Fixed so that
/// files are comparable across processes; the superblock carries a
/// format version for everything else.
pub const CHECKSUM_SEED: u64 = 0x6D6F_6273_746F_7231; // "mobstor1"

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

#[inline]
fn read_u64_at(b: &[u8], off: usize) -> u64 {
    // Total zip-copy: missing bytes read as zero (the loop guards below
    // always supply the full word, but nothing here can panic).
    let mut v = [0u8; 8];
    for (d, s) in v.iter_mut().zip(b.iter().skip(off)) {
        *d = *s;
    }
    u64::from_le_bytes(v)
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    let mut v = [0u8; 4];
    for (d, s) in v.iter_mut().zip(b) {
        *d = *s;
    }
    u64::from(u32::from_le_bytes(v))
}

/// XXH64 of `bytes` under [`CHECKSUM_SEED`].
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    checksum64_seeded(bytes, CHECKSUM_SEED)
}

/// XXH64 of `bytes` under an explicit seed.
#[must_use]
pub fn checksum64_seeded(bytes: &[u8], seed: u64) -> u64 {
    let len = bytes.len() as u64;
    let mut rest = bytes;
    let mut h: u64;
    if rest.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64_at(rest, 0));
            v2 = round(v2, read_u64_at(rest, 8));
            v3 = round(v3, read_u64_at(rest, 16));
            v4 = round(v4, read_u64_at(rest, 24));
            rest = rest.get(32..).unwrap_or_default();
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME_5);
    }
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64_at(rest, 0)))
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        rest = rest.get(8..).unwrap_or_default();
    }
    if rest.len() >= 4 {
        h = (h ^ read_u32(rest).wrapping_mul(PRIME_1))
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        rest = rest.get(4..).unwrap_or_default();
    }
    for &b in rest {
        h = (h ^ u64::from(b).wrapping_mul(PRIME_5))
            .rotate_left(11)
            .wrapping_mul(PRIME_1);
    }
    // Final avalanche: every input bit affects every output bit.
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference digests of the XXH64 specification (seed 0).
        assert_eq!(checksum64_seeded(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(checksum64_seeded(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(checksum64_seeded(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            checksum64_seeded(b"Nobody inspects the spammish repetition", 0),
            0xFBCE_A83C_8A37_8BF1
        );
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(checksum64_seeded(b"abc", 0), checksum64_seeded(b"abc", 1));
        assert_eq!(checksum64(b"abc"), checksum64_seeded(b"abc", CHECKSUM_SEED));
    }

    #[test]
    fn every_single_bit_flip_changes_the_digest() {
        // The property the corruption campaign relies on, proven here on
        // a pseudo-random buffer spanning all loop regimes (stripes,
        // 8/4/1-byte tails).
        for len in [0usize, 1, 3, 4, 7, 8, 15, 31, 32, 33, 64, 100] {
            let buf: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(37) ^ 0x5A)
                .collect();
            let clean = checksum64(&buf);
            for pos in 0..len {
                for bit in 0..8 {
                    let mut bad = buf.clone();
                    bad[pos] ^= 1 << bit;
                    assert_ne!(checksum64(&bad), clean, "len {len} pos {pos} bit {bit}");
                }
            }
        }
    }

    #[test]
    fn length_extension_is_not_a_collision() {
        assert_ne!(checksum64(b"ab"), checksum64(b"ab\0"));
        assert_ne!(checksum64(b""), checksum64(b"\0"));
    }
}
