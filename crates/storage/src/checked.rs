//! Checked integer conversions for record/offset arithmetic.
//!
//! The `xtask lint` pass forbids raw narrowing `as` casts in storage
//! code: a silently truncated offset is exactly the kind of bug that
//! turns a big mapping into a corrupt record. Save paths funnel every
//! `usize -> u32` conversion through [`count_u32`], which fails loudly
//! (in-process arrays beyond `u32::MAX` records are a programming
//! error, not a recoverable condition), and decode paths use
//! [`idx_usize`] for the reverse direction.

/// Convert an in-process element count to the on-record `u32` width.
///
/// Panics if the count exceeds `u32::MAX` — the storage format caps
/// array lengths at 32 bits (Sec 4 root records), so a larger in-memory
/// value cannot be represented and saving it would corrupt the layout.
#[allow(clippy::expect_used)]
pub fn count_u32(n: usize) -> u32 {
    u32::try_from(n).expect("array count exceeds the u32 storage format limit")
}

/// Widen an on-record `u32` index/count to `usize` (always lossless on
/// the supported 32/64-bit targets).
pub fn idx_usize(n: u32) -> usize {
    n as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        assert_eq!(count_u32(0), 0);
        assert_eq!(count_u32(4096), 4096);
        assert_eq!(idx_usize(u32::MAX), u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "u32 storage format limit")]
    #[cfg(target_pointer_width = "64")]
    fn overflow_panics() {
        let _ = count_u32(u32::MAX as usize + 1);
    }
}
