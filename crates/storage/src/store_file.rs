//! A serialized store file: page store + named root records.
//!
//! Section 4 values are pairs of a *root record* and the database arrays
//! it references. A [`StoreFile`] bundles a whole [`PageStore`] together
//! with a catalog of named, typed root records into one byte buffer —
//! the artifact the `mob-check` auditor and the corruption tests operate
//! on. Decoding is fully untrusted: every length, tag, blob index and
//! array reference is checked, and damage surfaces as a
//! [`DecodeError`], never a panic.
//!
//! ## Layout
//!
//! ```text
//! magic    "MOBSTOR1"                      8 bytes
//! page_sz  u32
//! n_blobs  u32
//! blobs    n_blobs × (len u32, bytes)      in BlobId index order
//! n_entry  u32
//! entries  n_entry × (name_len u32, name utf-8, kind u8, root record)
//! ```
//!
//! Blobs are written in [`BlobId::index`] order, so replaying them
//! through [`PageStore::write_blob`] on load reproduces the same blob
//! ids and every decoded [`SavedArray`] reference stays valid.

use crate::dbarray::{Placement, SavedArray};
use crate::index_store::StoredIndex;
use crate::line_store::{StoredLine, StoredPoints};
use crate::mapping_store::{
    StoredMLine, StoredMPoints, StoredMRegion, StoredMapping, UBoolRecord, ULineRecord,
    UPointRecord, UPointsRecord, URealRecord, URegionRecord,
};
use crate::page::{BlobId, PageStore};
use crate::range_store::StoredPeriods;
use crate::record::{get_f64, get_u32, need_bytes, put_f64, put_u32};
use crate::region_store::StoredRegion;
use crate::view::{self, MappingView, Verify};
use mob_base::{DecodeError, DecodeResult};

/// File magic: identifies a serialized store file (version 1).
pub const MAGIC: &[u8; 8] = b"MOBSTOR1";

/// A typed root record held in a store file's catalog.
#[derive(Clone, Debug, PartialEq)]
pub enum RootRecord {
    /// `moving(bool)` (fixed-size units).
    MBool(StoredMapping),
    /// `moving(real)` (fixed-size units).
    MReal(StoredMapping),
    /// `moving(point)` (fixed-size units).
    MPoint(StoredMapping),
    /// `moving(points)` (units + shared motion array).
    MPoints(StoredMPoints),
    /// `moving(line)` (units + shared moving-segment array).
    MLine(StoredMLine),
    /// `moving(region)` (units + msegment/mcycle/mface arrays).
    MRegion(StoredMRegion),
    /// Static `line` (halfsegment array).
    Line(StoredLine),
    /// Static `points`.
    Points(StoredPoints),
    /// Static `region` (halfsegment + cycle + face arrays).
    Region(StoredRegion),
    /// `range(instant)` value.
    Periods(StoredPeriods),
    /// Packed R-tree over per-unit bounding cubes (the query planner's
    /// pruning structure).
    Index(StoredIndex),
}

impl RootRecord {
    /// The on-file kind tag.
    fn tag(&self) -> u8 {
        match self {
            RootRecord::MBool(_) => 1,
            RootRecord::MReal(_) => 2,
            RootRecord::MPoint(_) => 3,
            RootRecord::MPoints(_) => 4,
            RootRecord::MLine(_) => 5,
            RootRecord::MRegion(_) => 6,
            RootRecord::Line(_) => 7,
            RootRecord::Points(_) => 8,
            RootRecord::Region(_) => 9,
            RootRecord::Periods(_) => 10,
            RootRecord::Index(_) => 11,
        }
    }

    /// Human-readable kind name (used by the auditor's report).
    pub fn kind_name(&self) -> &'static str {
        match self {
            RootRecord::MBool(_) => "mbool",
            RootRecord::MReal(_) => "mreal",
            RootRecord::MPoint(_) => "mpoint",
            RootRecord::MPoints(_) => "mpoints",
            RootRecord::MLine(_) => "mline",
            RootRecord::MRegion(_) => "mregion",
            RootRecord::Line(_) => "line",
            RootRecord::Points(_) => "points",
            RootRecord::Region(_) => "region",
            RootRecord::Periods(_) => "periods",
            RootRecord::Index(_) => "index",
        }
    }
}

/// A page store plus a catalog of named root records, serializable to a
/// single byte buffer.
pub struct StoreFile {
    store: PageStore,
    entries: Vec<(String, RootRecord)>,
}

impl StoreFile {
    /// Create an empty store file with the default page size.
    pub fn new() -> StoreFile {
        StoreFile {
            store: PageStore::new(),
            entries: Vec::new(),
        }
    }

    /// Create an empty store file with a custom page size.
    ///
    /// Zero and absurd page sizes are a [`DecodeError`] (see
    /// [`crate::page::validate_page_size`]), never a panic — the same
    /// chokepoint a decoded superblock page size goes through.
    pub fn with_page_size(page_size: usize) -> DecodeResult<StoreFile> {
        Ok(StoreFile {
            store: PageStore::with_page_size(page_size)?,
            entries: Vec::new(),
        })
    }

    /// The underlying page store (for reads and view construction).
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Mutable page store access, for `save_*` calls that write blobs.
    pub fn store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }

    /// Register a named root record in the catalog.
    pub fn put(&mut self, name: impl Into<String>, root: RootRecord) {
        self.entries.push((name.into(), root));
    }

    /// The catalog, in insertion order.
    pub fn entries(&self) -> &[(String, RootRecord)] {
        &self.entries
    }

    /// Look up a root record by name.
    pub fn get(&self, name: &str) -> Option<&RootRecord> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Decompose into the page store and the catalog entries — for
    /// layers that need an **owning** store handle (e.g. wrapping it in
    /// an `Arc<PageStore>` shared across relation-scan workers).
    pub fn into_parts(self) -> (PageStore, Vec<(String, RootRecord)>) {
        (self.store, self.entries)
    }

    /// Reassemble a store file from an owning page store and a catalog —
    /// the inverse of [`StoreFile::into_parts`]. Used by generation
    /// compaction, which rewrites every root into a fresh store and
    /// needs the result serializable as one full snapshot.
    ///
    /// The caller is responsible for the catalog's blob references being
    /// valid in `store`; dangling references surface as [`DecodeError`]s
    /// at serialization or read time, exactly as for a decoded file.
    pub fn from_parts(store: PageStore, entries: Vec<(String, RootRecord)>) -> StoreFile {
        StoreFile { store, entries }
    }

    /// Resolve a catalog entry fallibly: a missing name is a
    /// [`DecodeError::BadStructure`], not an `Option` to unwrap.
    fn resolve(&self, name: &str) -> DecodeResult<&RootRecord> {
        self.get(name).ok_or_else(|| DecodeError::BadStructure {
            what: "store file catalog",
            detail: format!("no entry named {name:?}"),
        })
    }

    /// Kind-mismatch error for a resolved entry of the wrong type.
    fn kind_mismatch(name: &str, want: &'static str, found: &RootRecord) -> DecodeError {
        DecodeError::BadStructure {
            what: "store file catalog",
            detail: format!("entry {name:?} is a {}, not a {want}", found.kind_name()),
        }
    }

    /// Open a lazy view over the `moving(bool)` entry `name`.
    ///
    /// The unified, fallible query entry point: missing names and kind
    /// mismatches surface as [`DecodeError`]s, and [`Verify`] chooses
    /// between the full `O(n)` structural scan and the `O(1)` fast path
    /// for store files that a verifier already audited.
    pub fn open_mbool(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, UBoolRecord>> {
        match self.resolve(name)? {
            RootRecord::MBool(stored) => view::open_mbool(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mbool", other)),
        }
    }

    /// Open a lazy view over the `moving(real)` entry `name` (see
    /// [`StoreFile::open_mbool`] for the error contract).
    pub fn open_mreal(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, URealRecord>> {
        match self.resolve(name)? {
            RootRecord::MReal(stored) => view::open_mreal(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mreal", other)),
        }
    }

    /// Open a lazy view over the `moving(point)` entry `name` (see
    /// [`StoreFile::open_mbool`] for the error contract).
    pub fn open_mpoint(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, UPointRecord>> {
        match self.resolve(name)? {
            RootRecord::MPoint(stored) => view::open_mpoint(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mpoint", other)),
        }
    }

    /// Open a lazy view over the `moving(points)` entry `name` (see
    /// [`StoreFile::open_mbool`] for the error contract).
    pub fn open_mpoints(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, UPointsRecord>> {
        match self.resolve(name)? {
            RootRecord::MPoints(stored) => view::open_mpoints(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mpoints", other)),
        }
    }

    /// Open a lazy view over the `moving(line)` entry `name` (see
    /// [`StoreFile::open_mbool`] for the error contract).
    pub fn open_mline(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, ULineRecord>> {
        match self.resolve(name)? {
            RootRecord::MLine(stored) => view::open_mline(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mline", other)),
        }
    }

    /// Open a lazy view over the `moving(region)` entry `name` (see
    /// [`StoreFile::open_mbool`] for the error contract).
    pub fn open_mregion(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, URegionRecord>> {
        match self.resolve(name)? {
            RootRecord::MRegion(stored) => view::open_mregion(stored, &self.store, verify),
            other => Err(Self::kind_mismatch(name, "mregion", other)),
        }
    }

    /// Serialize the whole store file (pages + catalog) to bytes.
    pub fn to_bytes(&self) -> DecodeResult<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, crate::checked::count_u32(self.store.page_size()));
        let n_blobs = self.store.num_blobs();
        put_u32(&mut out, crate::checked::count_u32(n_blobs));
        for i in 0..n_blobs {
            let bytes = self.store.try_read_blob(BlobId::from_index(i))?;
            put_u32(&mut out, crate::checked::count_u32(bytes.len()));
            out.extend_from_slice(&bytes);
        }
        put_u32(&mut out, crate::checked::count_u32(self.entries.len()));
        for (name, root) in &self.entries {
            put_u32(&mut out, crate::checked::count_u32(name.len()));
            out.extend_from_slice(name.as_bytes());
            out.push(root.tag());
            write_root(&mut out, root);
        }
        Ok(out)
    }

    /// Decode a store file from untrusted bytes.
    ///
    /// All structural damage (bad magic, truncations, dangling blob
    /// indices, unknown kind tags, non-UTF-8 names, trailing garbage)
    /// surfaces as a [`DecodeError`]. Value-level damage inside the
    /// blobs is *not* checked here — that is the auditor's job (open
    /// views / load values and validate them).
    pub fn from_bytes(bytes: &[u8]) -> DecodeResult<StoreFile> {
        Ok(StoreFile::decode(bytes)?.0)
    }

    /// Decode a store file from bytes with known-damaged byte ranges,
    /// quarantining blobs instead of trusting their contents.
    ///
    /// `damaged` lists half-open byte ranges `(start, end)` of `bytes`
    /// that failed an integrity check upstream (a durable-file page
    /// frame whose checksum did not match). The decode proceeds as long
    /// as the damage is confined to **blob data bytes**: each affected
    /// blob is [quarantined](PageStore::mark_quarantined) so later reads
    /// surface [`DecodeError::Quarantined`] rather than corrupt data,
    /// while every healthy blob and the whole catalog stay readable.
    ///
    /// Damage touching *structural* bytes (magic, counts, lengths,
    /// catalog entries, root records) means the file's shape itself is
    /// untrusted, so the whole decode fails with
    /// [`DecodeError::Quarantined`] naming the offending range.
    ///
    /// Returns the store file plus the sorted indices of the blobs that
    /// were quarantined.
    pub fn from_bytes_with_damage(
        bytes: &[u8],
        damaged: &[(usize, usize)],
    ) -> DecodeResult<(StoreFile, Vec<usize>)> {
        let (mut file, blob_ranges) = StoreFile::decode(bytes)?;
        let mut quarantined = Vec::new();
        for &(dmg_start, dmg_end) in damaged {
            if dmg_start >= dmg_end {
                continue;
            }
            // Every damaged byte must fall inside some blob's data
            // bytes; walk the damage left to right across blob ranges.
            let mut pos = dmg_start;
            while pos < dmg_end {
                match blob_ranges
                    .iter()
                    .enumerate()
                    .find(|(_, &(s, e))| s <= pos && pos < e)
                {
                    Some((idx, &(_, blob_end))) => {
                        file.store.mark_quarantined(BlobId::from_index(idx))?;
                        if !quarantined.contains(&idx) {
                            quarantined.push(idx);
                        }
                        pos = blob_end;
                    }
                    None => {
                        return Err(DecodeError::Quarantined {
                            what: "store file structure",
                            detail: format!(
                                "damaged bytes {dmg_start}..{dmg_end} touch structural \
                                 byte {pos} outside all blob data"
                            ),
                        })
                    }
                }
            }
        }
        quarantined.sort_unstable();
        Ok((file, quarantined))
    }

    /// Shared decode path: returns the store file plus, for each blob in
    /// [`BlobId::index`] order, the half-open byte range its **data
    /// bytes** (not its length prefix) occupy inside `bytes`.
    fn decode(bytes: &[u8]) -> DecodeResult<(StoreFile, Vec<(usize, usize)>)> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take(MAGIC.len(), "store file magic")?;
        if magic != MAGIC {
            return Err(DecodeError::BadStructure {
                what: "store file magic",
                detail: format!("expected {MAGIC:?}, found {magic:?}"),
            });
        }
        let page_size = cur.take_u32("store file page size")?;
        let mut store = PageStore::with_page_size(crate::checked::idx_usize(page_size))?;
        let n_blobs = cur.take_u32("store file blob count")?;
        let mut blob_ranges = Vec::new();
        for _ in 0..n_blobs {
            let len = cur.take_u32("store file blob length")?;
            let start = cur.pos;
            let blob = cur.take(crate::checked::idx_usize(len), "store file blob bytes")?;
            blob_ranges.push((start, cur.pos));
            store.write_blob(blob);
        }
        let n_entries = cur.take_u32("store file entry count")?;
        let mut entries = Vec::new();
        for _ in 0..n_entries {
            let name_len = cur.take_u32("store file entry name length")?;
            let name_bytes =
                cur.take(crate::checked::idx_usize(name_len), "store file entry name")?;
            let name = match std::str::from_utf8(name_bytes) {
                Ok(s) => s.to_string(),
                Err(_) => {
                    return Err(DecodeError::BadStructure {
                        what: "store file entry name",
                        detail: "entry name is not valid UTF-8".to_string(),
                    })
                }
            };
            let tag = cur.take_u8("store file entry kind")?;
            let root = read_root(&mut cur, tag, store.num_blobs())?;
            entries.push((name, root));
        }
        if !cur.at_end() {
            return Err(DecodeError::BadStructure {
                what: "store file",
                detail: format!("{} trailing bytes after catalog", cur.remaining()),
            });
        }
        store.reset_counters();
        Ok((StoreFile { store, entries }, blob_ranges))
    }
}

impl Default for StoreFile {
    fn default() -> Self {
        StoreFile::new()
    }
}

/// A bounds-checked byte cursor over untrusted input.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> DecodeResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated {
            what,
            need: usize::MAX,
            have: self.buf.len(),
        })?;
        need_bytes(&self.buf[self.pos..], n, what).map_err(|_| DecodeError::Truncated {
            what,
            need: end,
            have: self.buf.len(),
        })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn take_u32(&mut self, what: &'static str) -> DecodeResult<u32> {
        let s = self.take(4, what)?;
        get_u32(s, 0)
    }

    fn take_u8(&mut self, what: &'static str) -> DecodeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn take_f64(&mut self, what: &'static str) -> DecodeResult<f64> {
        let s = self.take(8, what)?;
        get_f64(s, 0)
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---- SavedArray (de)serialization -----------------------------------

const PLACEMENT_INLINE: u8 = 0;
const PLACEMENT_EXTERNAL: u8 = 1;

fn write_saved(out: &mut Vec<u8>, a: &SavedArray) {
    put_u32(out, crate::checked::count_u32(a.count));
    match &a.placement {
        Placement::Inline(b) => {
            out.push(PLACEMENT_INLINE);
            put_u32(out, crate::checked::count_u32(b.len()));
            out.extend_from_slice(b);
        }
        Placement::External(id) => {
            out.push(PLACEMENT_EXTERNAL);
            put_u32(out, crate::checked::count_u32(id.index()));
        }
    }
}

fn read_saved(cur: &mut Cursor<'_>, n_blobs: usize) -> DecodeResult<SavedArray> {
    let count = crate::checked::idx_usize(cur.take_u32("saved array count")?);
    let placement = match cur.take_u8("saved array placement tag")? {
        PLACEMENT_INLINE => {
            let len = crate::checked::idx_usize(cur.take_u32("saved array inline length")?);
            Placement::Inline(cur.take(len, "saved array inline bytes")?.to_vec())
        }
        PLACEMENT_EXTERNAL => {
            let idx = crate::checked::idx_usize(cur.take_u32("saved array blob index")?);
            if idx >= n_blobs {
                return Err(DecodeError::OutOfBounds {
                    what: "saved array blob index",
                    index: idx,
                    bound: n_blobs,
                });
            }
            Placement::External(BlobId::from_index(idx))
        }
        tag => {
            return Err(DecodeError::BadTag {
                what: "saved array placement",
                tag: u32::from(tag),
            })
        }
    };
    Ok(SavedArray { count, placement })
}

// ---- Root record (de)serialization ----------------------------------

fn write_root(out: &mut Vec<u8>, root: &RootRecord) {
    match root {
        RootRecord::MBool(m) | RootRecord::MReal(m) | RootRecord::MPoint(m) => {
            put_u32(out, m.num_units);
            write_saved(out, &m.units);
        }
        RootRecord::MPoints(m) => {
            put_u32(out, m.num_units);
            write_saved(out, &m.units);
            write_saved(out, &m.motions);
        }
        RootRecord::MLine(m) => {
            put_u32(out, m.num_units);
            write_saved(out, &m.units);
            write_saved(out, &m.msegments);
        }
        RootRecord::MRegion(m) => {
            put_u32(out, m.num_units);
            write_saved(out, &m.units);
            write_saved(out, &m.msegments);
            write_saved(out, &m.mcycles);
            write_saved(out, &m.mfaces);
        }
        RootRecord::Line(l) => {
            put_u32(out, l.num_segments);
            put_f64(out, l.length);
            for v in l.bbox {
                put_f64(out, v);
            }
            write_saved(out, &l.halfsegs);
        }
        RootRecord::Points(p) => {
            put_u32(out, p.count);
            write_saved(out, &p.points);
        }
        RootRecord::Region(r) => {
            put_u32(out, r.num_faces);
            put_u32(out, r.num_cycles);
            put_u32(out, r.num_segments);
            put_f64(out, r.area);
            put_f64(out, r.perimeter);
            for v in r.bbox {
                put_f64(out, v);
            }
            write_saved(out, &r.halfsegments);
            write_saved(out, &r.cycles);
            write_saved(out, &r.faces);
        }
        RootRecord::Periods(p) => {
            put_u32(out, p.count);
            write_saved(out, &p.intervals);
        }
        RootRecord::Index(ix) => {
            put_u32(out, ix.num_tuples);
            put_u32(out, ix.fanout);
            write_saved(out, &ix.entries);
            write_saved(out, &ix.nodes);
        }
    }
}

fn read_root(cur: &mut Cursor<'_>, tag: u8, n_blobs: usize) -> DecodeResult<RootRecord> {
    let root = match tag {
        1..=3 => {
            let m = StoredMapping {
                num_units: cur.take_u32("mapping root units count")?,
                units: read_saved(cur, n_blobs)?,
            };
            match tag {
                1 => RootRecord::MBool(m),
                2 => RootRecord::MReal(m),
                _ => RootRecord::MPoint(m),
            }
        }
        4 => RootRecord::MPoints(StoredMPoints {
            num_units: cur.take_u32("mpoints root units count")?,
            units: read_saved(cur, n_blobs)?,
            motions: read_saved(cur, n_blobs)?,
        }),
        5 => RootRecord::MLine(StoredMLine {
            num_units: cur.take_u32("mline root units count")?,
            units: read_saved(cur, n_blobs)?,
            msegments: read_saved(cur, n_blobs)?,
        }),
        6 => RootRecord::MRegion(StoredMRegion {
            num_units: cur.take_u32("mregion root units count")?,
            units: read_saved(cur, n_blobs)?,
            msegments: read_saved(cur, n_blobs)?,
            mcycles: read_saved(cur, n_blobs)?,
            mfaces: read_saved(cur, n_blobs)?,
        }),
        7 => RootRecord::Line(StoredLine {
            num_segments: cur.take_u32("line root segment count")?,
            length: cur.take_f64("line root length")?,
            bbox: [
                cur.take_f64("line root bbox")?,
                cur.take_f64("line root bbox")?,
                cur.take_f64("line root bbox")?,
                cur.take_f64("line root bbox")?,
            ],
            halfsegs: read_saved(cur, n_blobs)?,
        }),
        8 => RootRecord::Points(StoredPoints {
            count: cur.take_u32("points root count")?,
            points: read_saved(cur, n_blobs)?,
        }),
        9 => RootRecord::Region(StoredRegion {
            num_faces: cur.take_u32("region root face count")?,
            num_cycles: cur.take_u32("region root cycle count")?,
            num_segments: cur.take_u32("region root segment count")?,
            area: cur.take_f64("region root area")?,
            perimeter: cur.take_f64("region root perimeter")?,
            bbox: [
                cur.take_f64("region root bbox")?,
                cur.take_f64("region root bbox")?,
                cur.take_f64("region root bbox")?,
                cur.take_f64("region root bbox")?,
            ],
            halfsegments: read_saved(cur, n_blobs)?,
            cycles: read_saved(cur, n_blobs)?,
            faces: read_saved(cur, n_blobs)?,
        }),
        10 => RootRecord::Periods(StoredPeriods {
            count: cur.take_u32("periods root count")?,
            intervals: read_saved(cur, n_blobs)?,
        }),
        11 => RootRecord::Index(StoredIndex {
            num_tuples: cur.take_u32("index root tuple count")?,
            fanout: cur.take_u32("index root fanout")?,
            entries: read_saved(cur, n_blobs)?,
            nodes: read_saved(cur, n_blobs)?,
        }),
        t => {
            return Err(DecodeError::BadTag {
                what: "root record kind",
                tag: u32::from(t),
            })
        }
    };
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_store::{save_mbool, save_mpoint};
    use mob_base::{t, Periods, TimeInterval};
    use mob_core::{MovingBool, MovingPoint, UnitSeq};
    use mob_spatial::pt;

    fn sample_mpoint() -> MovingPoint {
        let samples: Vec<_> = (0..40)
            .map(|i| {
                let k = f64::from(i);
                (t(k), pt(k * 0.5, f64::from(i % 7)))
            })
            .collect();
        MovingPoint::from_samples(&samples)
    }

    fn sample_mbool() -> MovingBool {
        let periods = Periods::try_new(vec![TimeInterval::closed(t(0.0), t(1.0))]).unwrap();
        MovingBool::from_periods(&periods, true)
    }

    fn sample_file() -> StoreFile {
        let mut file = StoreFile::with_page_size(256).unwrap();
        let mp = sample_mpoint();
        let stored = save_mpoint(&mp, file.store_mut());
        file.put("trip", RootRecord::MPoint(stored));
        let stored_b = save_mbool(&sample_mbool(), file.store_mut());
        file.put("flag", RootRecord::MBool(stored_b));
        file
    }

    #[test]
    fn roundtrip_preserves_entries_and_values() {
        let file = sample_file();
        let bytes = file.to_bytes().unwrap();
        let back = StoreFile::from_bytes(&bytes).unwrap();
        assert_eq!(back.entries().len(), 2);
        assert_eq!(back.entries()[0].0, "trip");
        assert_eq!(back.entries()[1].0, "flag");
        // The decoded root records open as valid views through the
        // catalog-level API.
        let view = back.open_mpoint("trip", Verify::Full).unwrap();
        view.validate().unwrap();
        let orig = sample_mpoint();
        assert_eq!(view.len(), orig.len());
        let loaded = view.materialize_validated().unwrap();
        assert_eq!(loaded.len(), orig.len());
        back.open_mbool("flag", Verify::Full)
            .unwrap()
            .validate()
            .unwrap();
    }

    #[test]
    fn open_rejects_missing_names_and_kind_mismatches() {
        let file = sample_file();
        // Missing name.
        let Err(err) = file.open_mpoint("nope", Verify::Full) else {
            panic!("missing name must fail");
        };
        assert!(matches!(err, DecodeError::BadStructure { .. }), "{err}");
        // Kind mismatch: "flag" is an mbool, not an mpoint.
        let Err(err) = file.open_mpoint("flag", Verify::Full) else {
            panic!("kind mismatch must fail");
        };
        assert!(
            err.to_string().contains("mbool"),
            "mismatch error names the found kind: {err}"
        );
        // Every typed opener rejects a wrong-kind entry.
        assert!(file.open_mreal("trip", Verify::Full).is_err());
        assert!(file.open_mpoints("trip", Verify::Full).is_err());
        assert!(file.open_mline("trip", Verify::Full).is_err());
        assert!(file.open_mregion("trip", Verify::Full).is_err());
        // Preverified skips the O(n) scan but still resolves the entry.
        assert!(file.open_mpoint("trip", Verify::Preverified).is_ok());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes[0] ^= 0xff;
        assert!(matches!(
            StoreFile::from_bytes(&bytes),
            Err(DecodeError::BadStructure { .. })
        ));
    }

    #[test]
    fn truncations_are_rejected_not_panics() {
        let bytes = sample_file().to_bytes().unwrap();
        for len in 0..bytes.len() {
            assert!(
                StoreFile::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_file().to_bytes().unwrap();
        bytes.push(0);
        assert!(matches!(
            StoreFile::from_bytes(&bytes),
            Err(DecodeError::BadStructure { .. })
        ));
    }

    #[test]
    fn unknown_kind_tag_is_rejected() {
        let mut file = StoreFile::new();
        let stored = save_mbool(&sample_mbool(), file.store_mut());
        file.put("x", RootRecord::MBool(stored));
        let bytes = file.to_bytes().unwrap();
        // The kind tag byte follows magic(8)+page(4)+nblobs(4)+blobs+
        // nentries(4)+namelen(4)+name(1); with no external blobs the blob
        // section is empty.
        let tag_pos = 8 + 4 + 4 + 4 + 4 + 1;
        let mut bad = bytes.clone();
        assert_eq!(bad[tag_pos], 1, "expected the mbool kind tag");
        bad[tag_pos] = 99;
        assert!(matches!(
            StoreFile::from_bytes(&bad),
            Err(DecodeError::BadTag { .. })
        ));
    }

    #[test]
    fn dangling_blob_index_is_rejected() {
        // A root record whose units array points at blob 7 of an empty
        // blob table: to_bytes succeeds (it only walks real blobs) but
        // from_bytes must reject the dangling reference.
        let mut forged = StoreFile::with_page_size(64).unwrap();
        forged.put(
            "trip",
            RootRecord::MPoint(StoredMapping {
                num_units: 3,
                units: SavedArray {
                    count: 3,
                    placement: Placement::External(BlobId::from_index(7)),
                },
            }),
        );
        let forged_bytes = forged.to_bytes().unwrap();
        assert!(matches!(
            StoreFile::from_bytes(&forged_bytes),
            Err(DecodeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn zero_and_absurd_page_sizes_are_errors_not_panics() {
        assert!(StoreFile::with_page_size(0).is_err());
        assert!(StoreFile::with_page_size(usize::MAX).is_err());
        // The same damage arriving through serialized bytes: patch the
        // page-size field (bytes 8..12) of a valid file.
        let bytes = sample_file().to_bytes().unwrap();
        for forged_size in [0u32, u32::MAX] {
            let mut bad = bytes.clone();
            bad[8..12].copy_from_slice(&forged_size.to_le_bytes());
            assert!(
                matches!(
                    StoreFile::from_bytes(&bad),
                    Err(DecodeError::BadStructure {
                        what: "page size",
                        ..
                    })
                ),
                "page size {forged_size} must be structural damage"
            );
        }
    }

    #[test]
    fn damage_in_blob_data_quarantines_only_that_blob() {
        let file = sample_file();
        let bytes = file.to_bytes().unwrap();
        let (clean, q) = StoreFile::from_bytes_with_damage(&bytes, &[]).unwrap();
        assert!(q.is_empty());
        assert_eq!(clean.store().num_quarantined(), 0);

        // Locate blob 0's data bytes: magic(8) page(4) nblobs(4) len(4).
        let n_blobs = file.store().num_blobs();
        assert!(n_blobs >= 1, "sample file must have external blobs");
        let blob0_start = 8 + 4 + 4 + 4;
        let blob0_len = file.store().blob_len(BlobId::from_index(0)).unwrap();
        let dmg = (blob0_start + 1, blob0_start + 2);
        let (tolerant, q) = StoreFile::from_bytes_with_damage(&bytes, &[dmg]).unwrap();
        assert_eq!(q, vec![0]);
        assert!(tolerant.store().is_quarantined(BlobId::from_index(0)));
        assert!(matches!(
            tolerant.store().try_read_blob(BlobId::from_index(0)),
            Err(DecodeError::Quarantined { .. })
        ));
        // Whole-blob damage is equivalent.
        let (_, q) =
            StoreFile::from_bytes_with_damage(&bytes, &[(blob0_start, blob0_start + blob0_len)])
                .unwrap();
        assert_eq!(q, vec![0]);
        // Empty ranges are ignored.
        let (_, q) =
            StoreFile::from_bytes_with_damage(&bytes, &[(blob0_start, blob0_start)]).unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn damage_in_structural_bytes_fails_the_decode() {
        let bytes = sample_file().to_bytes().unwrap();
        let expect_structural =
            |damaged: &[(usize, usize)]| match StoreFile::from_bytes_with_damage(&bytes, damaged) {
                Err(DecodeError::Quarantined { .. }) => {}
                Err(other) => panic!("expected structural quarantine error, got {other}"),
                Ok(_) => panic!("structural damage {damaged:?} must fail the decode"),
            };
        // The magic is structural.
        expect_structural(&[(0, 4)]);
        // A blob length prefix is structural too: bytes 16..20 hold
        // blob 0's length.
        expect_structural(&[(16, 18)]);
    }

    #[test]
    fn kind_names_cover_all_variants() {
        let mb = StoredMapping {
            num_units: 0,
            units: SavedArray {
                count: 0,
                placement: Placement::Inline(Vec::new()),
            },
        };
        assert_eq!(RootRecord::MBool(mb.clone()).kind_name(), "mbool");
        assert_eq!(RootRecord::MReal(mb.clone()).kind_name(), "mreal");
        assert_eq!(RootRecord::MPoint(mb).kind_name(), "mpoint");
    }
}
