//! Tuple layout accounting (Sec 4 / \[DG98\]).
//!
//! An attribute value is a root record (always inside the tuple) plus
//! database arrays that are inline or external depending on size. This
//! module sums up where the bytes of a tuple land, so experiments can
//! show the inline/external trade-off (experiment E5).

use crate::dbarray::SavedArray;
use crate::page::PageStore;

/// Byte/page accounting for one tuple.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TupleLayout {
    /// Bytes of root records (fixed part of the tuple).
    pub root_bytes: usize,
    /// Bytes of inline database arrays (also inside the tuple).
    pub inline_bytes: usize,
    /// Number of database arrays stored externally.
    pub external_arrays: usize,
    /// Pages occupied by external arrays.
    pub external_pages: usize,
}

impl TupleLayout {
    /// Start a layout with a given fixed root-record size.
    pub fn with_root(root_bytes: usize) -> TupleLayout {
        TupleLayout {
            root_bytes,
            ..TupleLayout::default()
        }
    }

    /// Account for one saved database array.
    pub fn add_array(&mut self, saved: &SavedArray, store: &PageStore) {
        match &saved.placement {
            crate::dbarray::Placement::Inline(b) => self.inline_bytes += b.len(),
            crate::dbarray::Placement::External(id) => {
                self.external_arrays += 1;
                self.external_pages += store.blob_pages(*id);
            }
        }
    }

    /// Total bytes inside the tuple representation.
    pub fn tuple_bytes(&self) -> usize {
        self.root_bytes + self.inline_bytes
    }

    /// `true` if the whole value lives inside the tuple.
    pub fn fully_inline(&self) -> bool {
        self.external_arrays == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbarray::save_array;
    use mob_spatial::{pt, Point};

    #[test]
    fn layout_accounts_inline_and_external() {
        let mut store = PageStore::new();
        let small: Vec<Point> = vec![pt(0.0, 0.0)];
        let large: Vec<Point> = (0..1000).map(|i| pt(i as f64, 0.0)).collect();
        let s1 = save_array(&small, &mut store);
        let s2 = save_array(&large, &mut store);
        let mut layout = TupleLayout::with_root(64);
        layout.add_array(&s1, &store);
        layout.add_array(&s2, &store);
        assert_eq!(layout.root_bytes, 64);
        assert_eq!(layout.inline_bytes, 16);
        assert_eq!(layout.external_arrays, 1);
        assert!(layout.external_pages >= 4); // 16000 bytes / 4096
        assert_eq!(layout.tuple_bytes(), 80);
        assert!(!layout.fully_inline());
    }

    #[test]
    fn small_value_is_fully_inline() {
        let mut store = PageStore::new();
        let s = save_array(&[pt(1.0, 2.0)], &mut store);
        let mut layout = TupleLayout::with_root(16);
        layout.add_array(&s, &store);
        assert!(layout.fully_inline());
        assert_eq!(layout.external_pages, 0);
    }
}
