//! Fixed-size records.
//!
//! Section 4's ground rules: attribute data structures use "no pointers"
//! — all references are array indices — and consist of records and
//! arrays. [`FixedRecord`] is the contract for anything stored in a
//! database array: a fixed byte size and pointer-free (de)serialization.
//!
//! Decode paths treat bytes as **untrusted**: [`FixedRecord::read`]
//! returns a [`DecodeError`] on truncated buffers or values that violate
//! their carrier-set invariants (NaN coordinates, inverted intervals),
//! so corrupted storage surfaces as an `Err` instead of a panic.

use mob_base::{DecodeError, DecodeResult, Instant, Interval, Real, TimeInterval};
use mob_spatial::Point;

/// A pointer-free record of statically known size.
pub trait FixedRecord: Sized {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Short name used in [`DecodeError`] messages.
    const WHAT: &'static str = "record";

    /// Write exactly [`Self::SIZE`] bytes into `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Read back from a buffer holding at least [`Self::SIZE`] bytes.
    ///
    /// The input is untrusted: implementations must reject short buffers
    /// and values that violate type invariants with a [`DecodeError`]
    /// rather than panicking.
    fn read(buf: &[u8]) -> DecodeResult<Self>;
}

/// Require `buf` to hold at least `need` bytes for `what`.
#[inline]
pub fn need_bytes(buf: &[u8], need: usize, what: &'static str) -> DecodeResult<()> {
    if buf.len() < need {
        Err(DecodeError::Truncated {
            what,
            need,
            have: buf.len(),
        })
    } else {
        Ok(())
    }
}

/// Little-endian f64 helpers for record implementations.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read an f64 at `off` (bounds-checked).
pub fn get_f64(buf: &[u8], off: usize) -> DecodeResult<f64> {
    match buf.get(off..off + 8) {
        Some(b) => {
            let mut arr = [0u8; 8];
            for (d, s) in arr.iter_mut().zip(b) {
                *d = *s;
            }
            Ok(f64::from_le_bytes(arr))
        }
        None => Err(DecodeError::Truncated {
            what: "f64 field",
            need: off + 8,
            have: buf.len(),
        }),
    }
}

/// Write a u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a u32 at `off` (bounds-checked).
pub fn get_u32(buf: &[u8], off: usize) -> DecodeResult<u32> {
    match buf.get(off..off + 4) {
        Some(b) => {
            let mut arr = [0u8; 4];
            for (d, s) in arr.iter_mut().zip(b) {
                *d = *s;
            }
            Ok(u32::from_le_bytes(arr))
        }
        None => Err(DecodeError::Truncated {
            what: "u32 field",
            need: off + 4,
            have: buf.len(),
        }),
    }
}

/// Read a byte at `off` as bool (bounds-checked; any nonzero is `true`).
pub fn get_bool(buf: &[u8], off: usize) -> DecodeResult<bool> {
    match buf.get(off) {
        Some(b) => Ok(*b != 0),
        None => Err(DecodeError::Truncated {
            what: "bool field",
            need: off + 1,
            have: buf.len(),
        }),
    }
}

impl FixedRecord for f64 {
    const SIZE: usize = 8;
    const WHAT: &'static str = "f64";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn read(buf: &[u8]) -> DecodeResult<f64> {
        get_f64(buf, 0)
    }
}

impl FixedRecord for i64 {
    const SIZE: usize = 8;
    const WHAT: &'static str = "i64";
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> DecodeResult<i64> {
        need_bytes(buf, 8, "i64")?;
        let mut arr = [0u8; 8];
        for (d, s) in arr.iter_mut().zip(buf) {
            *d = *s;
        }
        Ok(i64::from_le_bytes(arr))
    }
}

impl FixedRecord for u32 {
    const SIZE: usize = 4;
    const WHAT: &'static str = "u32";
    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn read(buf: &[u8]) -> DecodeResult<u32> {
        get_u32(buf, 0)
    }
}

impl FixedRecord for bool {
    const SIZE: usize = 1;
    const WHAT: &'static str = "bool";
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read(buf: &[u8]) -> DecodeResult<bool> {
        get_bool(buf, 0)
    }
}

impl FixedRecord for Real {
    const SIZE: usize = 8;
    const WHAT: &'static str = "real";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.get());
    }
    fn read(buf: &[u8]) -> DecodeResult<Real> {
        Ok(Real::try_new(get_f64(buf, 0)?)?)
    }
}

impl FixedRecord for Instant {
    const SIZE: usize = 8;
    const WHAT: &'static str = "instant";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.as_f64());
    }
    fn read(buf: &[u8]) -> DecodeResult<Instant> {
        Ok(Instant::try_from_f64(get_f64(buf, 0)?)?)
    }
}

impl FixedRecord for Point {
    const SIZE: usize = 16;
    const WHAT: &'static str = "point";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.x.get());
        put_f64(out, self.y.get());
    }
    fn read(buf: &[u8]) -> DecodeResult<Point> {
        let x = Real::try_new(get_f64(buf, 0)?)?;
        let y = Real::try_new(get_f64(buf, 8)?)?;
        Ok(Point::new(x, y))
    }
}

/// Time-interval record: `(s, e, lc, rc)` in 18 bytes.
impl FixedRecord for TimeInterval {
    const SIZE: usize = 18;
    const WHAT: &'static str = "time interval";
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.start().as_f64());
        put_f64(out, self.end().as_f64());
        out.push(u8::from(self.left_closed()));
        out.push(u8::from(self.right_closed()));
    }
    fn read(buf: &[u8]) -> DecodeResult<TimeInterval> {
        let s = Instant::try_from_f64(get_f64(buf, 0)?)?;
        let e = Instant::try_from_f64(get_f64(buf, 8)?)?;
        let lc = get_bool(buf, 16)?;
        let rc = get_bool(buf, 17)?;
        Ok(Interval::try_new(s, e, lc, rc)?)
    }
}

/// Serialize a slice of records into a contiguous byte buffer.
pub fn write_all<T: FixedRecord>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::SIZE);
    for it in items {
        it.write(&mut out);
    }
    out
}

/// Deserialize a contiguous byte buffer into records.
///
/// Ragged buffers (length not a multiple of the record size) are a
/// layout-level decode error.
pub fn read_all<T: FixedRecord>(buf: &[u8]) -> DecodeResult<Vec<T>> {
    if !buf.len().is_multiple_of(T::SIZE) {
        return Err(DecodeError::Ragged {
            what: T::WHAT,
            len: buf.len(),
            record_size: T::SIZE,
        });
    }
    buf.chunks(T::SIZE).map(T::read).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t};
    use mob_spatial::pt;

    fn roundtrip<T: FixedRecord + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.write(&mut buf);
        assert_eq!(buf.len(), T::SIZE);
        assert_eq!(T::read(&buf).unwrap(), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(1.5f64);
        roundtrip(-42i64);
        roundtrip(7u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(r(2.5));
        roundtrip(t(3.5));
        roundtrip(pt(1.0, -2.0));
        roundtrip(Interval::new(t(0.0), t(1.0), true, false));
        roundtrip(TimeInterval::point(t(5.0)));
    }

    #[test]
    fn bulk_roundtrip() {
        let pts = vec![pt(0.0, 0.0), pt(1.0, 2.0), pt(-3.0, 4.0)];
        let buf = write_all(&pts);
        assert_eq!(buf.len(), 3 * Point::SIZE);
        assert_eq!(read_all::<Point>(&buf).unwrap(), pts);
    }

    #[test]
    fn read_all_rejects_ragged_buffers() {
        assert!(matches!(
            read_all::<Point>(&[0u8; 17]),
            Err(DecodeError::Ragged { .. })
        ));
    }

    #[test]
    fn truncated_reads_are_errors() {
        assert!(matches!(
            <f64 as FixedRecord>::read(&[0u8; 4]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            TimeInterval::read(&[0u8; 17]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(bool::read(&[]).is_err());
    }

    #[test]
    fn nan_and_inverted_intervals_are_rejected() {
        let mut buf = Vec::new();
        put_f64(&mut buf, f64::NAN);
        assert!(matches!(Real::read(&buf), Err(DecodeError::Invariant(_))));
        assert!(Instant::read(&buf).is_err());
        // Interval with e < s.
        let mut buf = Vec::new();
        put_f64(&mut buf, 2.0);
        put_f64(&mut buf, 1.0);
        buf.push(1);
        buf.push(1);
        assert!(matches!(
            TimeInterval::read(&buf),
            Err(DecodeError::Invariant(_))
        ));
        // Degenerate interval must be closed on both sides.
        let mut buf = Vec::new();
        put_f64(&mut buf, 1.0);
        put_f64(&mut buf, 1.0);
        buf.push(1);
        buf.push(0);
        assert!(TimeInterval::read(&buf).is_err());
    }
}
