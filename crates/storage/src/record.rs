//! Fixed-size records.
//!
//! Section 4's ground rules: attribute data structures use "no pointers"
//! — all references are array indices — and consist of records and
//! arrays. [`FixedRecord`] is the contract for anything stored in a
//! database array: a fixed byte size and pointer-free (de)serialization.

use mob_base::{Instant, Interval, Real, TimeInterval};
use mob_spatial::Point;

/// A pointer-free record of statically known size.
pub trait FixedRecord: Sized {
    /// Serialized size in bytes.
    const SIZE: usize;

    /// Write exactly [`Self::SIZE`] bytes into `out`.
    fn write(&self, out: &mut Vec<u8>);

    /// Read back from a buffer of exactly [`Self::SIZE`] bytes.
    fn read(buf: &[u8]) -> Self;
}

/// Little-endian f64 helpers for record implementations.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read an f64 at `off`.
pub fn get_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Write a u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a u32 at `off`.
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
}

impl FixedRecord for f64 {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, *self);
    }
    fn read(buf: &[u8]) -> f64 {
        get_f64(buf, 0)
    }
}

impl FixedRecord for i64 {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn read(buf: &[u8]) -> i64 {
        i64::from_le_bytes(buf[..8].try_into().expect("8 bytes"))
    }
}

impl FixedRecord for u32 {
    const SIZE: usize = 4;
    fn write(&self, out: &mut Vec<u8>) {
        put_u32(out, *self);
    }
    fn read(buf: &[u8]) -> u32 {
        get_u32(buf, 0)
    }
}

impl FixedRecord for bool {
    const SIZE: usize = 1;
    fn write(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn read(buf: &[u8]) -> bool {
        buf[0] != 0
    }
}

impl FixedRecord for Real {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.get());
    }
    fn read(buf: &[u8]) -> Real {
        Real::new(get_f64(buf, 0))
    }
}

impl FixedRecord for Instant {
    const SIZE: usize = 8;
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.as_f64());
    }
    fn read(buf: &[u8]) -> Instant {
        Instant::from_f64(get_f64(buf, 0))
    }
}

impl FixedRecord for Point {
    const SIZE: usize = 16;
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.x.get());
        put_f64(out, self.y.get());
    }
    fn read(buf: &[u8]) -> Point {
        Point::from_f64(get_f64(buf, 0), get_f64(buf, 8))
    }
}

/// Time-interval record: `(s, e, lc, rc)` in 18 bytes.
impl FixedRecord for TimeInterval {
    const SIZE: usize = 18;
    fn write(&self, out: &mut Vec<u8>) {
        put_f64(out, self.start().as_f64());
        put_f64(out, self.end().as_f64());
        out.push(u8::from(self.left_closed()));
        out.push(u8::from(self.right_closed()));
    }
    fn read(buf: &[u8]) -> TimeInterval {
        Interval::new(
            Instant::from_f64(get_f64(buf, 0)),
            Instant::from_f64(get_f64(buf, 8)),
            buf[16] != 0,
            buf[17] != 0,
        )
    }
}

/// Serialize a slice of records into a contiguous byte buffer.
pub fn write_all<T: FixedRecord>(items: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(items.len() * T::SIZE);
    for it in items {
        it.write(&mut out);
    }
    out
}

/// Deserialize a contiguous byte buffer into records.
pub fn read_all<T: FixedRecord>(buf: &[u8]) -> Vec<T> {
    assert!(
        buf.len().is_multiple_of(T::SIZE),
        "buffer length must be a multiple of the record size"
    );
    buf.chunks(T::SIZE).map(T::read).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mob_base::{r, t};
    use mob_spatial::pt;

    fn roundtrip<T: FixedRecord + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.write(&mut buf);
        assert_eq!(buf.len(), T::SIZE);
        assert_eq!(T::read(&buf), v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(1.5f64);
        roundtrip(-42i64);
        roundtrip(7u32);
        roundtrip(true);
        roundtrip(false);
        roundtrip(r(2.5));
        roundtrip(t(3.5));
        roundtrip(pt(1.0, -2.0));
        roundtrip(Interval::new(t(0.0), t(1.0), true, false));
        roundtrip(TimeInterval::point(t(5.0)));
    }

    #[test]
    fn bulk_roundtrip() {
        let pts = vec![pt(0.0, 0.0), pt(1.0, 2.0), pt(-3.0, 4.0)];
        let buf = write_all(&pts);
        assert_eq!(buf.len(), 3 * Point::SIZE);
        assert_eq!(read_all::<Point>(&buf), pts);
    }

    #[test]
    #[should_panic(expected = "multiple of the record size")]
    fn read_all_rejects_ragged_buffers() {
        let _ = read_all::<Point>(&[0u8; 17]);
    }
}
