//! Crash-consistent durable store files with generational MVCC.
//!
//! A [`DurableStore`] keeps a chain of *immutable, generation-numbered
//! files* inside one [`StoreIo`] directory: full snapshots plus the WAL
//! deltas committed on top of the newest snapshot:
//!
//! ```text
//! snap-0000000000000007.mob      ← previous committed full snapshot
//! snap-0000000000000008.mob      ← newest committed full snapshot
//! delta-0000000000000009.mob     ← appends producing generation 9
//! delta-000000000000000a.mob     ← appends producing generation 10
//! tmp-000000000000000b.mob       ← a full commit in flight (ignored)
//! ```
//!
//! Opening ([`StoreOptions::open`]) recovers the newest valid snapshot,
//! then replays the contiguous delta chain above it in generation order;
//! the first torn, forged, or out-of-sequence delta ends the chain (it
//! and everything after it are removed and counted in
//! `durable.recoveries`). [`DurableStore::compact`] folds the chain back
//! into a fresh full snapshot.
//!
//! # Commit protocols
//!
//! All commits go through a [`Txn`] handle ([`DurableStore::begin`]).
//!
//! **Full image** (shadow write → fsync → atomic rename):
//!
//! ```text
//!   txn.put_store_file(f) / txn.put_payload(b); txn.commit():
//!     1. encode payload into a checksummed image  (pure, in memory)
//!     2. write_file("tmp-<g>")                    ── crash here: old state
//!     3. sync("tmp-<g>")                          ── crash here: old state
//!     4. rename("tmp-<g>", "snap-<g>") + dir sync ── crash here: old OR new
//!     5. prune older snapshots + superseded deltas── crash here: new state
//! ```
//!
//! **Delta** (append → fsync; cost is O(appended units), not O(store)):
//!
//! ```text
//!   txn.append_units(name, units); txn.commit():
//!     1. apply the appends to the current generation in memory
//!        (pure validation: a bad batch fails before any I/O)
//!     2. encode the delta payload into a checksummed image
//!     3. append_file("delta-<g>")                 ── crash here: old state
//!     4. sync("delta-<g>")                        ── crash here: old OR new
//! ```
//!
//! A snapshot or delta file is **never modified after its generation is
//! durable**, so every committed generation stays byte-identical on disk
//! while its successor is written. Recovery therefore always yields a
//! prefix of the committed chain — the *old* or the *new* state, never a
//! hybrid: a torn delta fails its checksums and is discarded together
//! with everything above it.
//!
//! # MVCC reads
//!
//! [`DurableStore::snapshot`] returns the current [`Generation`] behind
//! an `Arc`: an immutable view of the store that reader threads keep
//! querying — bit-for-bit unchanged — while the writer commits deltas
//! and compactions. Commits build *new* generations (sharing untouched
//! pages with the old one) and swap the store's current pointer; pinned
//! readers are unaffected.
//!
//! # Image framing
//!
//! Every byte of a snapshot or delta file is covered by a checksum
//! *before* any structural decoder touches it:
//!
//! ```text
//! frame 0:   [crc u64 | len u32 | superblock (32 bytes)]
//! frame 1…n: [crc u64 | len u32 | payload chunk (≤ chunk_size bytes)]
//! ```
//!
//! The superblock records magic, format version, generation, chunk size
//! and exact payload length, so every chunk frame's position and size is
//! *computable* — a damaged chunk cannot desynchronize the reader. The
//! strict decoder rejects a file on the first bad frame; the degraded
//! decoder ([`StoreOptions::degraded`]) requires only the superblock to
//! be intact and reports the byte ranges of damaged chunks
//! (`store.pages_corrupt`), letting the open quarantine exactly the
//! affected blobs via
//! [`StoreFile::from_bytes_with_damage`](crate::store_file::StoreFile::from_bytes_with_damage)
//! while healthy data keeps serving. Delta files are always decoded
//! strictly: a damaged delta is discarded, not partially applied.

use crate::delta::{decode_delta_payload, delta_name, encode_delta_payload, parse_delta_name};
use crate::generation::Generation;
use crate::io::StoreIo;
use crate::mapping_store::UPointRecord;
use crate::page::{open_frame, seal_frame, validate_page_size, FRAME_OVERHEAD};
use crate::store_file::StoreFile;
use mob_base::{DecodeError, DecodeResult};
use mob_core::{UPoint, Unit};
use std::sync::Arc;

/// Magic bytes identifying a durable snapshot image (version 1).
pub const DURABLE_MAGIC: &[u8; 8] = b"MOBDUR01";

/// Durable image format version written into every superblock.
pub const DURABLE_VERSION: u32 = 1;

/// Default chunk size for payload framing (one checksum per this many
/// payload bytes).
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// Serialized superblock length: magic(8) + version(4) + generation(8) +
/// chunk_size(4) + payload_len(8).
const SUPERBLOCK_LEN: usize = 32;

/// Final name of a committed snapshot: zero-padded hex keeps
/// lexicographic and numeric order identical.
#[must_use]
pub fn snapshot_name(generation: u64) -> String {
    format!("snap-{generation:016x}.mob")
}

/// Shadow-write name for a commit in flight.
fn tmp_name(generation: u64) -> String {
    format!("tmp-{generation:016x}.mob")
}

/// Parse a snapshot file name back to its generation (`None` for
/// anything that is not exactly a snapshot name).
#[must_use]
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".mob")?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded snapshot image, possibly with damaged (zero-filled) chunk
/// ranges when decoded in degraded mode.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// Generation recorded in the (checksum-verified) superblock.
    pub generation: u64,
    /// Chunk size the payload was framed with.
    pub chunk_size: usize,
    /// The payload bytes. Damaged chunks are zero-filled; their ranges
    /// are listed in `damaged`.
    pub payload: Vec<u8>,
    /// Half-open byte ranges of `payload` whose chunk frames failed
    /// verification (empty after a strict decode).
    pub damaged: Vec<(usize, usize)>,
    /// Number of chunk frames that failed verification.
    pub chunks_corrupt: usize,
    /// Total number of chunk frames in the image.
    pub chunks_total: usize,
}

struct Superblock {
    generation: u64,
    chunk_size: usize,
    payload_len: usize,
}

fn get_u32_at(b: &[u8], at: usize) -> u32 {
    // Total zip-copy: missing bytes read as zero (callers have already
    // length-checked the superblock, but nothing here can panic).
    let mut v = [0u8; 4];
    for (d, s) in v.iter_mut().zip(b.iter().skip(at)) {
        *d = *s;
    }
    u32::from_le_bytes(v)
}

fn get_u64_at(b: &[u8], at: usize) -> u64 {
    let mut v = [0u8; 8];
    for (d, s) in v.iter_mut().zip(b.iter().skip(at)) {
        *d = *s;
    }
    u64::from_le_bytes(v)
}

fn parse_superblock(sb: &[u8]) -> DecodeResult<Superblock> {
    if sb.len() != SUPERBLOCK_LEN {
        return Err(DecodeError::CountMismatch {
            what: "durable superblock",
            expected: SUPERBLOCK_LEN,
            found: sb.len(),
        });
    }
    let magic = sb.get(..8).unwrap_or_default();
    if magic != DURABLE_MAGIC {
        return Err(DecodeError::BadStructure {
            what: "durable magic",
            detail: format!("expected {DURABLE_MAGIC:?}, found {magic:?}"),
        });
    }
    let version = get_u32_at(sb, 8);
    if version != DURABLE_VERSION {
        return Err(DecodeError::BadTag {
            what: "durable format version",
            tag: version,
        });
    }
    let generation = get_u64_at(sb, 12);
    let chunk_size = validate_page_size(crate::checked::idx_usize(get_u32_at(sb, 20)))?;
    let payload_len =
        usize::try_from(get_u64_at(sb, 24)).map_err(|_| DecodeError::BadStructure {
            what: "durable payload length",
            detail: "payload length exceeds the address space".to_string(),
        })?;
    Ok(Superblock {
        generation,
        chunk_size,
        payload_len,
    })
}

/// Encode a payload into a snapshot image (superblock frame + chunk
/// frames, every byte checksummed).
fn encode_image(generation: u64, chunk_size: usize, payload: &[u8]) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let mut sb = Vec::with_capacity(SUPERBLOCK_LEN);
    sb.extend_from_slice(DURABLE_MAGIC);
    sb.extend_from_slice(&DURABLE_VERSION.to_le_bytes());
    sb.extend_from_slice(&generation.to_le_bytes());
    sb.extend_from_slice(&crate::checked::count_u32(chunk_size).to_le_bytes());
    sb.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let n_chunks = payload.len().div_ceil(chunk_size);
    let mut out = Vec::with_capacity(
        FRAME_OVERHEAD + SUPERBLOCK_LEN + payload.len() + n_chunks * FRAME_OVERHEAD,
    );
    seal_frame(&mut out, &sb);
    for chunk in payload.chunks(chunk_size) {
        seal_frame(&mut out, chunk);
    }
    out
}

/// Decode a snapshot image. In strict mode (`tolerate_chunk_damage =
/// false`) any damage anywhere fails the decode; in degraded mode the
/// superblock must verify but damaged chunk frames are zero-filled and
/// reported in [`DecodedImage::damaged`].
fn decode_image(bytes: &[u8], tolerate_chunk_damage: bool) -> DecodeResult<DecodedImage> {
    let (sb_payload, mut rest) = open_frame(bytes)?;
    let sb = parse_superblock(sb_payload)?;
    let n_chunks = sb.payload_len.div_ceil(sb.chunk_size);
    let mut payload = vec![0u8; sb.payload_len];
    let mut damaged = Vec::new();
    let mut off = 0usize;
    for _ in 0..n_chunks {
        let clen = sb.chunk_size.min(sb.payload_len - off);
        let flen = FRAME_OVERHEAD + clen;
        let mut ok = false;
        if let Some(frame) = rest.get(..flen) {
            match open_frame(frame) {
                Ok((chunk, _)) if chunk.len() == clen => {
                    for (d, s) in payload.iter_mut().skip(off).zip(chunk) {
                        *d = *s;
                    }
                    ok = true;
                }
                Ok((chunk, _)) => {
                    if !tolerate_chunk_damage {
                        return Err(DecodeError::CountMismatch {
                            what: "durable chunk frame",
                            expected: clen,
                            found: chunk.len(),
                        });
                    }
                }
                Err(e) => {
                    if !tolerate_chunk_damage {
                        return Err(e);
                    }
                }
            }
        } else if !tolerate_chunk_damage {
            return Err(DecodeError::Truncated {
                what: "durable chunk frame",
                need: flen,
                have: rest.len(),
            });
        }
        if !ok {
            damaged.push((off, off + clen));
        }
        rest = rest.get(flen..).unwrap_or_default();
        off += clen;
    }
    if !rest.is_empty() && !tolerate_chunk_damage {
        return Err(DecodeError::BadStructure {
            what: "durable image",
            detail: format!("{} trailing bytes after the last chunk frame", rest.len()),
        });
    }
    let chunks_corrupt = damaged.len();
    Ok(DecodedImage {
        generation: sb.generation,
        chunk_size: sb.chunk_size,
        payload,
        damaged,
        chunks_corrupt,
        chunks_total: n_chunks,
    })
}

/// Strictly verify and decode a snapshot image: any damaged byte
/// anywhere (superblock or chunk frames) fails with a frame-level error
/// ([`DecodeError::ChecksumMismatch`] / [`DecodeError::Truncated`] /
/// [`DecodeError::BadStructure`]) — the structural payload decoder is
/// never reached with damaged bytes.
pub fn decode_image_strict(bytes: &[u8]) -> DecodeResult<DecodedImage> {
    decode_image(bytes, false)
}

/// Decode a snapshot image in degraded mode: the superblock must verify,
/// damaged chunk frames are zero-filled and reported in
/// [`DecodedImage::damaged`]. Used by `mob-check verify --deep` to
/// report per-chunk verdicts on a damaged file.
pub fn decode_image_degraded(bytes: &[u8]) -> DecodeResult<DecodedImage> {
    decode_image(bytes, true)
}

/// What the store currently holds (the committed state the last open or
/// commit produced).
enum StoreState {
    /// No committed generation (a fresh directory).
    Empty,
    /// A committed payload that is not a [`StoreFile`] image (arbitrary
    /// bytes committed through [`Txn::put_payload`]). Delta commits and
    /// snapshots are unavailable.
    Raw(Vec<u8>),
    /// A committed [`Generation`] (store-file payload, possibly with
    /// replayed deltas on top).
    Gen(Arc<Generation>),
}

/// How [`StoreOptions::open`] treats WAL delta files found above the
/// newest valid snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReplayPolicy {
    /// Replay the contiguous delta chain in generation order (the
    /// default). The first invalid or out-of-sequence delta ends the
    /// chain; it and everything above it are removed and counted in
    /// `durable.recoveries`.
    #[default]
    Deltas,
    /// Ignore and delete all delta files: recover exactly the newest
    /// valid full snapshot (an escape hatch for damaged chains and a
    /// compatibility mode for pre-WAL tooling).
    SnapshotOnly,
}

/// Builder for opening a [`DurableStore`] — the single entry point that
/// replaces the old `create`/`open`/`open_degraded`/`open_store_file`/
/// `open_store_file_degraded` constructor matrix:
///
/// ```
/// use mob_storage::{DurableStore, MemIo, ReplayPolicy};
///
/// let store = DurableStore::options()
///     .chunk_size(4096)
///     .degraded(false)
///     .replay(ReplayPolicy::Deltas)
///     .open(MemIo::new())
///     .unwrap();
/// assert_eq!(store.generation(), 0); // fresh directory
/// ```
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    chunk_size: usize,
    degraded: bool,
    replay: ReplayPolicy,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions::new()
    }
}

impl StoreOptions {
    /// Default options: [`DEFAULT_CHUNK_SIZE`], strict decoding, delta
    /// replay on.
    #[must_use]
    pub fn new() -> StoreOptions {
        StoreOptions {
            chunk_size: DEFAULT_CHUNK_SIZE,
            degraded: false,
            replay: ReplayPolicy::Deltas,
        }
    }

    /// Chunk size for payload framing (validated at open).
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> StoreOptions {
        self.chunk_size = chunk_size;
        self
    }

    /// Tolerate at-rest damage in the newest snapshot: a snapshot whose
    /// superblock verifies is recovered even if chunk frames are
    /// damaged, with the affected blobs quarantined
    /// ([`Generation::quarantined`]). Off (strict) by default.
    #[must_use]
    pub fn degraded(mut self, degraded: bool) -> StoreOptions {
        self.degraded = degraded;
        self
    }

    /// Delta replay policy (see [`ReplayPolicy`]).
    #[must_use]
    pub fn replay(mut self, replay: ReplayPolicy) -> StoreOptions {
        self.replay = replay;
        self
    }

    /// Open (or create) the durable store in `io`'s directory.
    ///
    /// Recovers the newest fully-valid snapshot (torn newer snapshots
    /// are skipped, deleted and counted in `durable.recoveries`), then
    /// applies the replay policy to the delta chain above it. A fresh
    /// directory opens at generation 0 with an empty snapshot; the
    /// first commit writes generation 1.
    ///
    /// All inputs are untrusted: damaged or forged files surface as
    /// recoveries or [`DecodeError`]s, never as panics.
    pub fn open<I: StoreIo>(self, io: I) -> DecodeResult<DurableStore<I>> {
        let (mut store, img) = DurableStore::open_inner(io, self.chunk_size, self.degraded)?;
        store.state = match img {
            None => StoreState::Empty,
            Some(img) => DurableStore::<I>::state_from_image(img, self.degraded)?,
        };
        match self.replay {
            ReplayPolicy::Deltas => store.replay_deltas()?,
            ReplayPolicy::SnapshotOnly => {
                for name in store.io.list()? {
                    if parse_delta_name(&name).is_some() {
                        let _ = store.io.remove(&name);
                    }
                }
            }
        }
        Ok(store)
    }
}

/// A crash-consistent store of committed generations over a [`StoreIo`]
/// directory (see the module docs for the protocols and the recovery
/// invariant). Open with [`DurableStore::options`]; commit through
/// [`DurableStore::begin`]; read through [`DurableStore::snapshot`].
pub struct DurableStore<I: StoreIo> {
    io: I,
    chunk_size: usize,
    generation: u64,
    state: StoreState,
    /// Delta commits applied (or replayed) on top of the newest full
    /// snapshot — the maintenance supervisor's compaction trigger.
    deltas_since_snapshot: u64,
    /// Encoded bytes of those deltas.
    delta_bytes_since_snapshot: u64,
}

/// Result payload of [`DurableStore::open_store_file_degraded`]: the
/// store handle plus, when a committed snapshot exists, the decoded
/// [`StoreFile`] and the ids of the blobs quarantined by at-rest damage.
#[deprecated(note = "use DurableStore::options().degraded(true).open(io) and snapshot()")]
pub type DegradedOpen<I> = (DurableStore<I>, Option<(StoreFile, Vec<usize>)>);

/// Staged content of a full-image commit.
enum Staged {
    /// Arbitrary payload bytes.
    Payload(Vec<u8>),
    /// A serialized [`StoreFile`] plus an owned copy that becomes the
    /// new current [`Generation`].
    File(Vec<u8>, StoreFile),
}

/// An explicit transaction handle: the single commit entry point for
/// both full-image and delta commits (see [`DurableStore::begin`]).
///
/// Stage either a full image ([`Txn::put_store_file`] /
/// [`Txn::put_payload`]) or appended units ([`Txn::append_units`]), then
/// [`Txn::commit`]. Mixing both in one transaction is an error, as is
/// committing an empty transaction. Dropping the handle without
/// committing abandons the staged work (no I/O has happened).
pub struct Txn<'a, I: StoreIo> {
    store: &'a mut DurableStore<I>,
    image: Option<Staged>,
    appends: Vec<(String, Vec<UPointRecord>)>,
}

impl<I: StoreIo> Txn<'_, I> {
    /// Stage arbitrary payload bytes as a full-image commit (replacing
    /// any previously staged image).
    pub fn put_payload(&mut self, payload: &[u8]) {
        self.image = Some(Staged::Payload(payload.to_vec()));
    }

    /// Stage a [`StoreFile`] as a full-image commit (replacing any
    /// previously staged image). The file is serialized now — encoding
    /// errors surface here, before any I/O.
    pub fn put_store_file(&mut self, file: &StoreFile) -> DecodeResult<()> {
        let bytes = file.to_bytes()?;
        let copy = StoreFile::from_parts(file.store().fork(), file.entries().to_vec());
        self.image = Some(Staged::File(bytes, copy));
        Ok(())
    }

    /// Stage units appended to the `moving(point)` root `name` (the
    /// delta commit path). Batches accumulate in call order; the same
    /// root may appear multiple times.
    pub fn append_units(&mut self, name: &str, units: &[UPoint]) {
        let records: Vec<UPointRecord> = units
            .iter()
            .map(|u| UPointRecord {
                interval: *u.interval(),
                motion: *u.motion(),
            })
            .collect();
        self.appends.push((name.to_string(), records));
    }

    /// Number of staged appended units across all batches.
    #[must_use]
    pub fn staged_units(&self) -> usize {
        self.appends.iter().map(|(_, r)| r.len()).sum()
    }

    /// Commit the staged work as the next generation and return its
    /// number. Consumes the transaction.
    ///
    /// On an error return the commit may or may not have become durable
    /// (exactly like a real crashed process); reopening the directory
    /// yields either the previous or the new state, never a mix.
    pub fn commit(self) -> DecodeResult<u64> {
        match (self.image, self.appends.is_empty()) {
            (Some(_), false) => Err(DecodeError::BadStructure {
                what: "durable transaction",
                detail: "a transaction stages either a full image or appends, not both".into(),
            }),
            (None, true) => Err(DecodeError::BadStructure {
                what: "durable transaction",
                detail: "empty transaction (stage an image or appends before commit)".into(),
            }),
            (Some(staged), true) => self.store.commit_full(staged),
            (None, false) => self.store.commit_delta(&self.appends),
        }
    }
}

impl DurableStore<crate::io::MemIo> {
    /// Options builder — the one open/create entry point (see
    /// [`StoreOptions`]). Anchored on one concrete `I` so that
    /// `DurableStore::options()` needs no turbofish; the builder itself
    /// is I/O-agnostic and [`StoreOptions::open`] accepts any
    /// [`StoreIo`].
    #[must_use]
    pub fn options() -> StoreOptions {
        StoreOptions::new()
    }
}

impl<I: StoreIo> DurableStore<I> {
    /// Start a durable store in a **fresh** directory.
    #[deprecated(note = "use DurableStore::options().open(io); a fresh directory opens empty")]
    pub fn create(io: I, chunk_size: usize) -> DecodeResult<DurableStore<I>> {
        let chunk_size = validate_page_size(chunk_size)?;
        if io.list()?.iter().any(|n| parse_snapshot_name(n).is_some()) {
            return Err(DecodeError::Io(
                "durable create: directory already contains snapshots (use open)".to_string(),
            ));
        }
        Ok(DurableStore {
            io,
            chunk_size,
            generation: 0,
            state: StoreState::Empty,
            deltas_since_snapshot: 0,
            delta_bytes_since_snapshot: 0,
        })
    }

    /// Recover the latest fully-valid committed payload (pre-WAL API:
    /// delta files are ignored).
    #[deprecated(note = "use DurableStore::options().open(io) and snapshot()/raw_payload()")]
    pub fn open(io: I, chunk_size: usize) -> DecodeResult<(DurableStore<I>, Option<Vec<u8>>)> {
        let (mut store, img) = DurableStore::open_inner(io, chunk_size, false)?;
        let payload = img.map(|i| i.payload);
        store.state = match &payload {
            Some(p) => StoreState::Raw(p.clone()),
            None => StoreState::Empty,
        };
        Ok((store, payload))
    }

    /// Recover the latest snapshot whose *superblock* is intact, even if
    /// some chunk frames are damaged (pre-WAL API: delta files are
    /// ignored).
    #[deprecated(note = "use DurableStore::options().degraded(true).open(io)")]
    pub fn open_degraded(
        io: I,
        chunk_size: usize,
    ) -> DecodeResult<(DurableStore<I>, Option<DecodedImage>)> {
        let (mut store, img) = DurableStore::open_inner(io, chunk_size, true)?;
        store.state = match &img {
            Some(i) => StoreState::Raw(i.payload.clone()),
            None => StoreState::Empty,
        };
        Ok((store, img))
    }

    /// Shared recovery scan: newest valid snapshot wins, torn snapshots
    /// and stale shadow files are removed. Returns the store (state
    /// [`StoreState::Empty`], to be set by the caller) and the decoded
    /// image, if any.
    fn open_inner(
        io: I,
        chunk_size: usize,
        tolerate_chunk_damage: bool,
    ) -> DecodeResult<(DurableStore<I>, Option<DecodedImage>)> {
        let chunk_size = validate_page_size(chunk_size)?;
        let names = io.list()?;
        let mut snaps: Vec<(u64, &String)> = names
            .iter()
            .filter_map(|n| parse_snapshot_name(n).map(|g| (g, n)))
            .collect();
        snaps.sort_by_key(|&(gen, _)| std::cmp::Reverse(gen));
        let mut skipped = 0u64;
        let mut found: Option<DecodedImage> = None;
        for (gen, name) in &snaps {
            let decoded = io
                .read_file(name)
                .and_then(|bytes| decode_image(&bytes, tolerate_chunk_damage));
            match decoded {
                Ok(img) if img.generation == *gen => {
                    found = Some(img);
                    break;
                }
                Ok(_) | Err(_) => {
                    // A torn or forged commit: never expose it, fall back
                    // to the previous generation. Deleting it is
                    // best-effort cleanup.
                    skipped += 1;
                    let _ = io.remove(name);
                }
            }
        }
        if skipped > 0 {
            mob_obs::metric!("durable.recoveries").add(skipped);
        }
        if let Some(img) = &found {
            if img.chunks_corrupt > 0 {
                mob_obs::metric!("store.pages_corrupt").add(img.chunks_corrupt as u64);
            }
        }
        // Shadow files from interrupted commits are dead weight — and so
        // are snapshots and deltas the recovered base supersedes: a
        // compaction that crashed mid-prune leaves them behind, and no
        // later commit is obliged to come back for them. Sweep them all
        // here so every open heals the directory (`mob-check chain`
        // would otherwise flag the shadowed files forever). The
        // previous-generation snapshot (`g + 1 == base`) is the
        // recovery fallback and is deliberately kept.
        let base = found.as_ref().map_or(0, |img| img.generation);
        for name in &names {
            let dead = if name.starts_with("tmp-") {
                true
            } else if let Some(g) = parse_snapshot_name(name) {
                g + 1 < base
            } else if let Some(g) = parse_delta_name(name) {
                g <= base
            } else {
                false
            };
            if dead {
                let _ = io.remove(name);
            }
        }
        let generation = base;
        Ok((
            DurableStore {
                io,
                chunk_size,
                generation,
                state: StoreState::Empty,
                deltas_since_snapshot: 0,
                delta_bytes_since_snapshot: 0,
            },
            found,
        ))
    }

    /// Classify a recovered image: a [`StoreFile`] payload becomes a
    /// [`Generation`] (with damaged blobs quarantined in degraded mode),
    /// anything else is raw bytes.
    fn state_from_image(img: DecodedImage, degraded: bool) -> DecodeResult<StoreState> {
        if !img.payload.starts_with(crate::store_file::MAGIC) {
            // Degraded recovery zero-fills damaged chunks; if the damage
            // covers the payload magic we cannot tell a raw payload from
            // a store file whose identity got shot off — refuse loudly
            // rather than misclassify.
            if img.damaged.iter().any(|&(from, _)| from < 8) {
                return Err(DecodeError::BadStructure {
                    what: "durable payload",
                    detail: "payload magic bytes are damaged".to_string(),
                });
            }
            return Ok(StoreState::Raw(img.payload));
        }
        if degraded {
            let (file, quarantined) =
                StoreFile::from_bytes_with_damage(&img.payload, &img.damaged)?;
            Ok(StoreState::Gen(Arc::new(Generation::from_store_file(
                img.generation,
                file,
                quarantined,
            ))))
        } else {
            let file = StoreFile::from_bytes(&img.payload)?;
            Ok(StoreState::Gen(Arc::new(Generation::from_store_file(
                img.generation,
                file,
                Vec::new(),
            ))))
        }
    }

    /// Replay the contiguous delta chain above the current generation
    /// (see [`ReplayPolicy::Deltas`]). Stale deltas at or below the
    /// base are removed silently; the first invalid delta and everything
    /// above it are removed and counted in `durable.recoveries`.
    fn replay_deltas(&mut self) -> DecodeResult<()> {
        let names = self.io.list()?;
        let mut deltas: Vec<(u64, &String)> = names
            .iter()
            .filter_map(|n| parse_delta_name(n).map(|g| (g, n)))
            .collect();
        deltas.sort_by_key(|&(g, _)| g);
        let mut skipped = 0u64;
        let mut failed = false;
        let mut expect = self.generation.checked_add(1);
        for (g, name) in deltas {
            if g <= self.generation {
                // Superseded by the snapshot we recovered from.
                let _ = self.io.remove(name);
                continue;
            }
            let ok = !failed && Some(g) == expect && self.replay_one_delta(g, name);
            if ok {
                expect = g.checked_add(1);
            } else {
                failed = true;
                skipped += 1;
                let _ = self.io.remove(name);
            }
        }
        if skipped > 0 {
            mob_obs::metric!("durable.recoveries").add(skipped);
        }
        Ok(())
    }

    /// Try to apply one delta file on top of the current state. `false`
    /// (damaged, forged, or inapplicable) means the caller discards it.
    fn replay_one_delta(&mut self, g: u64, name: &str) -> bool {
        match self.decode_and_apply_delta(g, name) {
            Ok((next, bytes)) => {
                self.state = StoreState::Gen(next);
                self.generation = g;
                self.deltas_since_snapshot += 1;
                self.delta_bytes_since_snapshot += bytes;
                mob_obs::metric!("durable.delta_replays").add(1);
                true
            }
            Err(_) => false,
        }
    }

    fn decode_and_apply_delta(&self, g: u64, name: &str) -> DecodeResult<(Arc<Generation>, u64)> {
        let bytes = self.io.read_file(name)?;
        // Deltas are always decoded strictly: a damaged delta is
        // discarded, never partially applied.
        let img = decode_image_strict(&bytes)?;
        if img.generation != g {
            return Err(DecodeError::BadStructure {
                what: "delta file",
                detail: format!("file {name:?} claims generation {}", img.generation),
            });
        }
        let payload = decode_delta_payload(&img.payload)?;
        if payload.base_generation.checked_add(1) != Some(g) {
            return Err(DecodeError::BadStructure {
                what: "delta file",
                detail: format!(
                    "delta for generation {g} applies on top of {}",
                    payload.base_generation
                ),
            });
        }
        let base: Arc<Generation> = match &self.state {
            StoreState::Empty => Arc::new(Generation::empty(self.generation)),
            StoreState::Gen(gen) => Arc::clone(gen),
            StoreState::Raw(_) => {
                return Err(DecodeError::BadStructure {
                    what: "delta file",
                    detail: "cannot apply a delta over a raw (non store-file) payload".into(),
                })
            }
        };
        Ok((
            Arc::new(base.apply_appends(g, &payload.appends)?),
            bytes.len() as u64,
        ))
    }

    /// Begin a transaction (see [`Txn`]).
    pub fn begin(&mut self) -> Txn<'_, I> {
        Txn {
            store: self,
            image: None,
            appends: Vec::new(),
        }
    }

    /// Full-image commit: shadow write → fsync → atomic rename, then
    /// prune snapshots older than the previous generation and every
    /// delta the new snapshot supersedes.
    fn commit_full(&mut self, staged: Staged) -> DecodeResult<u64> {
        let generation = self.generation + 1;
        let (payload, state) = match staged {
            Staged::Payload(bytes) => {
                let state = StoreState::Raw(bytes.clone());
                (bytes, state)
            }
            Staged::File(bytes, file) => {
                let state = StoreState::Gen(Arc::new(Generation::from_store_file(
                    generation,
                    file,
                    Vec::new(),
                )));
                (bytes, state)
            }
        };
        let image = encode_image(generation, self.chunk_size, &payload);
        let tmp = tmp_name(generation);
        let fin = snapshot_name(generation);
        self.io.write_file(&tmp, &image)?;
        self.io.sync(&tmp)?;
        self.io.rename(&tmp, &fin)?;
        self.generation = generation;
        self.state = state;
        self.deltas_since_snapshot = 0;
        self.delta_bytes_since_snapshot = 0;
        mob_obs::metric!("durable.commits").add(1);
        mob_obs::metric!("durable.bytes_committed").add(image.len() as u64);
        // Keep the current and the previous generation; everything older
        // is garbage, as is every delta folded into this snapshot (and
        // every prune happens *after* the new snapshot is durable).
        // Pruning is best-effort: the commit above already landed, so a
        // failed remove must not turn a durable success into an error —
        // the shadowed file is swept by the next open or the next
        // commit's prune, and the failure is counted.
        let mut prune_failures = 0u64;
        let names = match self.io.list() {
            Ok(names) => names,
            Err(_) => {
                prune_failures += 1;
                Vec::new()
            }
        };
        for name in names {
            let dead = match (parse_snapshot_name(&name), parse_delta_name(&name)) {
                (Some(g), _) => g + 1 < generation,
                (_, Some(g)) => g <= generation,
                _ => false,
            };
            if dead && self.io.remove(&name).is_err() {
                prune_failures += 1;
            }
        }
        if prune_failures > 0 {
            mob_obs::metric!("durable.prune_failures").add(prune_failures);
        }
        Ok(generation)
    }

    /// Delta commit: validate the appends against the current generation
    /// in memory, then append + fsync one `delta-<g>.mob` file. I/O cost
    /// is proportional to the appended units, not the store.
    fn commit_delta(&mut self, appends: &[(String, Vec<UPointRecord>)]) -> DecodeResult<u64> {
        let base: Arc<Generation> = match &self.state {
            StoreState::Empty => Arc::new(Generation::empty(self.generation)),
            StoreState::Gen(gen) => Arc::clone(gen),
            StoreState::Raw(_) => {
                return Err(DecodeError::BadStructure {
                    what: "durable transaction",
                    detail: "cannot append to a raw (non store-file) payload".into(),
                })
            }
        };
        let generation = self.generation + 1;
        // Apply in memory first: a bad batch fails before any I/O.
        let next = Arc::new(base.apply_appends(generation, appends)?);
        let payload = encode_delta_payload(self.generation, appends)?;
        let image = encode_image(generation, self.chunk_size, &payload);
        let name = delta_name(generation);
        if self.io.exists(&name) {
            // Garbage from a previous writer that died before this
            // generation became durable.
            self.io.remove(&name)?;
        }
        self.io.append_file(&name, &image)?;
        self.io.sync(&name)?;
        self.generation = generation;
        self.state = StoreState::Gen(next);
        self.deltas_since_snapshot += 1;
        self.delta_bytes_since_snapshot += image.len() as u64;
        mob_obs::metric!("durable.commits").add(1);
        mob_obs::metric!("durable.delta_commits").add(1);
        mob_obs::metric!("durable.bytes_committed").add(image.len() as u64);
        Ok(generation)
    }

    /// Fold the delta chain into a fresh full snapshot: rewrite every
    /// live root of the current generation into a new store file and
    /// commit it through the full-image protocol. Superseded blobs and
    /// delta files are dropped; the new generation has no stale roots.
    ///
    /// Requires a current generation ([`StoreState::Gen`]); an empty or
    /// raw-payload store has nothing to compact.
    pub fn compact(&mut self) -> DecodeResult<u64> {
        let gen_obj = match &self.state {
            StoreState::Gen(g) => Arc::clone(g),
            StoreState::Empty => {
                return Err(DecodeError::BadStructure {
                    what: "durable compact",
                    detail: "no committed generation to compact".into(),
                })
            }
            StoreState::Raw(_) => {
                return Err(DecodeError::BadStructure {
                    what: "durable compact",
                    detail: "raw payload stores cannot be compacted".into(),
                })
            }
        };
        let file = gen_obj.rebuild_store_file()?;
        let bytes = file.to_bytes()?;
        let committed = self.commit_full(Staged::File(bytes, file))?;
        mob_obs::metric!("durable.compactions").add(1);
        Ok(committed)
    }

    /// Pin the current committed generation for reading. The returned
    /// [`Generation`] is immutable: it keeps serving byte-identical
    /// results while later commits and compactions advance the store.
    ///
    /// An empty store pins an empty generation; a raw-payload store
    /// (bytes committed through [`Txn::put_payload`]) has no generation
    /// to pin and errors.
    pub fn snapshot(&self) -> DecodeResult<Arc<Generation>> {
        match &self.state {
            StoreState::Empty => Ok(Arc::new(Generation::empty(self.generation))),
            StoreState::Gen(g) => Ok(Arc::clone(g)),
            StoreState::Raw(_) => Err(DecodeError::BadStructure {
                what: "durable snapshot",
                detail: "store holds a raw payload, not a store-file generation".into(),
            }),
        }
    }

    /// The committed payload bytes when the store holds raw (non
    /// store-file) bytes; `None` for empty stores and generations.
    #[must_use]
    pub fn raw_payload(&self) -> Option<&[u8]> {
        match &self.state {
            StoreState::Raw(b) => Some(b),
            _ => None,
        }
    }

    /// Commit a payload as the next generation.
    #[deprecated(note = "use store.begin(), Txn::put_payload and Txn::commit")]
    pub fn commit(&mut self, payload: &[u8]) -> DecodeResult<u64> {
        self.commit_full(Staged::Payload(payload.to_vec()))
    }

    /// Commit a whole [`StoreFile`] (its serialized bytes) as the next
    /// generation.
    #[deprecated(note = "use store.begin(), Txn::put_store_file and Txn::commit")]
    pub fn commit_store_file(&mut self, file: &StoreFile) -> DecodeResult<u64> {
        let bytes = file.to_bytes()?;
        let copy = StoreFile::from_parts(file.store().fork(), file.entries().to_vec());
        self.commit_full(Staged::File(bytes, copy))
    }

    /// Open the latest committed [`StoreFile`] strictly (any damage
    /// anywhere is an error). `Ok(None)` for a fresh directory. Pre-WAL
    /// API: delta files are ignored.
    #[deprecated(note = "use DurableStore::options().open(io) and snapshot()")]
    pub fn open_store_file(
        io: I,
        chunk_size: usize,
    ) -> DecodeResult<(DurableStore<I>, Option<StoreFile>)> {
        let (mut store, img) = DurableStore::open_inner(io, chunk_size, false)?;
        let file = match img {
            Some(img) => Some(StoreFile::from_bytes(&img.payload)?),
            None => None,
        };
        store.state = match &file {
            Some(f) => StoreState::Gen(Arc::new(Generation::from_store_file(
                store.generation,
                StoreFile::from_parts(f.store().fork(), f.entries().to_vec()),
                Vec::new(),
            ))),
            None => StoreState::Empty,
        };
        Ok((store, file))
    }

    /// Open the latest committed [`StoreFile`] in degraded mode: blobs
    /// whose bytes were damaged at rest are quarantined (reads surface
    /// [`DecodeError::Quarantined`]) and their indices returned, while
    /// the catalog and every healthy blob stay fully readable. Damage in
    /// structural bytes still fails the open. Pre-WAL API: delta files
    /// are ignored.
    #[deprecated(note = "use DurableStore::options().degraded(true).open(io) and snapshot()")]
    #[allow(deprecated)]
    pub fn open_store_file_degraded(io: I, chunk_size: usize) -> DecodeResult<DegradedOpen<I>> {
        let (mut store, img) = DurableStore::open_inner(io, chunk_size, true)?;
        let file = match img {
            Some(img) => Some(StoreFile::from_bytes_with_damage(
                &img.payload,
                &img.damaged,
            )?),
            None => None,
        };
        store.state = match &file {
            Some((f, quarantined)) => StoreState::Gen(Arc::new(Generation::from_store_file(
                store.generation,
                StoreFile::from_parts(f.store().fork(), f.entries().to_vec()),
                quarantined.clone(),
            ))),
            None => StoreState::Empty,
        };
        Ok((store, file))
    }

    /// The last committed generation (0 if none).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Delta commits sitting on top of the newest full snapshot (both
    /// freshly committed and replayed on open). Compaction resets this
    /// to zero — it is the supervisor's primary trigger.
    pub fn pending_deltas(&self) -> u64 {
        self.deltas_since_snapshot
    }

    /// Encoded bytes of the pending delta chain (the supervisor's
    /// secondary, size-based trigger).
    pub fn pending_delta_bytes(&self) -> u64 {
        self.delta_bytes_since_snapshot
    }

    /// The chunk size used for payload framing on future commits.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Borrow the underlying I/O layer.
    pub fn io(&self) -> &I {
        &self.io
    }

    /// Consume the store, returning the I/O layer (used by the fault
    /// campaign to extract a crashed [`crate::io::FaultyIo`] and build
    /// its survivor state).
    pub fn into_io(self) -> I {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;
    use crate::store_file::RootRecord;
    use mob_base::t;
    use mob_core::MovingPoint;
    use mob_spatial::pt;

    fn open_mem(dir: &MemIo) -> DurableStore<MemIo> {
        DurableStore::options()
            .chunk_size(32)
            .open(dir.clone())
            .unwrap()
    }

    #[test]
    fn snapshot_names_roundtrip_and_reject_noise() {
        assert_eq!(parse_snapshot_name(&snapshot_name(0)), Some(0));
        assert_eq!(
            parse_snapshot_name(&snapshot_name(0xdead_beef)),
            Some(0xdead_beef)
        );
        assert_eq!(
            parse_snapshot_name(&snapshot_name(u64::MAX)),
            Some(u64::MAX)
        );
        for bad in [
            "snap-.mob",
            "snap-123.mob",
            "snap-00000000000000zz.mob",
            "tmp-0000000000000001.mob",
            "snap-0000000000000001.tmp",
            "delta-0000000000000001.mob",
            "other",
        ] {
            assert_eq!(parse_snapshot_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn image_roundtrip_across_chunk_boundaries() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100] {
            let payload: Vec<u8> = (0..len)
                .map(|i| u8::try_from(i % 251).unwrap_or(0))
                .collect();
            let image = encode_image(7, 16, &payload);
            let img = decode_image(&image, false).unwrap();
            assert_eq!(img.generation, 7);
            assert_eq!(img.chunk_size, 16);
            assert_eq!(img.payload, payload);
            assert!(img.damaged.is_empty());
            assert_eq!(img.chunks_total, len.div_ceil(16));
        }
    }

    #[test]
    fn strict_decode_rejects_any_bit_flip() {
        let payload: Vec<u8> = (0..100u8).collect();
        let image = encode_image(3, 16, &payload);
        for pos in 0..image.len() {
            let mut bad = image.clone();
            bad[pos] ^= 1;
            assert!(
                decode_image(&bad, false).is_err(),
                "flip at byte {pos} escaped the strict decoder"
            );
        }
    }

    #[test]
    fn degraded_decode_zero_fills_and_reports_damaged_chunks() {
        let payload: Vec<u8> = (0..100u8).collect();
        let image = encode_image(3, 16, &payload);
        // Flip one byte inside chunk 2's frame. Frames: superblock at
        // 0..12+32, then chunks of 12+16 bytes each.
        let chunk2_frame = (12 + 32) + 2 * (12 + 16);
        let mut bad = image.clone();
        bad[chunk2_frame + 12 + 3] ^= 0x40;
        let img = decode_image(&bad, true).unwrap();
        assert_eq!(img.chunks_corrupt, 1);
        assert_eq!(img.damaged, vec![(32, 48)]);
        // Healthy bytes intact, damaged chunk zero-filled.
        assert_eq!(&img.payload[..32], &payload[..32]);
        assert_eq!(&img.payload[32..48], &[0u8; 16]);
        assert_eq!(&img.payload[48..], &payload[48..]);
        // Superblock damage is fatal even in degraded mode.
        let mut sbbad = image.clone();
        sbbad[12 + 3] ^= 1;
        assert!(decode_image(&sbbad, true).is_err());
    }

    #[test]
    fn commit_open_roundtrip_and_generation_sequence() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        assert_eq!(store.generation(), 0);
        for (i, payload) in [&b"alpha"[..], b"beta", b"gamma"].iter().enumerate() {
            let mut txn = store.begin();
            txn.put_payload(payload);
            assert_eq!(txn.commit().unwrap(), i as u64 + 1);
        }
        // Prune keeps exactly the current and previous generation.
        let names = dir.list().unwrap();
        assert_eq!(
            names,
            vec![snapshot_name(2), snapshot_name(3)],
            "prune keeps current + previous"
        );
        let reopened = open_mem(&dir);
        assert_eq!(reopened.generation(), 3);
        assert_eq!(reopened.raw_payload(), Some(&b"gamma"[..]));
        assert!(
            reopened.snapshot().is_err(),
            "raw payloads pin no generation"
        );
    }

    #[test]
    fn open_fresh_directory_yields_empty_generation() {
        let store = DurableStore::options().open(MemIo::new()).unwrap();
        assert_eq!(store.generation(), 0);
        assert!(store.raw_payload().is_none());
        let snap = store.snapshot().unwrap();
        assert_eq!(snap.number(), 0);
        assert!(snap.entries().is_empty());
    }

    #[test]
    fn open_skips_a_torn_newest_snapshot() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        let mut txn = store.begin();
        txn.put_payload(b"good old state");
        txn.commit().unwrap();
        // Forge a torn generation-2 snapshot: valid name, damaged bytes.
        let mut image = encode_image(2, 32, b"half-written new state");
        let mid = image.len() / 2;
        image.truncate(mid);
        dir.write_file(&snapshot_name(2), &image).unwrap();
        // And a stale shadow file.
        dir.write_file(&tmp_name(3), b"junk").unwrap();
        let reopened = open_mem(&dir);
        assert_eq!(reopened.raw_payload(), Some(&b"good old state"[..]));
        assert_eq!(reopened.generation(), 1);
        // The torn snapshot and the shadow file were cleaned up.
        assert_eq!(dir.list().unwrap(), vec![snapshot_name(1)]);
    }

    #[test]
    fn open_rejects_a_snapshot_whose_name_lies_about_its_generation() {
        let dir = MemIo::new();
        // A fully valid generation-1 image filed under the name of
        // generation 5: the mismatch must not be trusted.
        let image = encode_image(1, 32, b"impostor");
        dir.write_file(&snapshot_name(5), &image).unwrap();
        let store = open_mem(&dir);
        assert_eq!(store.generation(), 0);
        assert!(store.raw_payload().is_none());
    }

    #[test]
    fn zero_or_absurd_chunk_sizes_are_errors() {
        assert!(DurableStore::options()
            .chunk_size(0)
            .open(MemIo::new())
            .is_err());
        assert!(DurableStore::options()
            .chunk_size(usize::MAX)
            .open(MemIo::new())
            .is_err());
        // And arriving from a corrupt superblock: patch chunk_size to 0
        // and re-seal the superblock frame so only the field is wrong.
        let image = encode_image(1, 32, b"payload");
        let mut sb = image[12..12 + 32].to_vec();
        sb[20..24].copy_from_slice(&0u32.to_le_bytes());
        let mut forged = Vec::new();
        seal_frame(&mut forged, &sb);
        forged.extend_from_slice(&image[12 + 32..]);
        assert!(matches!(
            decode_image(&forged, false),
            Err(DecodeError::BadStructure { .. })
        ));
    }

    #[test]
    fn legacy_constructors_still_work() {
        #![allow(deprecated)]
        let dir = MemIo::new();
        let mut store = DurableStore::create(dir.clone(), 32).unwrap();
        assert_eq!(store.commit(b"alpha").unwrap(), 1);
        let (reopened, payload) = DurableStore::open(dir.clone(), 32).unwrap();
        assert_eq!(reopened.generation(), 1);
        assert_eq!(payload.as_deref(), Some(&b"alpha"[..]));
        assert!(DurableStore::create(dir, 32).is_err());
    }

    // ---- delta commit / replay / compaction --------------------------

    fn units_for(samples: &[(f64, f64)]) -> Vec<UPoint> {
        let s: Vec<_> = samples.iter().map(|&(ti, x)| (t(ti), pt(x, 0.0))).collect();
        MovingPoint::from_samples(&s).units().to_vec()
    }

    #[test]
    fn delta_commits_replay_on_open() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        assert_eq!(txn.commit().unwrap(), 1);
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(1.0, 1.0), (2.0, 5.0)]));
        txn.append_units("bus", &units_for(&[(0.0, 9.0), (2.0, 7.0)]));
        assert_eq!(txn.commit().unwrap(), 2);
        // On-disk layout: no snapshots yet, two delta files.
        assert_eq!(dir.list().unwrap(), vec![delta_name(1), delta_name(2)],);
        let live = store.snapshot().unwrap();
        // Reopen replays to the same state.
        let reopened = open_mem(&dir);
        assert_eq!(reopened.generation(), 2);
        let replayed = reopened.snapshot().unwrap();
        assert_eq!(replayed.number(), 2);
        assert_eq!(replayed.entries().len(), live.entries().len());
        for ((ln, lr), (rn, rr)) in live.entries().iter().zip(replayed.entries()) {
            assert_eq!(ln, rn);
            match (lr, rr) {
                (RootRecord::MPoint(a), RootRecord::MPoint(b)) => {
                    assert_eq!(
                        crate::dbarray::load_array::<UPointRecord>(&a.units, live.store()).unwrap(),
                        crate::dbarray::load_array::<UPointRecord>(&b.units, replayed.store())
                            .unwrap()
                    );
                }
                other => panic!("unexpected roots {other:?}"),
            }
        }
        assert!(replayed.is_stale("car") && replayed.is_stale("bus"));
    }

    #[test]
    fn torn_delta_recovers_to_the_previous_generation() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        txn.commit().unwrap();
        // Tear the second delta by hand.
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(1.0, 1.0), (2.0, 2.0)]));
        txn.commit().unwrap();
        let good = dir.read_file(&delta_name(2)).unwrap();
        dir.write_file(&delta_name(2), &good[..good.len() / 2])
            .unwrap();
        let reopened = open_mem(&dir);
        assert_eq!(reopened.generation(), 1, "torn delta rolled back");
        assert!(!dir.exists(&delta_name(2)), "torn delta removed");
        // A gap in the chain also ends replay: forge delta 5.
        dir.write_file(&delta_name(5), &good).unwrap();
        let reopened = open_mem(&dir);
        assert_eq!(reopened.generation(), 1);
        assert!(!dir.exists(&delta_name(5)));
    }

    #[test]
    fn snapshot_pins_are_immutable_across_commits() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        txn.commit().unwrap();
        let pinned = store.snapshot().unwrap();
        let before = crate::dbarray::load_array::<UPointRecord>(
            match pinned.get("car").unwrap() {
                RootRecord::MPoint(m) => &m.units,
                other => panic!("{other:?}"),
            },
            pinned.store(),
        )
        .unwrap();
        // Writer keeps committing and compacting.
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(1.0, 1.0), (5.0, 9.0)]));
        txn.commit().unwrap();
        store.compact().unwrap();
        // The pinned generation still reads the original bytes.
        assert_eq!(pinned.number(), 1);
        let after = crate::dbarray::load_array::<UPointRecord>(
            match pinned.get("car").unwrap() {
                RootRecord::MPoint(m) => &m.units,
                other => panic!("{other:?}"),
            },
            pinned.store(),
        )
        .unwrap();
        assert_eq!(before, after);
        // While the store's current state moved on.
        assert_eq!(store.snapshot().unwrap().number(), 3);
    }

    #[test]
    fn compact_folds_deltas_into_a_snapshot() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        for k in 0..4 {
            let t0 = f64::from(k);
            let mut txn = store.begin();
            txn.append_units("car", &units_for(&[(t0, t0), (t0 + 1.0, t0 + 1.0)]));
            txn.commit().unwrap();
        }
        assert_eq!(store.generation(), 4);
        let before = store.snapshot().unwrap();
        assert_eq!(store.compact().unwrap(), 5);
        // All deltas folded; one snapshot on disk.
        assert_eq!(dir.list().unwrap(), vec![snapshot_name(5)]);
        let after = store.snapshot().unwrap();
        assert!(after.stale().is_empty(), "compaction clears staleness");
        // Reopen agrees, without any replay.
        let reopened = open_mem(&dir);
        assert_eq!(reopened.generation(), 5);
        let m_before = match before.get("car").unwrap() {
            RootRecord::MPoint(m) => {
                crate::dbarray::load_array::<UPointRecord>(&m.units, before.store()).unwrap()
            }
            other => panic!("{other:?}"),
        };
        for g in [&after, &reopened.snapshot().unwrap()] {
            let m = match g.get("car").unwrap() {
                RootRecord::MPoint(m) => {
                    crate::dbarray::load_array::<UPointRecord>(&m.units, g.store()).unwrap()
                }
                other => panic!("{other:?}"),
            };
            assert_eq!(m, m_before);
        }
    }

    #[test]
    fn snapshot_only_replay_discards_the_delta_chain() {
        let dir = MemIo::new();
        let mut store = open_mem(&dir);
        let mut txn = store.begin();
        txn.put_store_file(&StoreFile::new()).unwrap();
        txn.commit().unwrap();
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        txn.commit().unwrap();
        let reopened = DurableStore::options()
            .chunk_size(32)
            .replay(ReplayPolicy::SnapshotOnly)
            .open(dir.clone())
            .unwrap();
        assert_eq!(reopened.generation(), 1, "deltas ignored");
        assert!(reopened.snapshot().unwrap().get("car").is_none());
        assert!(!dir.exists(&delta_name(2)), "deltas deleted");
    }

    #[test]
    fn transactions_reject_empty_and_mixed_stages() {
        let mut store = DurableStore::options().open(MemIo::new()).unwrap();
        assert!(store.begin().commit().is_err(), "empty transaction");
        let mut txn = store.begin();
        txn.put_payload(b"image");
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        assert!(txn.commit().is_err(), "mixed transaction");
        // Appending to a raw-payload store is rejected.
        let mut txn = store.begin();
        txn.put_payload(b"raw");
        txn.commit().unwrap();
        let mut txn = store.begin();
        txn.append_units("car", &units_for(&[(0.0, 0.0), (1.0, 1.0)]));
        assert!(txn.commit().is_err());
        // As is compacting it.
        assert!(store.compact().is_err());
    }
}
