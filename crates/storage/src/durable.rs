//! Crash-consistent durable store files.
//!
//! A [`DurableStore`] keeps a sequence of *immutable, generation-numbered
//! snapshot files* inside one [`StoreIo`] directory:
//!
//! ```text
//! snap-0000000000000007.mob      ← previous committed generation
//! snap-0000000000000008.mob      ← current committed generation
//! tmp-0000000000000009.mob       ← a commit in flight (ignored by open)
//! ```
//!
//! # Commit protocol (shadow write → fsync → atomic rename)
//!
//! ```text
//!   commit(payload):
//!     1. encode payload into a checksummed image  (pure, in memory)
//!     2. write_file("tmp-<g>")                    ── crash here: old state
//!     3. sync("tmp-<g>")                          ── crash here: old state
//!     4. rename("tmp-<g>", "snap-<g>") + dir sync ── crash here: old OR new
//!     5. prune snapshots older than <g>-1         ── crash here: new state
//! ```
//!
//! A snapshot file is **never modified after it gains its final name**,
//! so the previously committed generation stays byte-identical on disk
//! while the next one is being shadow-written. Combined with the framing
//! below, recovery ([`DurableStore::open`]) always yields exactly the
//! *old* or the *new* committed payload — never a hybrid:
//!
//! * a crash before the rename leaves only a `tmp-` file, which `open`
//!   ignores and deletes;
//! * a crash during/after the rename leaves a `snap-` file that is
//!   either fully valid (new state) or fails its checksums, in which
//!   case `open` skips it, counts a `durable.recoveries` event and falls
//!   back to the previous generation (old state).
//!
//! # Image framing
//!
//! Every byte of a snapshot file is covered by a checksum *before* any
//! structural decoder touches it:
//!
//! ```text
//! frame 0:   [crc u64 | len u32 | superblock (32 bytes)]
//! frame 1…n: [crc u64 | len u32 | payload chunk (≤ chunk_size bytes)]
//! ```
//!
//! The superblock records magic, format version, generation, chunk size
//! and exact payload length, so every chunk frame's position and size is
//! *computable* — a damaged chunk cannot desynchronize the reader. The
//! strict decoder ([`DurableStore::open`]) rejects a file on the first
//! bad frame; the degraded decoder ([`DurableStore::open_degraded`])
//! requires only the superblock to be intact and reports the byte ranges
//! of damaged chunks (`store.pages_corrupt`), letting the caller
//! quarantine exactly the affected blobs via
//! [`StoreFile::from_bytes_with_damage`](crate::store_file::StoreFile::from_bytes_with_damage)
//! while healthy data keeps serving.

use crate::io::StoreIo;
use crate::page::{open_frame, seal_frame, validate_page_size, FRAME_OVERHEAD};
use crate::store_file::StoreFile;
use mob_base::{DecodeError, DecodeResult};

/// Magic bytes identifying a durable snapshot image (version 1).
pub const DURABLE_MAGIC: &[u8; 8] = b"MOBDUR01";

/// Durable image format version written into every superblock.
pub const DURABLE_VERSION: u32 = 1;

/// Default chunk size for payload framing (one checksum per this many
/// payload bytes).
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// Serialized superblock length: magic(8) + version(4) + generation(8) +
/// chunk_size(4) + payload_len(8).
const SUPERBLOCK_LEN: usize = 32;

/// Final name of a committed snapshot: zero-padded hex keeps
/// lexicographic and numeric order identical.
fn snapshot_name(generation: u64) -> String {
    format!("snap-{generation:016x}.mob")
}

/// Shadow-write name for a commit in flight.
fn tmp_name(generation: u64) -> String {
    format!("tmp-{generation:016x}.mob")
}

/// Parse a snapshot file name back to its generation (`None` for
/// anything that is not exactly a snapshot name).
fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".mob")?;
    if hex.len() != 16 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// A decoded snapshot image, possibly with damaged (zero-filled) chunk
/// ranges when decoded in degraded mode.
#[derive(Debug, Clone)]
pub struct DecodedImage {
    /// Generation recorded in the (checksum-verified) superblock.
    pub generation: u64,
    /// Chunk size the payload was framed with.
    pub chunk_size: usize,
    /// The payload bytes. Damaged chunks are zero-filled; their ranges
    /// are listed in `damaged`.
    pub payload: Vec<u8>,
    /// Half-open byte ranges of `payload` whose chunk frames failed
    /// verification (empty after a strict decode).
    pub damaged: Vec<(usize, usize)>,
    /// Number of chunk frames that failed verification.
    pub chunks_corrupt: usize,
    /// Total number of chunk frames in the image.
    pub chunks_total: usize,
}

struct Superblock {
    generation: u64,
    chunk_size: usize,
    payload_len: usize,
}

fn get_u32_at(b: &[u8], at: usize) -> u32 {
    // Total zip-copy: missing bytes read as zero (callers have already
    // length-checked the superblock, but nothing here can panic).
    let mut v = [0u8; 4];
    for (d, s) in v.iter_mut().zip(b.iter().skip(at)) {
        *d = *s;
    }
    u32::from_le_bytes(v)
}

fn get_u64_at(b: &[u8], at: usize) -> u64 {
    let mut v = [0u8; 8];
    for (d, s) in v.iter_mut().zip(b.iter().skip(at)) {
        *d = *s;
    }
    u64::from_le_bytes(v)
}

fn parse_superblock(sb: &[u8]) -> DecodeResult<Superblock> {
    if sb.len() != SUPERBLOCK_LEN {
        return Err(DecodeError::CountMismatch {
            what: "durable superblock",
            expected: SUPERBLOCK_LEN,
            found: sb.len(),
        });
    }
    let magic = sb.get(..8).unwrap_or_default();
    if magic != DURABLE_MAGIC {
        return Err(DecodeError::BadStructure {
            what: "durable magic",
            detail: format!("expected {DURABLE_MAGIC:?}, found {magic:?}"),
        });
    }
    let version = get_u32_at(sb, 8);
    if version != DURABLE_VERSION {
        return Err(DecodeError::BadTag {
            what: "durable format version",
            tag: version,
        });
    }
    let generation = get_u64_at(sb, 12);
    let chunk_size = validate_page_size(crate::checked::idx_usize(get_u32_at(sb, 20)))?;
    let payload_len =
        usize::try_from(get_u64_at(sb, 24)).map_err(|_| DecodeError::BadStructure {
            what: "durable payload length",
            detail: "payload length exceeds the address space".to_string(),
        })?;
    Ok(Superblock {
        generation,
        chunk_size,
        payload_len,
    })
}

/// Encode a payload into a snapshot image (superblock frame + chunk
/// frames, every byte checksummed).
fn encode_image(generation: u64, chunk_size: usize, payload: &[u8]) -> Vec<u8> {
    let chunk_size = chunk_size.max(1);
    let mut sb = Vec::with_capacity(SUPERBLOCK_LEN);
    sb.extend_from_slice(DURABLE_MAGIC);
    sb.extend_from_slice(&DURABLE_VERSION.to_le_bytes());
    sb.extend_from_slice(&generation.to_le_bytes());
    sb.extend_from_slice(&crate::checked::count_u32(chunk_size).to_le_bytes());
    sb.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let n_chunks = payload.len().div_ceil(chunk_size);
    let mut out = Vec::with_capacity(
        FRAME_OVERHEAD + SUPERBLOCK_LEN + payload.len() + n_chunks * FRAME_OVERHEAD,
    );
    seal_frame(&mut out, &sb);
    for chunk in payload.chunks(chunk_size) {
        seal_frame(&mut out, chunk);
    }
    out
}

/// Decode a snapshot image. In strict mode (`tolerate_chunk_damage =
/// false`) any damage anywhere fails the decode; in degraded mode the
/// superblock must verify but damaged chunk frames are zero-filled and
/// reported in [`DecodedImage::damaged`].
fn decode_image(bytes: &[u8], tolerate_chunk_damage: bool) -> DecodeResult<DecodedImage> {
    let (sb_payload, mut rest) = open_frame(bytes)?;
    let sb = parse_superblock(sb_payload)?;
    let n_chunks = sb.payload_len.div_ceil(sb.chunk_size);
    let mut payload = vec![0u8; sb.payload_len];
    let mut damaged = Vec::new();
    let mut off = 0usize;
    for _ in 0..n_chunks {
        let clen = sb.chunk_size.min(sb.payload_len - off);
        let flen = FRAME_OVERHEAD + clen;
        let mut ok = false;
        if let Some(frame) = rest.get(..flen) {
            match open_frame(frame) {
                Ok((chunk, _)) if chunk.len() == clen => {
                    for (d, s) in payload.iter_mut().skip(off).zip(chunk) {
                        *d = *s;
                    }
                    ok = true;
                }
                Ok((chunk, _)) => {
                    if !tolerate_chunk_damage {
                        return Err(DecodeError::CountMismatch {
                            what: "durable chunk frame",
                            expected: clen,
                            found: chunk.len(),
                        });
                    }
                }
                Err(e) => {
                    if !tolerate_chunk_damage {
                        return Err(e);
                    }
                }
            }
        } else if !tolerate_chunk_damage {
            return Err(DecodeError::Truncated {
                what: "durable chunk frame",
                need: flen,
                have: rest.len(),
            });
        }
        if !ok {
            damaged.push((off, off + clen));
        }
        rest = rest.get(flen..).unwrap_or_default();
        off += clen;
    }
    if !rest.is_empty() && !tolerate_chunk_damage {
        return Err(DecodeError::BadStructure {
            what: "durable image",
            detail: format!("{} trailing bytes after the last chunk frame", rest.len()),
        });
    }
    let chunks_corrupt = damaged.len();
    Ok(DecodedImage {
        generation: sb.generation,
        chunk_size: sb.chunk_size,
        payload,
        damaged,
        chunks_corrupt,
        chunks_total: n_chunks,
    })
}

/// Strictly verify and decode a snapshot image: any damaged byte
/// anywhere (superblock or chunk frames) fails with a frame-level error
/// ([`DecodeError::ChecksumMismatch`] / [`DecodeError::Truncated`] /
/// [`DecodeError::BadStructure`]) — the structural payload decoder is
/// never reached with damaged bytes.
pub fn decode_image_strict(bytes: &[u8]) -> DecodeResult<DecodedImage> {
    decode_image(bytes, false)
}

/// Decode a snapshot image in degraded mode: the superblock must verify,
/// damaged chunk frames are zero-filled and reported in
/// [`DecodedImage::damaged`]. Used by `mob-check verify --deep` to
/// report per-chunk verdicts on a damaged file.
pub fn decode_image_degraded(bytes: &[u8]) -> DecodeResult<DecodedImage> {
    decode_image(bytes, true)
}

/// A crash-consistent store of committed payload snapshots over a
/// [`StoreIo`] directory (see the module docs for the protocol and the
/// recovery invariant).
pub struct DurableStore<I: StoreIo> {
    io: I,
    chunk_size: usize,
    generation: u64,
}

/// Result payload of [`DurableStore::open_store_file_degraded`]: the
/// store handle plus, when a committed snapshot exists, the decoded
/// [`StoreFile`] and the ids of the blobs quarantined by at-rest damage.
pub type DegradedOpen<I> = (DurableStore<I>, Option<(StoreFile, Vec<usize>)>);

impl<I: StoreIo> DurableStore<I> {
    /// Start a durable store in a **fresh** directory.
    ///
    /// Fails if the directory already contains snapshot files — reopen
    /// those with [`DurableStore::open`] instead. The first
    /// [`commit`](DurableStore::commit) writes generation 1.
    pub fn create(io: I, chunk_size: usize) -> DecodeResult<DurableStore<I>> {
        let chunk_size = validate_page_size(chunk_size)?;
        if io.list()?.iter().any(|n| parse_snapshot_name(n).is_some()) {
            return Err(DecodeError::Io(
                "durable create: directory already contains snapshots (use open)".to_string(),
            ));
        }
        Ok(DurableStore {
            io,
            chunk_size,
            generation: 0,
        })
    }

    /// Recover the latest fully-valid committed payload.
    ///
    /// Scans snapshot files in descending generation order and returns
    /// the payload of the first one whose every frame verifies. Newer
    /// snapshots that fail verification (a commit torn by a crash) are
    /// skipped, deleted, and counted in the `durable.recoveries` metric;
    /// stale `tmp-` shadow files are cleaned up. `Ok((store, None))`
    /// means no committed generation exists (a fresh directory).
    pub fn open(io: I, chunk_size: usize) -> DecodeResult<(DurableStore<I>, Option<Vec<u8>>)> {
        let (store, img) = DurableStore::open_inner(io, chunk_size, false)?;
        Ok((store, img.map(|i| i.payload)))
    }

    /// Recover the latest snapshot whose *superblock* is intact, even if
    /// some chunk frames are damaged (bit rot on a committed file).
    ///
    /// Damaged chunks are zero-filled and their payload byte ranges
    /// reported in the returned [`DecodedImage::damaged`], ready to feed
    /// into
    /// [`StoreFile::from_bytes_with_damage`](crate::store_file::StoreFile::from_bytes_with_damage).
    /// Corrupt chunk frames are counted in the `store.pages_corrupt`
    /// metric.
    pub fn open_degraded(
        io: I,
        chunk_size: usize,
    ) -> DecodeResult<(DurableStore<I>, Option<DecodedImage>)> {
        DurableStore::open_inner(io, chunk_size, true)
    }

    fn open_inner(
        io: I,
        chunk_size: usize,
        tolerate_chunk_damage: bool,
    ) -> DecodeResult<(DurableStore<I>, Option<DecodedImage>)> {
        let chunk_size = validate_page_size(chunk_size)?;
        let names = io.list()?;
        let mut snaps: Vec<(u64, &String)> = names
            .iter()
            .filter_map(|n| parse_snapshot_name(n).map(|g| (g, n)))
            .collect();
        snaps.sort_by_key(|&(gen, _)| std::cmp::Reverse(gen));
        let mut skipped = 0u64;
        let mut found: Option<DecodedImage> = None;
        for (gen, name) in &snaps {
            let decoded = io
                .read_file(name)
                .and_then(|bytes| decode_image(&bytes, tolerate_chunk_damage));
            match decoded {
                Ok(img) if img.generation == *gen => {
                    found = Some(img);
                    break;
                }
                Ok(_) | Err(_) => {
                    // A torn or forged commit: never expose it, fall back
                    // to the previous generation. Deleting it is
                    // best-effort cleanup.
                    skipped += 1;
                    let _ = io.remove(name);
                }
            }
        }
        if skipped > 0 {
            mob_obs::metric!("durable.recoveries").add(skipped);
        }
        if let Some(img) = &found {
            if img.chunks_corrupt > 0 {
                mob_obs::metric!("store.pages_corrupt").add(img.chunks_corrupt as u64);
            }
        }
        // Shadow files from interrupted commits are dead weight.
        for name in &names {
            if name.starts_with("tmp-") {
                let _ = io.remove(name);
            }
        }
        let generation = found.as_ref().map_or(0, |img| img.generation);
        Ok((
            DurableStore {
                io,
                chunk_size,
                generation,
            },
            found,
        ))
    }

    /// Commit a payload as the next generation (shadow write → fsync →
    /// atomic rename), then prune snapshots older than the previous
    /// generation. Returns the committed generation number.
    ///
    /// On an error return the commit may or may not have become durable
    /// (exactly like a real crashed process); reopening the directory
    /// yields either the previous or the new payload, never a mix.
    pub fn commit(&mut self, payload: &[u8]) -> DecodeResult<u64> {
        let generation = self.generation + 1;
        let image = encode_image(generation, self.chunk_size, payload);
        let tmp = tmp_name(generation);
        let fin = snapshot_name(generation);
        self.io.write_file(&tmp, &image)?;
        self.io.sync(&tmp)?;
        self.io.rename(&tmp, &fin)?;
        self.generation = generation;
        mob_obs::metric!("durable.commits").add(1);
        // Keep the current and the previous generation; everything older
        // is garbage (and every prune happens *after* the new snapshot
        // is durable).
        for name in self.io.list()? {
            if let Some(g) = parse_snapshot_name(&name) {
                if g + 1 < generation {
                    self.io.remove(&name)?;
                }
            }
        }
        Ok(generation)
    }

    /// Commit a whole [`StoreFile`] (its serialized bytes) as the next
    /// generation.
    pub fn commit_store_file(&mut self, file: &StoreFile) -> DecodeResult<u64> {
        let bytes = file.to_bytes()?;
        self.commit(&bytes)
    }

    /// Open the latest committed [`StoreFile`] strictly (any damage
    /// anywhere is an error). `Ok(None)` for a fresh directory.
    pub fn open_store_file(
        io: I,
        chunk_size: usize,
    ) -> DecodeResult<(DurableStore<I>, Option<StoreFile>)> {
        let (store, payload) = DurableStore::open(io, chunk_size)?;
        let file = match payload {
            Some(bytes) => Some(StoreFile::from_bytes(&bytes)?),
            None => None,
        };
        Ok((store, file))
    }

    /// Open the latest committed [`StoreFile`] in degraded mode
    /// (see [`DegradedOpen`]): blobs
    /// whose bytes were damaged at rest are quarantined (reads surface
    /// [`DecodeError::Quarantined`]) and their indices returned, while
    /// the catalog and every healthy blob stay fully readable. Damage in
    /// structural bytes still fails the open.
    pub fn open_store_file_degraded(io: I, chunk_size: usize) -> DecodeResult<DegradedOpen<I>> {
        let (store, img) = DurableStore::open_degraded(io, chunk_size)?;
        let file = match img {
            Some(img) => Some(StoreFile::from_bytes_with_damage(
                &img.payload,
                &img.damaged,
            )?),
            None => None,
        };
        Ok((store, file))
    }

    /// The last committed generation (0 if none).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The chunk size used for payload framing on future commits.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Borrow the underlying I/O layer.
    pub fn io(&self) -> &I {
        &self.io
    }

    /// Consume the store, returning the I/O layer (used by the fault
    /// campaign to extract a crashed [`crate::io::FaultyIo`] and build
    /// its survivor state).
    pub fn into_io(self) -> I {
        self.io
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    #[test]
    fn snapshot_names_roundtrip_and_reject_noise() {
        assert_eq!(parse_snapshot_name(&snapshot_name(0)), Some(0));
        assert_eq!(
            parse_snapshot_name(&snapshot_name(0xdead_beef)),
            Some(0xdead_beef)
        );
        assert_eq!(
            parse_snapshot_name(&snapshot_name(u64::MAX)),
            Some(u64::MAX)
        );
        for bad in [
            "snap-.mob",
            "snap-123.mob",
            "snap-00000000000000zz.mob",
            "tmp-0000000000000001.mob",
            "snap-0000000000000001.tmp",
            "other",
        ] {
            assert_eq!(parse_snapshot_name(bad), None, "{bad}");
        }
    }

    #[test]
    fn image_roundtrip_across_chunk_boundaries() {
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100] {
            let payload: Vec<u8> = (0..len)
                .map(|i| u8::try_from(i % 251).unwrap_or(0))
                .collect();
            let image = encode_image(7, 16, &payload);
            let img = decode_image(&image, false).unwrap();
            assert_eq!(img.generation, 7);
            assert_eq!(img.chunk_size, 16);
            assert_eq!(img.payload, payload);
            assert!(img.damaged.is_empty());
            assert_eq!(img.chunks_total, len.div_ceil(16));
        }
    }

    #[test]
    fn strict_decode_rejects_any_bit_flip() {
        let payload: Vec<u8> = (0..100u8).collect();
        let image = encode_image(3, 16, &payload);
        for pos in 0..image.len() {
            let mut bad = image.clone();
            bad[pos] ^= 1;
            assert!(
                decode_image(&bad, false).is_err(),
                "flip at byte {pos} escaped the strict decoder"
            );
        }
    }

    #[test]
    fn degraded_decode_zero_fills_and_reports_damaged_chunks() {
        let payload: Vec<u8> = (0..100u8).collect();
        let image = encode_image(3, 16, &payload);
        // Flip one byte inside chunk 2's frame. Frames: superblock at
        // 0..12+32, then chunks of 12+16 bytes each.
        let chunk2_frame = (12 + 32) + 2 * (12 + 16);
        let mut bad = image.clone();
        bad[chunk2_frame + 12 + 3] ^= 0x40;
        let img = decode_image(&bad, true).unwrap();
        assert_eq!(img.chunks_corrupt, 1);
        assert_eq!(img.damaged, vec![(32, 48)]);
        // Healthy bytes intact, damaged chunk zero-filled.
        assert_eq!(&img.payload[..32], &payload[..32]);
        assert_eq!(&img.payload[32..48], &[0u8; 16]);
        assert_eq!(&img.payload[48..], &payload[48..]);
        // Superblock damage is fatal even in degraded mode.
        let mut sbbad = image.clone();
        sbbad[12 + 3] ^= 1;
        assert!(decode_image(&sbbad, true).is_err());
    }

    #[test]
    fn commit_open_roundtrip_and_generation_sequence() {
        let dir = MemIo::new();
        let mut store = DurableStore::create(dir.clone(), 32).unwrap();
        assert_eq!(store.generation(), 0);
        assert_eq!(store.commit(b"alpha").unwrap(), 1);
        assert_eq!(store.commit(b"beta").unwrap(), 2);
        assert_eq!(store.commit(b"gamma").unwrap(), 3);
        // Prune keeps exactly the current and previous generation.
        let names = dir.list().unwrap();
        assert_eq!(
            names,
            vec![snapshot_name(2), snapshot_name(3)],
            "prune keeps current + previous"
        );
        let (reopened, payload) = DurableStore::open(dir.clone(), 32).unwrap();
        assert_eq!(reopened.generation(), 3);
        assert_eq!(payload.as_deref(), Some(&b"gamma"[..]));
        // create refuses a populated directory.
        assert!(DurableStore::create(dir, 32).is_err());
    }

    #[test]
    fn open_fresh_directory_yields_none() {
        let (store, payload) = DurableStore::open(MemIo::new(), 64).unwrap();
        assert_eq!(store.generation(), 0);
        assert!(payload.is_none());
    }

    #[test]
    fn open_skips_a_torn_newest_snapshot() {
        let dir = MemIo::new();
        let mut store = DurableStore::create(dir.clone(), 32).unwrap();
        store.commit(b"good old state").unwrap();
        // Forge a torn generation-2 snapshot: valid name, damaged bytes.
        let mut image = encode_image(2, 32, b"half-written new state");
        let mid = image.len() / 2;
        image.truncate(mid);
        dir.write_file(&snapshot_name(2), &image).unwrap();
        // And a stale shadow file.
        dir.write_file(&tmp_name(3), b"junk").unwrap();
        let (reopened, payload) = DurableStore::open(dir.clone(), 32).unwrap();
        assert_eq!(payload.as_deref(), Some(&b"good old state"[..]));
        assert_eq!(reopened.generation(), 1);
        // The torn snapshot and the shadow file were cleaned up.
        assert_eq!(dir.list().unwrap(), vec![snapshot_name(1)]);
    }

    #[test]
    fn open_rejects_a_snapshot_whose_name_lies_about_its_generation() {
        let dir = MemIo::new();
        // A fully valid generation-1 image filed under the name of
        // generation 5: the mismatch must not be trusted.
        let image = encode_image(1, 32, b"impostor");
        dir.write_file(&snapshot_name(5), &image).unwrap();
        let (_, payload) = DurableStore::open(dir, 32).unwrap();
        assert!(payload.is_none());
    }

    #[test]
    fn zero_or_absurd_chunk_sizes_are_errors() {
        assert!(DurableStore::create(MemIo::new(), 0).is_err());
        assert!(DurableStore::open(MemIo::new(), usize::MAX).is_err());
        // And arriving from a corrupt superblock: patch chunk_size to 0
        // and re-seal the superblock frame so only the field is wrong.
        let image = encode_image(1, 32, b"payload");
        let mut sb = image[12..12 + 32].to_vec();
        sb[20..24].copy_from_slice(&0u32.to_le_bytes());
        let mut forged = Vec::new();
        seal_frame(&mut forged, &sb);
        forged.extend_from_slice(&image[12 + 32..]);
        assert!(matches!(
            decode_image(&forged, false),
            Err(DecodeError::BadStructure { .. })
        ));
    }
}
