//! Immutable generations: the MVCC read side of the durable store.
//!
//! A [`Generation`] is a frozen, shareable snapshot of one committed
//! store state: a page store behind an `Arc`, the root catalog, and the
//! bookkeeping the query layer needs (which roots changed since the
//! last full snapshot, which blobs are quarantined). Readers pin a
//! generation with [`crate::DurableStore::snapshot`] and keep querying
//! it — bit-for-bit unchanged — while a writer commits deltas and
//! compactions that produce *new* generations.
//!
//! The write side never mutates a generation. [`Generation::apply_appends`]
//! builds the successor: it forks the page store (O(1), blob pages are
//! shared behind `Arc`s — see [`PageStore::fork`]), splices the appended
//! units onto each touched mapping, and writes only the new unit arrays.
//! Commit cost is therefore proportional to the delta, not the store.
//!
//! Everything here sits on the untrusted-decode path (delta replay runs
//! it on whatever survived a crash), so all validation returns
//! [`DecodeError`]s: no indexing, no unwraps, no panicking interval
//! constructors.

use crate::dbarray::{load_array, save_array, Placement, SavedArray};
use crate::index_store::StoredIndex;
use crate::line_store::{StoredLine, StoredPoints};
use crate::mapping_store::{
    StoredMLine, StoredMPoints, StoredMRegion, StoredMapping, UPointRecord,
};
use crate::page::PageStore;
use crate::range_store::StoredPeriods;
use crate::region_store::StoredRegion;
use crate::store_file::{RootRecord, StoreFile};
use crate::view::{self, MappingView, Verify};
use mob_base::{DecodeError, DecodeResult, TimeInterval};
use std::cmp::Ordering;
use std::sync::Arc;

/// One committed, immutable store state (see the module docs).
#[derive(Clone)]
pub struct Generation {
    number: u64,
    store: Arc<PageStore>,
    entries: Vec<(String, RootRecord)>,
    /// Root names whose mappings changed after the last full snapshot
    /// (sorted, deduplicated). Any stored index predates these changes,
    /// so the planner must route stale roots through the exhaustive
    /// `always` list instead of trusting index pruning.
    stale: Vec<String>,
    /// Blob indices quarantined when the snapshot was decoded degraded.
    quarantined: Vec<usize>,
}

impl Generation {
    /// An empty generation (no roots, no pages).
    #[must_use]
    pub fn empty(number: u64) -> Generation {
        Generation {
            number,
            store: Arc::new(PageStore::new()),
            entries: Vec::new(),
            stale: Vec::new(),
            quarantined: Vec::new(),
        }
    }

    /// Freeze a decoded snapshot file as a generation. A full snapshot
    /// has no stale roots by construction — every index in it was
    /// written against the same catalog.
    #[must_use]
    pub fn from_store_file(number: u64, file: StoreFile, quarantined: Vec<usize>) -> Generation {
        let (store, entries) = file.into_parts();
        Generation {
            number,
            store: Arc::new(store),
            entries,
            stale: Vec::new(),
            quarantined,
        }
    }

    /// The generation number (monotonic across commits).
    #[must_use]
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The frozen page store.
    #[must_use]
    pub fn store(&self) -> &PageStore {
        &self.store
    }

    /// Owning handle to the frozen page store, for relation scan
    /// workers that outlive a borrow.
    #[must_use]
    pub fn store_arc(&self) -> Arc<PageStore> {
        Arc::clone(&self.store)
    }

    /// The root catalog, in insertion order.
    #[must_use]
    pub fn entries(&self) -> &[(String, RootRecord)] {
        &self.entries
    }

    /// Look up a root record by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&RootRecord> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, r)| r)
    }

    /// Root names modified since the last full snapshot (sorted).
    #[must_use]
    pub fn stale(&self) -> &[String] {
        &self.stale
    }

    /// Whether `name` changed since the last full snapshot (and must
    /// bypass any stored index).
    #[must_use]
    pub fn is_stale(&self, name: &str) -> bool {
        self.stale
            .binary_search_by(|s| s.as_str().cmp(name))
            .is_ok()
    }

    /// Blob indices quarantined at decode time (degraded opens).
    #[must_use]
    pub fn quarantined(&self) -> &[usize] {
        &self.quarantined
    }

    /// Open a lazy view over the `moving(point)` root `name` — same
    /// error contract as [`StoreFile::open_mpoint`].
    pub fn open_mpoint(
        &self,
        name: &str,
        verify: Verify,
    ) -> DecodeResult<MappingView<'_, UPointRecord>> {
        match self.get(name) {
            Some(RootRecord::MPoint(stored)) => view::open_mpoint(stored, &self.store, verify),
            Some(other) => Err(DecodeError::BadStructure {
                what: "generation catalog",
                detail: format!("entry {name:?} is a {}, not an mpoint", other.kind_name()),
            }),
            None => Err(DecodeError::BadStructure {
                what: "generation catalog",
                detail: format!("no entry named {name:?}"),
            }),
        }
    }

    /// Re-materialize this generation as a serializable [`StoreFile`]
    /// (pages forked, catalog cloned). Cheap: blob pages are shared.
    #[must_use]
    pub fn to_store_file(&self) -> StoreFile {
        StoreFile::from_parts(self.store.fork(), self.entries.clone())
    }

    /// Rewrite every live root into a fresh page store — the compaction
    /// rewrite. Blobs superseded by appends are dropped (only blobs the
    /// current catalog references are copied), so a long append history
    /// folds back down to the size of the live data. Quarantined blobs
    /// cannot be copied and fail the rewrite: a degraded store must be
    /// repaired (roots dropped or restored) before compaction.
    pub fn rebuild_store_file(&self) -> DecodeResult<StoreFile> {
        let mut dst = PageStore::with_page_size(self.store.page_size())?;
        let mut entries = Vec::with_capacity(self.entries.len());
        for (name, root) in &self.entries {
            // A stored index built before this generation's appends no
            // longer covers every unit, and the compacted snapshot
            // starts with an empty stale list — carrying the old index
            // over would let later opens attach it as fully trusted and
            // silently prune appended data. Drop it; the maintenance
            // rebuild step re-derives a fresh one.
            if matches!(root, RootRecord::Index(_)) && !self.stale.is_empty() {
                continue;
            }
            entries.push((name.clone(), rewrite_root(&self.store, &mut dst, root)?));
        }
        Ok(StoreFile::from_parts(dst, entries))
    }

    /// Build the successor generation by appending units to `moving(point)`
    /// roots. `appends` holds per-root unit batches in commit order; an
    /// unknown root name creates a new mapping, a known one must be an
    /// mpoint and the batch must continue it (see [`splice_units`] and
    /// the seam rules below). Cost is proportional to the touched
    /// mappings, not the store: untouched roots share their pages with
    /// `self` via [`PageStore::fork`].
    ///
    /// Seam between the stored tail and the first appended unit (the
    /// ingestion anchor makes consecutive batches share a boundary
    /// instant): a stored point-interval tail is *replaced* by the
    /// continuation that starts there; a stored right-closed tail is
    /// trimmed to right-open when the continuation is left-closed at its
    /// end. A gap (batch starts after the stored end) is honest missing
    /// data and concatenates as-is.
    pub fn apply_appends(
        &self,
        number: u64,
        appends: &[(String, Vec<UPointRecord>)],
    ) -> DecodeResult<Generation> {
        let mut store = self.store.fork();
        let mut entries = self.entries.clone();
        let mut stale = self.stale.clone();
        for (name, records) in appends {
            if records.is_empty() {
                continue;
            }
            let slot = entries.iter().position(|(n, _)| n == name);
            let mut combined: Vec<UPointRecord> =
                match slot.and_then(|i| entries.get(i)).map(|(_, r)| r) {
                    Some(RootRecord::MPoint(sm)) => load_array(&sm.units, &self.store)?,
                    Some(other) => {
                        return Err(DecodeError::BadStructure {
                            what: "delta apply",
                            detail: format!(
                                "append target {name:?} is a {}, not an mpoint",
                                other.kind_name()
                            ),
                        })
                    }
                    None => Vec::new(),
                };
            resolve_seam(&mut combined, records, name)?;
            combined.extend_from_slice(records);
            let spliced = splice_units(combined)?;
            let num_units =
                u32::try_from(spliced.len()).map_err(|_| DecodeError::BadStructure {
                    what: "delta apply",
                    detail: format!("mapping {name:?} exceeds u32 units"),
                })?;
            let sm = StoredMapping {
                num_units,
                units: save_array(&spliced, &mut store),
            };
            match slot.and_then(|i| entries.get_mut(i)) {
                Some(e) => e.1 = RootRecord::MPoint(sm),
                None => entries.push((name.clone(), RootRecord::MPoint(sm))),
            }
            if let Err(pos) = stale.binary_search(name) {
                stale.insert(pos, name.clone());
            }
        }
        Ok(Generation {
            number,
            store: Arc::new(store),
            entries,
            stale,
            quarantined: self.quarantined.clone(),
        })
    }
}

/// Seam resolution between a stored mapping tail and the first appended
/// unit (see [`Generation::apply_appends`]). Mutates `existing` in
/// place; overlaps beyond the shared boundary instant are left for the
/// splice pass to reject.
fn resolve_seam(
    existing: &mut Vec<UPointRecord>,
    appended: &[UPointRecord],
    name: &str,
) -> DecodeResult<()> {
    let Some(fu) = appended.first() else {
        return Ok(());
    };
    let Some(lu) = existing.last() else {
        return Ok(());
    };
    let boundary = *fu.interval.start() == *lu.interval.end() && fu.interval.left_closed();
    if !boundary {
        return Ok(());
    }
    if lu.interval.is_point() {
        // The stored tail is the anchor sample frozen as a point unit;
        // the continuation that starts there replaces it.
        existing.pop();
        return Ok(());
    }
    if lu.interval.right_closed() {
        // Trim the stored tail to right-open so the continuation owns
        // the boundary instant (the paper's half-open slicing).
        let trimmed = TimeInterval::try_new(
            *lu.interval.start(),
            *lu.interval.end(),
            lu.interval.left_closed(),
            false,
        )
        .map_err(|e| DecodeError::BadStructure {
            what: "delta apply",
            detail: format!("cannot trim tail of {name:?}: {e}"),
        })?;
        if let Some(last) = existing.last_mut() {
            last.interval = trimmed;
        }
    }
    Ok(())
}

/// Validate and canonicalize a unit sequence: intervals must be sorted
/// by start and pairwise disjoint, and adjacent units with the *same*
/// motion are merged — the paper's ι endpoint cleanup, applied exactly
/// as `Mapping::from_units` would for a pre-sorted input. The result
/// satisfies the `Mapping::try_new` invariants (sorted, disjoint,
/// adjacent ⇒ distinct values).
///
/// Runs on untrusted replay input: every failure is a [`DecodeError`].
pub fn splice_units(units: Vec<UPointRecord>) -> DecodeResult<Vec<UPointRecord>> {
    let mut out: Vec<UPointRecord> = Vec::with_capacity(units.len());
    for u in units {
        let Some(prev) = out.last_mut() else {
            out.push(u);
            continue;
        };
        if prev.interval.cmp_start(&u.interval) != Ordering::Less {
            return Err(DecodeError::BadStructure {
                what: "unit splice",
                detail: "units not sorted by interval start".into(),
            });
        }
        if !prev.interval.disjoint(&u.interval) {
            return Err(DecodeError::BadStructure {
                what: "unit splice",
                detail: "unit intervals overlap".into(),
            });
        }
        if prev.interval.adjacent(&u.interval) && prev.motion == u.motion {
            let merged = TimeInterval::try_new(
                *prev.interval.start(),
                *u.interval.end(),
                prev.interval.left_closed(),
                u.interval.right_closed(),
            )
            .map_err(|e| DecodeError::BadStructure {
                what: "unit splice",
                detail: format!("merge produced an invalid interval: {e}"),
            })?;
            prev.interval = merged;
            continue;
        }
        out.push(u);
    }
    Ok(out)
}

/// Copy a saved array into `dst`, preserving its placement (inline
/// stays inline, external blobs are re-written into `dst`).
fn rewrite_saved(src: &PageStore, dst: &mut PageStore, a: &SavedArray) -> DecodeResult<SavedArray> {
    let placement = match &a.placement {
        Placement::Inline(b) => Placement::Inline(b.clone()),
        Placement::External(id) => Placement::External(dst.write_blob(&src.try_read_blob(*id)?)),
    };
    Ok(SavedArray {
        count: a.count,
        placement,
    })
}

/// Copy one root record's arrays from `src` into `dst` (compaction).
fn rewrite_root(
    src: &PageStore,
    dst: &mut PageStore,
    root: &RootRecord,
) -> DecodeResult<RootRecord> {
    Ok(match root {
        RootRecord::MBool(m) => RootRecord::MBool(StoredMapping {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
        }),
        RootRecord::MReal(m) => RootRecord::MReal(StoredMapping {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
        }),
        RootRecord::MPoint(m) => RootRecord::MPoint(StoredMapping {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
        }),
        RootRecord::MPoints(m) => RootRecord::MPoints(StoredMPoints {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
            motions: rewrite_saved(src, dst, &m.motions)?,
        }),
        RootRecord::MLine(m) => RootRecord::MLine(StoredMLine {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
            msegments: rewrite_saved(src, dst, &m.msegments)?,
        }),
        RootRecord::MRegion(m) => RootRecord::MRegion(StoredMRegion {
            num_units: m.num_units,
            units: rewrite_saved(src, dst, &m.units)?,
            msegments: rewrite_saved(src, dst, &m.msegments)?,
            mcycles: rewrite_saved(src, dst, &m.mcycles)?,
            mfaces: rewrite_saved(src, dst, &m.mfaces)?,
        }),
        RootRecord::Line(l) => RootRecord::Line(StoredLine {
            num_segments: l.num_segments,
            length: l.length,
            bbox: l.bbox,
            halfsegs: rewrite_saved(src, dst, &l.halfsegs)?,
        }),
        RootRecord::Points(p) => RootRecord::Points(StoredPoints {
            count: p.count,
            points: rewrite_saved(src, dst, &p.points)?,
        }),
        RootRecord::Region(r) => RootRecord::Region(StoredRegion {
            num_faces: r.num_faces,
            num_cycles: r.num_cycles,
            num_segments: r.num_segments,
            area: r.area,
            perimeter: r.perimeter,
            bbox: r.bbox,
            halfsegments: rewrite_saved(src, dst, &r.halfsegments)?,
            cycles: rewrite_saved(src, dst, &r.cycles)?,
            faces: rewrite_saved(src, dst, &r.faces)?,
        }),
        RootRecord::Periods(p) => RootRecord::Periods(StoredPeriods {
            count: p.count,
            intervals: rewrite_saved(src, dst, &p.intervals)?,
        }),
        RootRecord::Index(i) => RootRecord::Index(StoredIndex {
            num_tuples: i.num_tuples,
            fanout: i.fanout,
            entries: rewrite_saved(src, dst, &i.entries)?,
            nodes: rewrite_saved(src, dst, &i.nodes)?,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping_store::save_mpoint;
    use mob_base::t;
    use mob_core::{Mapping, MovingPoint, TailBuilder, Unit};
    use mob_spatial::pt;

    fn to_records(units: &[mob_core::UPoint]) -> Vec<UPointRecord> {
        units
            .iter()
            .map(|u| UPointRecord {
                interval: *u.interval(),
                motion: *u.motion(),
            })
            .collect()
    }

    fn gen_with_mpoint(name: &str, m: &MovingPoint) -> Generation {
        let mut file = StoreFile::new();
        let sm = save_mpoint(m, file.store_mut());
        file.put(name, RootRecord::MPoint(sm));
        Generation::from_store_file(1, file, Vec::new())
    }

    fn load_units(g: &Generation, name: &str) -> Vec<UPointRecord> {
        match g.get(name) {
            Some(RootRecord::MPoint(sm)) => load_array(&sm.units, g.store()).unwrap(),
            other => panic!("{name}: {other:?}"),
        }
    }

    /// Batched ingestion through apply_appends must equal one
    /// from_samples call over the full sample list.
    #[test]
    fn batched_appends_equal_whole_from_samples() {
        let samples: Vec<_> = (0..10)
            .map(|i| (t(f64::from(i)), pt(f64::from(i % 3), f64::from(i))))
            .collect();
        let mut tail = TailBuilder::new();
        let mut g = Generation::empty(0);
        for chunk in samples.chunks(3) {
            for &(ti, pi) in chunk {
                tail.push(ti, pi).unwrap();
            }
            let batch = to_records(&tail.seal());
            g = g
                .apply_appends(g.number() + 1, &[("car".to_string(), batch)])
                .unwrap();
        }
        let whole = MovingPoint::from_samples(&samples);
        assert_eq!(load_units(&g, "car"), to_records(whole.units()));
        assert!(g.is_stale("car"));
        assert_eq!(g.number(), 4);
    }

    #[test]
    fn apply_appends_shares_untouched_roots_and_freezes_the_base() {
        let road = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(5.0), pt(5.0, 0.0))]);
        let base = gen_with_mpoint("road", &road);
        let before = load_units(&base, "road");
        let batch = to_records(
            MovingPoint::from_samples(&[(t(0.0), pt(9.0, 9.0)), (t(1.0), pt(8.0, 8.0))]).units(),
        );
        let next = base
            .apply_appends(2, &[("car".to_string(), batch.clone())])
            .unwrap();
        // The base generation is bit-identical after the commit.
        assert_eq!(load_units(&base, "road"), before);
        assert!(base.get("car").is_none());
        // The successor sees both, and only the new root is stale.
        assert_eq!(load_units(&next, "road"), before);
        assert_eq!(load_units(&next, "car"), batch);
        assert!(next.is_stale("car") && !next.is_stale("road"));
    }

    #[test]
    fn seam_replaces_point_tail_and_trims_closed_tail() {
        // Point tail: a single-sample mapping continued by a batch.
        let single = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0))]);
        let g = gen_with_mpoint("car", &single);
        let cont = to_records(
            MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(1.0), pt(1.0, 0.0))]).units(),
        );
        let g2 = g.apply_appends(2, &[("car".to_string(), cont)]).unwrap();
        let whole = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(1.0), pt(1.0, 0.0))]);
        assert_eq!(load_units(&g2, "car"), to_records(whole.units()));

        // Closed tail: from_samples leaves the last window right-closed;
        // a left-closed continuation forces the trim path.
        let two = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(1.0), pt(1.0, 0.0))]);
        let g = gen_with_mpoint("car", &two);
        let cont = to_records(
            MovingPoint::from_samples(&[(t(1.0), pt(1.0, 0.0)), (t(2.0), pt(1.0, 5.0))]).units(),
        );
        let g2 = g.apply_appends(2, &[("car".to_string(), cont)]).unwrap();
        let whole = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(1.0, 5.0)),
        ]);
        assert_eq!(load_units(&g2, "car"), to_records(whole.units()));
        // And the collinear continuation merges into one unit.
        let g = gen_with_mpoint("car", &two);
        let cont = to_records(
            MovingPoint::from_samples(&[(t(1.0), pt(1.0, 0.0)), (t(2.0), pt(2.0, 0.0))]).units(),
        );
        let g2 = g.apply_appends(2, &[("car".to_string(), cont)]).unwrap();
        let whole = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(2.0, 0.0)),
        ]);
        assert_eq!(load_units(&g2, "car"), to_records(whole.units()));
    }

    #[test]
    fn gaps_concat_and_overlaps_fail() {
        let two = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(1.0), pt(1.0, 0.0))]);
        let g = gen_with_mpoint("car", &two);
        // Gap: batch starts after the stored end — concatenates.
        let later = to_records(
            MovingPoint::from_samples(&[(t(5.0), pt(0.0, 0.0)), (t(6.0), pt(1.0, 0.0))]).units(),
        );
        let g2 = g.apply_appends(2, &[("car".to_string(), later)]).unwrap();
        assert_eq!(load_units(&g2, "car").len(), 2);
        // The result is still a valid mapping.
        let v = g2.open_mpoint("car", Verify::Full).unwrap();
        assert_eq!(v.materialize_validated().unwrap().num_units(), 2);
        // Overlap: batch starts strictly inside the stored tail — error.
        let overlap = to_records(
            MovingPoint::from_samples(&[(t(0.5), pt(0.0, 0.0)), (t(2.0), pt(1.0, 0.0))]).units(),
        );
        assert!(g.apply_appends(2, &[("car".to_string(), overlap)]).is_err());
        // Kind mismatch: appending to a non-mpoint root is an error.
        let mut file = StoreFile::new();
        let p = crate::line_store::save_points(&mob_spatial::Points::empty(), file.store_mut());
        file.put("pts", RootRecord::Points(p));
        let g = Generation::from_store_file(1, file, Vec::new());
        let batch = to_records(MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0))]).units());
        assert!(g.apply_appends(2, &[("pts".to_string(), batch)]).is_err());
    }

    #[test]
    fn splice_matches_mapping_invariants() {
        // A spliced sequence always passes Mapping::try_new.
        let units = MovingPoint::from_samples(&[
            (t(0.0), pt(0.0, 0.0)),
            (t(1.0), pt(1.0, 0.0)),
            (t(2.0), pt(1.0, 4.0)),
        ]);
        let recs = to_records(units.units());
        let spliced = splice_units(recs.clone()).unwrap();
        assert_eq!(spliced, recs); // canonical input is a fixed point
        let back: Vec<mob_core::UPoint> = spliced
            .iter()
            .map(|r| mob_core::UPoint::new(r.interval, r.motion))
            .collect();
        assert!(Mapping::try_new(back).is_ok());
        // Unsorted input is rejected.
        let mut rev = recs.clone();
        rev.reverse();
        assert!(splice_units(rev).is_err());
    }

    #[test]
    fn rebuild_drops_superseded_blobs() {
        // Force external placement with a long trajectory, then append
        // repeatedly: the forked stores accumulate superseded unit
        // arrays, and the rebuild folds them away.
        let samples: Vec<_> = (0..200)
            .map(|i| (t(f64::from(i)), pt(f64::from(i), f64::from(i % 7))))
            .collect();
        let m = MovingPoint::from_samples(&samples);
        let mut g = gen_with_mpoint("car", &m);
        for k in 0..5 {
            let t0 = 200.0 + 10.0 * f64::from(k);
            let batch = to_records(
                MovingPoint::from_samples(&[(t(t0), pt(0.0, 0.0)), (t(t0 + 1.0), pt(1.0, 0.0))])
                    .units(),
            );
            g = g
                .apply_appends(g.number() + 1, &[("car".to_string(), batch)])
                .unwrap();
        }
        let grown = g.store().num_blobs();
        let rebuilt = g.rebuild_store_file().unwrap();
        assert!(rebuilt.store().num_blobs() < grown);
        // Round-trip through bytes and compare the mapping.
        let bytes = rebuilt.to_bytes().unwrap();
        let reopened = StoreFile::from_bytes(&bytes).unwrap();
        let fresh = Generation::from_store_file(g.number(), reopened, Vec::new());
        assert_eq!(load_units(&fresh, "car"), load_units(&g, "car"));
    }
}
