//! Corruption resistance of the serialized store format.
//!
//! The contract under test (DESIGN.md §"verify, then trust"): **no byte
//! pattern, however damaged, may panic the decoder**. Structural damage
//! must surface as a `DecodeError`; a mutation that happens to decode
//! (e.g. a flipped bit inside a coordinate) must still yield a value
//! that passes deep validation or be rejected by it.
//!
//! For every root-record kind we build a single-entry [`StoreFile`],
//! then drive two mutation campaigns over its byte image:
//!
//! * an exhaustive sweep — every byte position × a battery of XOR masks
//!   (all eight single-bit flips plus `0xFF`/`0x55`/`0xAA`), well over
//!   1000 mutants per kind, each fully decoded, opened, deep-validated
//!   and loaded;
//! * every proper prefix truncation, all of which must be rejected.
//!
//! A final randomized proptest sprays multi-byte corruption across a
//! combined file holding all ten kinds at once.

use mob_base::{t, Interval, Periods, TimeInterval, Validate};
use mob_core::{
    unit_cubes, ConstUnit, MSeg, Mapping, MovingPoint, PointMotion, RTree, ULine, UPoints, UReal,
    URegion,
};
use mob_spatial::{pt, rect_ring, seg, Face, Line, Points, Region};
use mob_storage::store_file::RootRecord;
use mob_storage::{
    index_store, line_store, mapping_store, range_store, region_store, view, StoreFile,
};
use proptest::prelude::*;

const MASKS: [u8; 11] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0xFF, 0x55, 0xAA,
];

// ---------------------------------------------------------------------
// Exercising a byte image: decode + open + deep-validate + load.
// ---------------------------------------------------------------------

/// Decode `bytes` and fully exercise every entry. Any corruption must
/// come back as `Err`, never a panic; an `Ok` means every entry opened,
/// deep-validated, loaded and re-validated.
fn exercise(bytes: &[u8]) -> Result<(), String> {
    let file = StoreFile::from_bytes(bytes).map_err(|e| e.to_string())?;
    let store = file.store();
    for (_, root) in file.entries() {
        macro_rules! moving {
            ($stored:expr, $open:path) => {{
                let view = $open($stored, store, view::Verify::Full).map_err(|e| e.to_string())?;
                view.validate().map_err(|e| e.to_string())?;
                let loaded = view.materialize_validated().map_err(|e| e.to_string())?;
                loaded.validate().map_err(|e| e.to_string())?;
            }};
        }
        match root {
            RootRecord::MBool(s) => moving!(s, view::open_mbool),
            RootRecord::MReal(s) => moving!(s, view::open_mreal),
            RootRecord::MPoint(s) => moving!(s, view::open_mpoint),
            RootRecord::MPoints(s) => moving!(s, view::open_mpoints),
            RootRecord::MLine(s) => moving!(s, view::open_mline),
            RootRecord::MRegion(s) => moving!(s, view::open_mregion),
            RootRecord::Line(s) => {
                line_store::load_line(s, store).map_err(|e| e.to_string())?;
            }
            RootRecord::Points(s) => {
                line_store::load_points(s, store).map_err(|e| e.to_string())?;
            }
            RootRecord::Region(s) => {
                region_store::load_region(s, store).map_err(|e| e.to_string())?;
            }
            RootRecord::Periods(s) => {
                let p = range_store::load_periods(s, store).map_err(|e| e.to_string())?;
                p.validate().map_err(|e| e.to_string())?;
            }
            RootRecord::Index(s) => {
                index_store::load_index(s, store).map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(())
}

/// Run the full mutation campaign on one store file and return the
/// number of mutants exercised.
fn sweep(file: &StoreFile, kind: &str) -> usize {
    let bytes = file.to_bytes().expect("sample serializes");
    assert!(
        exercise(&bytes).is_ok(),
        "intact {kind} file must audit clean"
    );
    let mut mutants = 0usize;
    for pos in 0..bytes.len() {
        for mask in MASKS {
            let mut bad = bytes.clone();
            bad[pos] ^= mask;
            // Must not panic; Ok is fine when the flip lands in a value
            // field and yields a different-but-valid value.
            let _ = exercise(&bad);
            mutants += 1;
        }
    }
    // Every proper prefix must be rejected outright.
    for cut in 0..bytes.len() {
        assert!(
            exercise(&bytes[..cut]).is_err(),
            "{kind}: truncation to {cut}/{} bytes decoded",
            bytes.len()
        );
        mutants += 1;
    }
    assert!(
        mutants >= 1000,
        "{kind}: only {mutants} mutants — grow the sample value"
    );
    mutants
}

// ---------------------------------------------------------------------
// Sample values, one builder per root-record kind. Each appends its
// entry to `file`, so the same builders serve the per-kind sweeps and
// the combined fuzz target.
// ---------------------------------------------------------------------

fn iv(s: f64, e: f64) -> TimeInterval {
    Interval::closed_open(t(s), t(e))
}

fn put_mbool(file: &mut StoreFile) {
    let units: Vec<ConstUnit<bool>> = (0..10)
        .map(|k| ConstUnit::new(iv(f64::from(k), f64::from(k) + 1.0), k % 2 == 0))
        .collect();
    let m = Mapping::try_new(units).expect("alternating mbool");
    let stored = mapping_store::save_mbool(&m, file.store_mut());
    file.put("mbool", RootRecord::MBool(stored));
}

fn put_mreal(file: &mut StoreFile) {
    let units: Vec<UReal> = (0..8)
        .map(|k| {
            let k = f64::from(k);
            UReal::quadratic(
                iv(k, k + 1.0),
                mob_base::r(k + 1.0),
                mob_base::r(2.0),
                mob_base::r(3.0),
            )
        })
        .collect();
    let m = Mapping::try_new(units).expect("quadratic pieces");
    let stored = mapping_store::save_mreal(&m, file.store_mut());
    file.put("mreal", RootRecord::MReal(stored));
}

fn put_mpoint(file: &mut StoreFile) {
    let samples: Vec<_> = (0..12)
        .map(|k| (t(f64::from(k)), pt(f64::from(k) * 0.5, f64::from(k % 5))))
        .collect();
    let m = MovingPoint::from_samples(&samples);
    let stored = mapping_store::save_mpoint(&m, file.store_mut());
    file.put("mpoint", RootRecord::MPoint(stored));
}

fn put_mpoints(file: &mut StoreFile) {
    let units: Vec<UPoints> = (0..4)
        .map(|k| {
            let k = f64::from(k);
            UPoints::try_new(
                iv(k, k + 1.0),
                vec![
                    PointMotion::stationary(pt(k, 0.0)),
                    PointMotion::stationary(pt(k + 0.25, 1.0)),
                    PointMotion::stationary(pt(k + 0.5, 2.0)),
                ],
            )
            .expect("distinct stationary motions")
        })
        .collect();
    let m = Mapping::try_new(units).expect("mpoints units");
    let stored = mapping_store::save_mpoints(&m, file.store_mut());
    file.put("mpoints", RootRecord::MPoints(stored));
}

fn put_mline(file: &mut StoreFile) {
    let units: Vec<ULine> = (0..3)
        .map(|k| {
            // Alternate the sweep direction so adjacent units cannot be
            // merged (canonicity).
            let dir = if k % 2 == 0 { 1.0 } else { -1.0 };
            let k = f64::from(k);
            let m1 = MSeg::between(
                t(k),
                pt(0.0, k),
                pt(1.0, k),
                t(k + 1.0),
                pt(0.0, k + dir),
                pt(1.0, k + dir),
            )
            .expect("parallel sweep");
            ULine::try_new(iv(k, k + 1.0), vec![m1]).expect("one mseg")
        })
        .collect();
    let m = Mapping::try_new(units).expect("mline units");
    let stored = mapping_store::save_mline(&m, file.store_mut());
    file.put("mline", RootRecord::MLine(stored));
}

fn put_mregion(file: &mut StoreFile) {
    let u1 = URegion::interpolate(
        iv(0.0, 1.0),
        &rect_ring(0.0, 0.0, 1.0, 1.0),
        &rect_ring(1.0, 0.0, 2.0, 1.0),
    )
    .expect("translating square");
    let u2 = URegion::interpolate(
        iv(1.0, 2.0),
        &rect_ring(1.0, 0.0, 2.0, 1.0),
        &rect_ring(1.0, 1.0, 2.0, 2.0),
    )
    .expect("translating square");
    let m: Mapping<URegion> = Mapping::try_new(vec![u1, u2]).expect("mregion units");
    let stored = mapping_store::save_mregion(&m, file.store_mut());
    file.put("mregion", RootRecord::MRegion(stored));
}

fn put_line(file: &mut StoreFile) {
    let segs: Vec<_> = (0..12)
        .map(|i| {
            let i = f64::from(i);
            seg(i * 2.0, 0.0, i * 2.0 + 1.0, 1.0)
        })
        .collect();
    let line = Line::normalize(segs);
    let stored = line_store::save_line(&line, file.store_mut());
    file.put("line", RootRecord::Line(stored));
}

fn put_points(file: &mut StoreFile) {
    let points = Points::from_points(
        (0..16)
            .map(|k| pt(f64::from(k), f64::from(k % 3)))
            .collect(),
    );
    let stored = line_store::save_points(&points, file.store_mut());
    file.put("points", RootRecord::Points(stored));
}

fn put_region(file: &mut StoreFile) {
    let region = Region::try_new(vec![
        Face::try_new(
            rect_ring(0.0, 0.0, 10.0, 10.0),
            vec![rect_ring(2.0, 2.0, 8.0, 8.0)],
        )
        .expect("face with hole"),
        Face::simple(rect_ring(4.0, 4.0, 6.0, 6.0)),
    ])
    .expect("figure-3 region");
    let stored = region_store::save_region(&region, file.store_mut());
    file.put("region", RootRecord::Region(stored));
}

fn put_periods(file: &mut StoreFile) {
    let p = Periods::from_unmerged(
        (0..10)
            .map(|k| Interval::closed(t(f64::from(k) * 2.0), t(f64::from(k) * 2.0 + 1.0)))
            .collect(),
    );
    let stored = range_store::save_periods(&p, file.store_mut());
    file.put("periods", RootRecord::Periods(stored));
}

fn put_index(file: &mut StoreFile) {
    let mut entries = Vec::new();
    for k in 0..6u32 {
        let samples: Vec<_> = (0..8)
            .map(|i| {
                (
                    t(f64::from(i)),
                    pt(f64::from(k) + f64::from(i % 2), f64::from(i)),
                )
            })
            .collect();
        entries.extend(unit_cubes(k, &MovingPoint::from_samples(&samples)));
    }
    let tree = RTree::bulk(6, entries);
    let stored = index_store::save_index(&tree, file.store_mut());
    file.put("index", RootRecord::Index(stored));
}

fn single(put: fn(&mut StoreFile)) -> StoreFile {
    let mut file = StoreFile::new();
    put(&mut file);
    file
}

/// All eleven kinds in one file (the randomized fuzz target).
fn all_kinds_bytes() -> Vec<u8> {
    let mut file = StoreFile::new();
    for put in [
        put_mbool,
        put_mreal,
        put_mpoint,
        put_mpoints,
        put_mline,
        put_mregion,
        put_line,
        put_points,
        put_region,
        put_periods,
        put_index,
    ] {
        put(&mut file);
    }
    file.to_bytes().expect("combined file serializes")
}

// ---------------------------------------------------------------------
// The exhaustive sweeps (≥1000 mutants per store type).
// ---------------------------------------------------------------------

#[test]
fn sweep_mbool() {
    sweep(&single(put_mbool), "mbool");
}

#[test]
fn sweep_mreal() {
    sweep(&single(put_mreal), "mreal");
}

#[test]
fn sweep_mpoint() {
    sweep(&single(put_mpoint), "mpoint");
}

#[test]
fn sweep_mpoints() {
    sweep(&single(put_mpoints), "mpoints");
}

#[test]
fn sweep_mline() {
    sweep(&single(put_mline), "mline");
}

#[test]
fn sweep_mregion() {
    sweep(&single(put_mregion), "mregion");
}

#[test]
fn sweep_line() {
    sweep(&single(put_line), "line");
}

#[test]
fn sweep_points() {
    sweep(&single(put_points), "points");
}

#[test]
fn sweep_region() {
    sweep(&single(put_region), "region");
}

#[test]
fn sweep_periods() {
    sweep(&single(put_periods), "periods");
}

#[test]
fn sweep_index() {
    sweep(&single(put_index), "index");
}

#[test]
fn combined_file_audits_clean() {
    assert_eq!(exercise(&all_kinds_bytes()), Ok(()));
}

// ---------------------------------------------------------------------
// Randomized multi-byte corruption.
// ---------------------------------------------------------------------

proptest! {
    /// Spray 1–8 random XOR masks across the byte image: the decoder
    /// must never panic, whatever the combination.
    #[test]
    fn random_multibyte_corruption_never_panics(
        flips in proptest::collection::vec((0usize..1 << 20, 1u32..256), 1..8),
    ) {
        let bytes = all_kinds_bytes();
        let mut bad = bytes.clone();
        for (pos, mask) in flips {
            let pos = pos % bad.len();
            bad[pos] ^= mask as u8;
        }
        let _ = exercise(&bad); // must not panic
    }

    /// Random truncation points are always rejected.
    #[test]
    fn random_truncation_always_rejected(cut in 0usize..1 << 20) {
        let bytes = all_kinds_bytes();
        let cut = cut % bytes.len();
        prop_assert!(exercise(&bytes[..cut]).is_err());
    }
}

// ---------------------------------------------------------------------
// Durable snapshot images: checksums stand in front of the decoder.
// ---------------------------------------------------------------------

/// Every single-bit flip in a committed durable file must be detected at
/// the *frame* level (checksum or frame-bounds check) before any byte
/// reaches the structural store-file decoder. The campaign tallies how
/// each flip was caught and asserts the structural decoder count is
/// exactly zero.
#[test]
fn durable_bit_flips_are_caught_by_checksums_not_the_decoder() {
    use mob_storage::{decode_image_strict, DurableStore, MemIo, StoreIo};

    let payload = all_kinds_bytes();
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(128)
        .open(dir.clone())
        .expect("open");
    let mut txn = store.begin();
    txn.put_payload(&payload);
    txn.commit().expect("commit");
    let snap_name = dir
        .list()
        .expect("list")
        .into_iter()
        .find(|n| n.starts_with("snap-"))
        .expect("one snapshot");
    let image = dir.read_file(&snap_name).expect("read snapshot");

    // The intact image decodes to the exact payload.
    let clean = decode_image_strict(&image).expect("clean image verifies");
    assert_eq!(clean.payload, payload);

    let mut by_checksum = 0usize;
    let mut by_frame_bounds = 0usize;
    let mut by_superblock = 0usize;
    let mut reached_decoder = 0usize;
    for pos in 0..image.len() {
        for bit in 0..8u8 {
            let mut bad = image.clone();
            bad[pos] ^= 1 << bit;
            match decode_image_strict(&bad) {
                Err(mob_base::DecodeError::ChecksumMismatch { .. }) => by_checksum += 1,
                Err(mob_base::DecodeError::Truncated { .. })
                | Err(mob_base::DecodeError::CountMismatch { .. }) => by_frame_bounds += 1,
                Err(_) => by_superblock += 1,
                Ok(img) => {
                    // The frames verified — only possible if the flip is
                    // not actually covered, which the design forbids.
                    if img.payload != payload {
                        reached_decoder += 1;
                    } else {
                        panic!("flip at byte {pos} bit {bit} was a checksum fixed point");
                    }
                }
            }
        }
    }
    assert_eq!(
        reached_decoder, 0,
        "no damaged payload may ever reach the structural decoder"
    );
    assert!(by_checksum > 0 && by_frame_bounds + by_superblock < by_checksum);
    let total = image.len() * 8;
    assert_eq!(by_checksum + by_frame_bounds + by_superblock, total);
    println!(
        "durable flip campaign: {total} flips = {by_checksum} by checksum + \
         {by_frame_bounds} by frame bounds + {by_superblock} by superblock parse, \
         0 reached the decoder"
    );
}

/// A corrupt superblock advertising a zero or absurd chunk size must be
/// a `DecodeError`, never a panic or an absurd allocation — and the same
/// for a store-file header page size.
#[test]
fn absurd_sizes_in_headers_are_rejected() {
    use mob_storage::{decode_image_strict, seal_frame, DurableStore, MemIo, StoreIo};

    // Durable superblock: re-seal with a forged chunk_size field so the
    // checksum passes and only validation can save us.
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(128)
        .open(dir.clone())
        .expect("open");
    let mut txn = store.begin();
    txn.put_payload(b"some payload bytes");
    txn.commit().expect("commit");
    let snap_name = dir
        .list()
        .expect("list")
        .into_iter()
        .find(|n| n.starts_with("snap-"))
        .expect("one snapshot");
    let image = dir.read_file(&snap_name).expect("read snapshot");
    for forged in [0u32, u32::MAX] {
        let mut sb = image[12..12 + 32].to_vec();
        sb[20..24].copy_from_slice(&forged.to_le_bytes());
        let mut bad = Vec::new();
        seal_frame(&mut bad, &sb);
        bad.extend_from_slice(&image[12 + 32..]);
        assert!(
            matches!(
                decode_image_strict(&bad),
                Err(mob_base::DecodeError::BadStructure { .. })
            ),
            "chunk size {forged} must be rejected as structural damage"
        );
    }

    // Store-file header: page-size field lives at bytes 8..12.
    let bytes = all_kinds_bytes();
    for forged in [0u32, u32::MAX] {
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&forged.to_le_bytes());
        assert!(
            exercise(&bad).is_err(),
            "store-file page size {forged} must be rejected"
        );
    }
}
