//! Crash-consistency campaign for [`DurableStore`].
//!
//! The recovery invariant under test (DESIGN.md §10): after a crash at
//! **any** write unit of a commit workload, under **any** un-synced-data
//! policy, reopening the surviving directory yields exactly the *old* or
//! the *new* committed payload — never a hybrid, never a panic, never an
//! error.
//!
//! The exhaustive sweep runs the workload once without faults to count
//! its total write units, then replays it once per (crash unit × fault
//! mask) pair — every byte of every write and every metadata operation
//! is a crash point. A randomized campaign on top samples seeds, printed
//! on entry so any failure is reproducible with `MOB_FAULT_SEED`.

// The original campaign drives the pre-WAL commit API on purpose: the
// deprecated entry points stay covered until they are removed. The
// delta/compaction campaign below uses the transactional API.
#![allow(deprecated)]

use mob_base::t;
use mob_core::MovingPoint;
use mob_spatial::pt;
use mob_storage::mapping_store::{save_mpoint, UPointRecord};
use mob_storage::store_file::RootRecord;
use mob_storage::{
    load_array, DurableStore, FaultMask, FaultyIo, Generation, MemIo, StoreFile, StoreIo,
    FAULT_MASKS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CHUNK: usize = 64;

/// A realistic committed payload: a serialized store file holding a
/// moving point with `n` samples.
fn payload(n: usize, offset: f64) -> Vec<u8> {
    let mut file = StoreFile::with_page_size(64).expect("valid page size");
    let samples: Vec<_> = (0..n)
        .map(|i| {
            let k = i as f64;
            (t(k), pt(k * 0.25 + offset, offset - k))
        })
        .collect();
    let stored = save_mpoint(&MovingPoint::from_samples(&samples), file.store_mut());
    file.put("trip", RootRecord::MPoint(stored));
    file.to_bytes().expect("sample serializes")
}

/// Run the two-commit workload against a fault-injecting I/O layer.
/// Returns the wrapper (for unit counting / survivor extraction) and
/// which commits reported success.
fn run_workload(io: FaultyIo, a: &[u8], b: &[u8]) -> (FaultyIo, bool, bool) {
    let mut ok_a = false;
    let mut ok_b = false;
    let io = match DurableStore::create(io, CHUNK) {
        Ok(mut store) => {
            if store.commit(a).is_ok() {
                ok_a = true;
                if store.commit(b).is_ok() {
                    ok_b = true;
                }
            }
            store.into_io()
        }
        Err(_) => unreachable!("create performs no durable writes"),
    };
    (io, ok_a, ok_b)
}

/// The invariant: recover the survivor and check old-or-new-never-hybrid
/// against what the dying process observed.
fn assert_old_or_new(survivor: MemIo, a: &[u8], b: &[u8], ok_a: bool, ok_b: bool, ctx: &str) {
    let (_, recovered) = DurableStore::open(survivor, CHUNK)
        .unwrap_or_else(|e| panic!("{ctx}: recovery errored: {e}"));
    match recovered.as_deref() {
        None => {
            // Nothing committed: only acceptable before the first commit
            // became durable, i.e. the process never saw commit A land.
            assert!(!ok_a, "{ctx}: commit A reported success but vanished");
        }
        Some(p) if p == a => {
            assert!(
                !ok_b,
                "{ctx}: commit B reported success but rolled back to A"
            );
        }
        Some(p) if p == b => {} // newest state: always acceptable
        Some(p) => panic!(
            "{ctx}: recovered a hybrid payload ({} bytes, matches neither A nor B)",
            p.len()
        ),
    }
}

fn run_case(budget: u64, mask: FaultMask, seed: u64, a: &[u8], b: &[u8]) {
    let disk = MemIo::new();
    let faulty = FaultyIo::new(disk, budget, mask, seed);
    let (faulty, ok_a, ok_b) = run_workload(faulty, a, b);
    let survivor = faulty.into_survivor();
    let ctx = format!("crash_after={budget} mask={mask:?} seed={seed}");
    assert_old_or_new(survivor, a, b, ok_a, ok_b, &ctx);
}

#[test]
fn exhaustive_crash_sweep_old_or_new_never_hybrid() {
    let a = payload(8, 1.0);
    let b = payload(11, 2.5);

    // Fault-free run counts the workload's total write units and proves
    // the happy path recovers the newest payload.
    let faulty = FaultyIo::new(MemIo::new(), u64::MAX, FaultMask::KeepUnsynced, 0);
    let (faulty, ok_a, ok_b) = run_workload(faulty, &a, &b);
    assert!(ok_a && ok_b, "fault-free workload must fully succeed");
    let total_units = faulty.write_units();
    let survivor = faulty.into_survivor();
    let (_, recovered) = DurableStore::open(survivor, CHUNK).expect("clean open");
    assert_eq!(recovered.as_deref(), Some(&b[..]));

    // Every crash point × every fault mask. One case per unit is the
    // whole space: the budget is spent deterministically, so two runs
    // with the same triple are byte-identical.
    let mut cases = 0usize;
    for budget in 0..=total_units {
        for (i, mask) in FAULT_MASKS.into_iter().enumerate() {
            run_case(budget, mask, 0x5EED ^ (budget * 3 + i as u64), &a, &b);
            cases += 1;
        }
    }
    assert!(
        cases >= 500,
        "campaign too small: {cases} cases (grow the payloads)"
    );
}

#[test]
fn randomized_crash_sweep_with_printed_seed() {
    // Reproducible-by-seed randomized layer on top of the exhaustive
    // sweep: random payload sizes, budgets and scramble seeds.
    let campaign_seed = match std::env::var("MOB_FAULT_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xC0FFEE),
        Err(_) => {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xC0FFEE);
            now ^ 0x9E37_79B9_7F4A_7C15
        }
    };
    println!("MOB_FAULT_SEED={campaign_seed} (set this env var to reproduce)");
    let mut rng = StdRng::seed_from_u64(campaign_seed);
    for case in 0..200 {
        let a = payload(
            rng.gen_range(2usize..20),
            f64::from(rng.gen_range(0u32..100)) * 0.5,
        );
        // B's offsets live on the quarter grid, A's on the half grid, so
        // the two payloads can never be byte-identical — an identical
        // pair would make the A-vs-B classification below ambiguous.
        let b = payload(
            rng.gen_range(2usize..20),
            f64::from(rng.gen_range(0u32..100)) * 0.5 + 0.25,
        );
        // Probe the whole unit range (plus some beyond, where nothing
        // crashes) with random budgets.
        let budget = rng.gen_range(0u64..6000);
        let mask = FAULT_MASKS[rng.gen_range(0usize..3)];
        let seed = rng.gen_range(0u64..u64::MAX);
        run_case(budget, mask, seed, &a, &b);
        let _ = case;
    }
}

#[test]
fn crash_mid_third_commit_preserves_second() {
    // Deeper history: crash while committing generation 3 must fall
    // back to generation 2, generation 1 having been pruned.
    let a = payload(4, 0.0);
    let b = payload(5, 1.0);
    let c = payload(6, 2.0);
    // Count units of the three-commit workload.
    let probe = FaultyIo::new(MemIo::new(), u64::MAX, FaultMask::KeepUnsynced, 0);
    let mut store = DurableStore::create(probe, CHUNK).expect("create");
    store.commit(&a).expect("commit a");
    store.commit(&b).expect("commit b");
    let units_before_c = store.io().write_units();
    store.commit(&c).expect("commit c");
    let total = store.io().write_units();
    drop(store);

    for budget in units_before_c..total {
        for mask in FAULT_MASKS {
            let faulty = FaultyIo::new(MemIo::new(), budget, mask, budget ^ 0xABCD);
            let mut store = DurableStore::create(faulty, CHUNK).expect("create");
            store.commit(&a).expect("commit a within budget");
            store.commit(&b).expect("commit b within budget");
            let c_ok = store.commit(&c).is_ok();
            let survivor = store.into_io().into_survivor();
            let (_, recovered) =
                DurableStore::open(survivor, CHUNK).expect("recovery must not error");
            let got = recovered.as_deref();
            if c_ok {
                assert_eq!(got, Some(&c[..]), "budget {budget} {mask:?}");
            } else {
                assert!(
                    got == Some(&b[..]) || got == Some(&c[..]),
                    "budget {budget} {mask:?}: third commit crash must leave B or C"
                );
            }
        }
    }
}

#[test]
fn recovery_counts_events_in_metrics() {
    // A torn newest snapshot must surface in `durable.recoveries`.
    let dir = MemIo::new();
    let a = payload(6, 0.0);
    let b = payload(7, 3.0);
    let mut store = DurableStore::create(dir.clone(), CHUNK).expect("create");
    store.commit(&a).expect("commit a");
    // Tear a forged generation-2 commit by truncating its image.
    let faulty = FaultyIo::new(dir.clone(), u64::MAX, FaultMask::KeepUnsynced, 9);
    let mut store2 = DurableStore::open(faulty, CHUNK).expect("reopen").0;
    store2.commit(&b).expect("commit b");
    let snap2: Vec<String> = dir
        .list()
        .expect("list")
        .into_iter()
        .filter(|n| n.starts_with("snap-") && n.contains("0000000000000002"))
        .collect();
    assert_eq!(snap2.len(), 1, "generation 2 snapshot present");
    let image = dir.read_file(&snap2[0]).expect("read snap2");
    dir.write_file(&snap2[0], &image[..image.len() / 2])
        .expect("tear snap2");

    let before = mob_obs::Registry::global().snapshot();
    let (_, recovered) = DurableStore::open(dir, CHUNK).expect("recover");
    assert_eq!(recovered.as_deref(), Some(&a[..]), "fell back to gen 1");
    let after = mob_obs::Registry::global().snapshot();
    if mob_obs::enabled() {
        assert!(
            after.get("durable.recoveries") > before.get("durable.recoveries"),
            "recovery event must be counted"
        );
    }
}

// ---------------------------------------------------------------------
// Delta / compaction crash campaign (WAL commit path).
//
// Workload: three delta commits appending units to two objects, then a
// compaction folding the chain into a full snapshot. Crashing at any
// write unit under any fault mask must recover exactly one of the five
// committed states (generation 0..=4) — never a hybrid chain, never a
// panic, never an error — and any state whose commit reported success
// must survive.
// ---------------------------------------------------------------------

/// One batch of appended units per step, per object.
fn batch(step: u64) -> Vec<(String, Vec<mob_core::UPoint>)> {
    let t0 = step as f64 * 3.0;
    let mk = |x0: f64| {
        let samples: Vec<_> = (0..4)
            .map(|i| {
                let k = t0 + i as f64;
                (
                    t(k),
                    pt(
                        x0 + k,
                        if (i + step as usize).is_multiple_of(2) {
                            k
                        } else {
                            -k
                        },
                    ),
                )
            })
            .collect();
        MovingPoint::from_samples(&samples).units().to_vec()
    };
    vec![("car".to_string(), mk(0.0)), ("bus".to_string(), mk(100.0))]
}

/// Drive the delta workload; returns the I/O wrapper and the highest
/// step (1..=4) that reported success (0 when none did). Steps 1..=3
/// are delta commits of `batch(step)`, step 4 is `compact()`.
fn run_delta_workload(io: FaultyIo) -> (FaultyIo, u64) {
    let mut reached = 0u64;
    let mut store = match DurableStore::options().chunk_size(CHUNK).open(io) {
        Ok(s) => s,
        Err(_) => unreachable!("open of a fresh directory performs no durable writes"),
    };
    'steps: {
        for step in 1..=3u64 {
            let mut txn = store.begin();
            for (name, units) in batch(step - 1) {
                txn.append_units(&name, &units);
            }
            if txn.commit().is_err() {
                break 'steps;
            }
            reached = step;
        }
        if store.compact().is_ok() {
            reached = 4;
        }
    }
    (store.into_io(), reached)
}

/// The units every committed state must hold, per object, computed from
/// the same sample stream via `from_samples` (batched ingestion must be
/// indistinguishable from whole-history construction).
fn delta_states() -> Vec<Option<DeltaState>> {
    let mut states: Vec<Option<DeltaState>> = vec![None];
    let store = MemIo::new();
    let mut s = DurableStore::options()
        .chunk_size(CHUNK)
        .open(store)
        .expect("mem open");
    for step in 1..=3u64 {
        let mut txn = s.begin();
        for (name, units) in batch(step - 1) {
            txn.append_units(&name, &units);
        }
        txn.commit().expect("clean delta commit");
        states.push(Some(snapshot_units(&s.snapshot().expect("gen"))));
    }
    s.compact().expect("clean compact");
    states.push(Some(snapshot_units(&s.snapshot().expect("gen"))));
    states
}

/// One committed state: every object's decoded units, in catalog order.
type DeltaState = Vec<(String, Vec<UPointRecord>)>;

fn snapshot_units(gen: &Generation) -> DeltaState {
    gen.entries()
        .iter()
        .map(|(name, root)| {
            let RootRecord::MPoint(m) = root else {
                panic!("workload stores only mpoints");
            };
            (
                name.clone(),
                load_array::<UPointRecord>(&m.units, gen.store()).expect("clean units"),
            )
        })
        .collect()
}

/// Recovery invariant for the delta workload: the survivor reopens to
/// exactly one committed state, at least as new as the last
/// acknowledged step.
fn assert_delta_old_or_new(
    survivor: MemIo,
    states: &[Option<DeltaState>],
    reached: u64,
    ctx: &str,
) {
    let store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(survivor)
        .unwrap_or_else(|e| panic!("{ctx}: recovery errored: {e}"));
    let g = store.generation();
    assert!(
        (g as usize) < states.len(),
        "{ctx}: recovered generation {g} beyond any committed state"
    );
    assert!(
        g >= reached,
        "{ctx}: step {reached} reported success but recovered generation {g}"
    );
    let snap = store
        .snapshot()
        .unwrap_or_else(|e| panic!("{ctx}: snapshot errored: {e}"));
    let got = snapshot_units(&snap);
    match &states[g as usize] {
        None => assert!(got.is_empty(), "{ctx}: generation 0 must be empty"),
        Some(want) => assert_eq!(
            &got, want,
            "{ctx}: generation {g} content is a hybrid of committed states"
        ),
    }
}

#[test]
fn exhaustive_delta_crash_sweep_old_or_new_never_hybrid() {
    let states = delta_states();

    // Fault-free run counts write units and proves the happy path.
    let faulty = FaultyIo::new(MemIo::new(), u64::MAX, FaultMask::KeepUnsynced, 0);
    let (faulty, reached) = run_delta_workload(faulty);
    assert_eq!(reached, 4, "fault-free workload must fully succeed");
    let total_units = faulty.write_units();
    assert_delta_old_or_new(faulty.into_survivor(), &states, 4, "fault-free");

    let mut cases = 0usize;
    for budget in 0..=total_units {
        for (i, mask) in FAULT_MASKS.into_iter().enumerate() {
            let faulty = FaultyIo::new(
                MemIo::new(),
                budget,
                mask,
                0xD417A ^ (budget * 5 + i as u64),
            );
            let (faulty, reached) = run_delta_workload(faulty);
            let ctx = format!("delta crash_after={budget} mask={mask:?}");
            assert_delta_old_or_new(faulty.into_survivor(), &states, reached, &ctx);
            cases += 1;
        }
    }
    assert!(
        cases >= 200,
        "delta campaign too small: {cases} cases (grow the batches)"
    );
}

#[test]
fn randomized_delta_crash_sweep_with_printed_seed() {
    let campaign_seed = match std::env::var("MOB_FAULT_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xDE17A),
        Err(_) => {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xDE17A);
            now ^ 0x9E37_79B9_7F4A_7C15
        }
    };
    println!("MOB_FAULT_SEED={campaign_seed} (set this env var to reproduce)");
    let states = delta_states();
    let mut rng = StdRng::seed_from_u64(campaign_seed);
    for _ in 0..150 {
        let budget = rng.gen_range(0u64..4000);
        let mask = FAULT_MASKS[rng.gen_range(0usize..3)];
        let seed = rng.gen_range(0u64..u64::MAX);
        let faulty = FaultyIo::new(MemIo::new(), budget, mask, seed);
        let (faulty, reached) = run_delta_workload(faulty);
        let ctx = format!("delta crash_after={budget} mask={mask:?} seed={seed}");
        assert_delta_old_or_new(faulty.into_survivor(), &states, reached, &ctx);
    }
}

#[test]
fn open_sweeps_shadowed_files_left_by_a_mid_prune_crash() {
    // A compaction that died between the snapshot rename and the prune
    // leaves fully-shadowed files behind: deltas at or below the new
    // base and snapshots more than one generation old. Recovery must
    // remove them (like tmp- files) while keeping the previous-snapshot
    // recovery fallback.
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("open");
    for step in 1..=3u64 {
        let mut txn = store.begin();
        for (name, units) in batch(step - 1) {
            txn.append_units(&name, &units);
        }
        txn.commit().expect("delta commit");
    }
    store.compact().expect("compact");
    assert_eq!(store.generation(), 4);
    drop(store);

    // Forge the mid-prune crash remnants (the sweep is name-driven, so
    // torn content must not matter).
    dir.write_file("delta-0000000000000002.mob", b"shadowed torn delta")
        .expect("forge");
    dir.write_file("snap-0000000000000001.mob", b"shadowed torn snap")
        .expect("forge");
    dir.write_file("snap-0000000000000003.mob", b"previous snapshot")
        .expect("forge");
    dir.write_file("tmp-0000000000000005.mob", b"partial shadow write")
        .expect("forge");

    let reopened = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("reopen sweeps, never fails");
    assert_eq!(reopened.generation(), 4);
    let mut names = dir.list().expect("list");
    names.sort();
    assert_eq!(
        names,
        vec![
            "snap-0000000000000003.mob".to_string(),
            "snap-0000000000000004.mob".to_string(),
        ],
        "shadowed delta/snap/tmp files swept; base + fallback kept"
    );

    // The recovered content is exactly the compacted state, and the
    // store keeps working.
    let states = delta_states();
    let got = snapshot_units(&reopened.snapshot().expect("snapshot"));
    assert_eq!(&got, states[4].as_ref().expect("state 4"));
}

#[test]
fn crashed_writer_leftover_delta_is_replaced_on_recommit() {
    // A writer that died after partially writing delta-2 must not poison
    // a successor that re-commits generation 2: the stale file is
    // replaced, and reopening sees the successor's chain.
    let dir = MemIo::new();
    let mut store = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir.clone())
        .expect("open");
    let mut txn = store.begin();
    for (name, units) in batch(0) {
        txn.append_units(&name, &units);
    }
    txn.commit().expect("delta 1");
    // Dead writer's torn delta-2.
    dir.write_file("delta-0000000000000002.mob", b"torn garbage")
        .expect("forge");
    // Successor (same handle; recovery would equally remove the file).
    let mut txn = store.begin();
    for (name, units) in batch(1) {
        txn.append_units(&name, &units);
    }
    txn.commit().expect("delta 2 replaces the leftover");
    let reopened = DurableStore::options()
        .chunk_size(CHUNK)
        .open(dir)
        .expect("reopen");
    assert_eq!(reopened.generation(), 2);
    let states = delta_states();
    let got = snapshot_units(&reopened.snapshot().expect("gen"));
    assert_eq!(&got, states[2].as_ref().expect("state 2"));
}
