//! Properties of the generational MVCC surface.
//!
//! 1. **Snapshot isolation**: a reader that pins `snapshot()` at
//!    generation G sees byte-identical query results no matter how many
//!    delta commits and compactions a concurrent writer performs — on
//!    the in-memory and the filesystem backend, read from real threads
//!    while the writer runs.
//! 2. **Seal equivalence**: ticked ingestion through [`Ingestor`] with
//!    arbitrary seal cadences stores exactly the units one
//!    `MovingPoint::from_samples` call per object would produce — the
//!    paper's ι endpoint cleanup happens at the seams too.

use mob_base::t;
use mob_core::{MovingPoint, Unit};
use mob_storage::mapping_store::UPointRecord;
use mob_storage::store_file::RootRecord;
use mob_storage::{DurableStore, FsIo, Generation, Ingestor, MemIo, StoreIo};
use proptest::prelude::*;
use std::sync::Arc;

/// One object's sample stream: object index, origin, leg count.
type Spec = (u8, f64, f64, usize);

/// Deterministic samples for one spec (strictly increasing instants).
fn samples_for(spec: &Spec) -> Vec<(mob_base::Instant, mob_spatial::Point)> {
    let &(_, x0, y0, legs) = spec;
    (0..=legs)
        .map(|i| {
            let i = i as f64;
            (t(i * 1.5), mob_spatial::pt(x0 + i * 0.75, y0 - i))
        })
        .collect()
}

fn oid(spec: &Spec) -> String {
    format!("obj/{}", spec.0)
}

/// Every object's stored units, in catalog order — the whole readable
/// content of a generation, decoded down to records.
fn generation_units(snap: &Generation) -> Vec<(String, Vec<UPointRecord>)> {
    snap.entries()
        .iter()
        .filter_map(|(name, root)| match root {
            RootRecord::MPoint(m) => Some((
                name.clone(),
                mob_storage::load_array::<UPointRecord>(&m.units, snap.store())
                    .expect("pinned generation decodes"),
            )),
            _ => None,
        })
        .collect()
}

/// Drive `store` through `ticks` delta commits (one sample per object
/// per tick, sealed every tick) and a final compaction, while two
/// reader threads continuously re-read the pinned snapshot and compare
/// against its first answer.
fn writer_cannot_move_a_pinned_snapshot<I: StoreIo>(mut store: DurableStore<I>, specs: &[Spec]) {
    // Base commit: half of every object's stream.
    let mut ingest = Ingestor::new();
    for spec in specs {
        let samples = samples_for(spec);
        for (when, at) in &samples[..samples.len() / 2 + 1] {
            ingest
                .append(&oid(spec), *when, *at)
                .expect("fresh instants");
        }
    }
    let mut txn = store.begin();
    ingest.seal_into(&mut txn);
    txn.commit().expect("base commit");

    let pinned = store.snapshot().expect("pin the base generation");
    let baseline = generation_units(&pinned);
    let pinned_gen = pinned.number();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let readers: Vec<_> = (0..reader_threads())
            .map(|_| {
                let pinned = Arc::clone(&pinned);
                let baseline = &baseline;
                let stop = &stop;
                scope.spawn(move || {
                    let mut reads = 0u32;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) || reads == 0 {
                        assert_eq!(
                            generation_units(&pinned),
                            *baseline,
                            "pinned snapshot changed under a concurrent writer"
                        );
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        // The writer ingests the remaining samples tick by tick.
        for spec in specs {
            let samples = samples_for(spec);
            for (when, at) in &samples[samples.len() / 2 + 1..] {
                ingest
                    .append(&oid(spec), *when, *at)
                    .expect("fresh instants");
                let mut txn = store.begin();
                if ingest.seal_into(&mut txn) > 0 {
                    txn.commit().expect("delta commit");
                }
            }
        }
        store.compact().expect("compact");
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader thread") > 0);
        }
    });

    // The pinned view still answers from its own generation...
    assert_eq!(pinned.number(), pinned_gen);
    assert_eq!(generation_units(&pinned), baseline);
    // ...while a fresh snapshot sees every object's full stream.
    let head = store.snapshot().expect("head snapshot");
    assert!(head.number() > pinned_gen);
    let full = generation_units(&head);
    for spec in specs {
        let whole: Vec<UPointRecord> = MovingPoint::from_samples(&samples_for(spec))
            .units()
            .iter()
            .map(|u| UPointRecord {
                interval: *u.interval(),
                motion: *u.motion(),
            })
            .collect();
        let got = full
            .iter()
            .find(|(name, _)| *name == oid(spec))
            .map(|(_, units)| units.clone());
        assert_eq!(got.as_deref(), Some(&whole[..]), "{}", oid(spec));
    }
}

/// Reader-thread count: honors `MOB_THREADS` (the repo's parallel-test
/// knob), defaulting to 2.
fn reader_threads() -> usize {
    std::env::var("MOB_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

/// Deduplicate specs by object id, keeping the first occurrence —
/// generated streams must target distinct objects.
fn dedup_specs(mut specs: Vec<Spec>) -> Vec<Spec> {
    specs.sort_by_key(|s| s.0);
    specs.dedup_by_key(|s| s.0);
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pinned_snapshots_are_immutable_under_concurrent_ingestion(
        raw in proptest::collection::vec(
            (0u8..6, -20.0f64..20.0, -20.0f64..20.0, 3usize..9),
            1..6,
        ),
    ) {
        let specs = dedup_specs(raw);
        writer_cannot_move_a_pinned_snapshot(
            DurableStore::options().chunk_size(128).open(MemIo::new()).unwrap(),
            &specs,
        );
        let dir = std::env::temp_dir().join(format!(
            "mob-mvcc-{}-{}",
            std::process::id(),
            specs.iter().map(|s| s.3).sum::<usize>()
        ));
        let fs = FsIo::open(&dir).expect("temp dir");
        writer_cannot_move_a_pinned_snapshot(
            DurableStore::options().chunk_size(128).open(fs).unwrap(),
            &specs,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ticked_seals_store_exactly_from_samples(
        raw in proptest::collection::vec(
            (0u8..6, -20.0f64..20.0, -20.0f64..20.0, 2usize..10),
            1..6,
        ),
        cadence in 1usize..5,
    ) {
        let specs = dedup_specs(raw);
        let mut store = DurableStore::options().open(MemIo::new()).unwrap();
        let mut ingest = Ingestor::new();
        let longest = specs.iter().map(|s| s.3 + 1).max().unwrap_or(0);
        for k in 0..longest {
            for spec in &specs {
                let samples = samples_for(spec);
                if let Some((when, at)) = samples.get(k) {
                    ingest.append(&oid(spec), *when, *at).unwrap();
                }
            }
            if k % cadence == cadence - 1 {
                let mut txn = store.begin();
                if ingest.seal_into(&mut txn) > 0 {
                    txn.commit().unwrap();
                }
            }
        }
        let mut txn = store.begin();
        if ingest.seal_into(&mut txn) > 0 {
            txn.commit().unwrap();
        }
        prop_assert_eq!(ingest.pending(), 0);

        let snap = store.snapshot().unwrap();
        for spec in &specs {
            let whole: Vec<UPointRecord> = MovingPoint::from_samples(&samples_for(spec))
                .units()
                .iter()
                .map(|u| UPointRecord { interval: *u.interval(), motion: *u.motion() })
                .collect();
            let got = match snap.get(&oid(spec)) {
                Some(RootRecord::MPoint(m)) => {
                    mob_storage::load_array::<UPointRecord>(&m.units, snap.store()).unwrap()
                }
                other => panic!("missing mpoint for {}: {other:?}", oid(spec)),
            };
            prop_assert_eq!(got, whole, "object {}", oid(spec));
        }
    }
}
