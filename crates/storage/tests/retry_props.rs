//! Property tests for the maintenance [`RetryPolicy`] (DESIGN.md §14):
//!
//! * the backoff schedule is a pure function of (policy, seed) — two
//!   identical policies produce identical schedules;
//! * every delay is bounded by the cap, and jitter only ever *shaves*
//!   (≤ 25%) — it never pushes a delay above the deterministic curve;
//! * a permanent fault gives up on the first attempt without sleeping;
//! * transient faults never exceed the attempt budget, and an op that
//!   heals within the budget succeeds with exactly the expected number
//!   of retries and exactly the scheduled sleeps (virtual time — the
//!   whole suite runs without one real sleep).

use mob_base::error::DecodeError;
use mob_storage::supervisor::{RetryOutcome, RetryPolicy};
use mob_storage::{Clock, VirtualClock, STORAGE_FULL_MARKER};
use proptest::prelude::*;
use std::time::Duration;

/// A policy from generated raw parts (kept in ranges where the
/// doubling curve stays interesting but finite).
fn policy(max_attempts: u32, base_ms: u64, cap_ms: u64, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_delay: Duration::from_millis(base_ms),
        cap: Duration::from_millis(cap_ms.max(base_ms)),
        seed,
    }
}

fn transient_error(n: u32) -> DecodeError {
    DecodeError::Io(format!("transient fault injected: test op {n}"))
}

fn permanent_error() -> DecodeError {
    DecodeError::Io(format!("write snap: {STORAGE_FULL_MARKER}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backoff_is_deterministic_and_bounded(
        max_attempts in 1u32..12,
        base_ms in 1u64..200,
        cap_ms in 1u64..5_000,
        seed in 0u64..u64::MAX,
    ) {
        let p = policy(max_attempts, base_ms, cap_ms, seed);
        let q = policy(max_attempts, base_ms, cap_ms, seed);
        for attempt in 1..=max_attempts {
            let d = p.backoff(attempt);
            // Same inputs, same schedule.
            prop_assert_eq!(d, q.backoff(attempt), "attempt {}", attempt);
            // Bounded by the cap (jitter only shaves).
            let raw = p.raw_backoff(attempt);
            prop_assert!(raw <= p.cap, "raw exceeds cap at attempt {}", attempt);
            prop_assert!(d <= raw, "jitter must never extend the delay");
            // Jitter shaves at most 255/1024 < 25%.
            prop_assert!(
                d >= raw - raw * 255 / 1024,
                "jitter shaved more than 25% at attempt {}: {:?} of {:?}",
                attempt, d, raw
            );
        }
    }

    #[test]
    fn different_seeds_may_differ_but_stay_on_the_curve(
        base_ms in 1u64..100,
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        let a = policy(8, base_ms, 10_000, seed_a);
        let b = policy(8, base_ms, 10_000, seed_b);
        for attempt in 1..=8u32 {
            // Whatever the seeds, both schedules live in the same
            // [raw - 25%, raw] band — seeds change jitter, not shape.
            prop_assert_eq!(a.raw_backoff(attempt), b.raw_backoff(attempt));
            let raw = a.raw_backoff(attempt);
            for d in [a.backoff(attempt), b.backoff(attempt)] {
                prop_assert!(d <= raw && d >= raw - raw * 255 / 1024);
            }
        }
    }

    #[test]
    fn permanent_faults_give_up_immediately(
        max_attempts in 1u32..10,
        seed in 0u64..u64::MAX,
    ) {
        let p = policy(max_attempts, 10, 1_000, seed);
        let clock = VirtualClock::new();
        let mut calls = 0u32;
        let out: RetryOutcome<()> = p.run(&clock, || {
            calls += 1;
            Err(permanent_error())
        });
        match out {
            RetryOutcome::GaveUp { attempts, .. } => {
                prop_assert_eq!(attempts, 1, "permanent ⇒ no second attempt");
            }
            RetryOutcome::Ok { .. } => prop_assert!(false, "op always fails"),
        }
        prop_assert_eq!(calls, 1);
        prop_assert!(clock.slept().is_empty(), "no backoff for permanent faults");
    }

    #[test]
    fn transient_faults_never_exceed_the_attempt_budget(
        max_attempts in 1u32..10,
        base_ms in 1u64..50,
        seed in 0u64..u64::MAX,
    ) {
        let p = policy(max_attempts, base_ms, 1_000, seed);
        let clock = VirtualClock::new();
        let mut calls = 0u32;
        let out: RetryOutcome<()> = p.run(&clock, || {
            calls += 1;
            Err(transient_error(calls))
        });
        match out {
            RetryOutcome::GaveUp { attempts, .. } => {
                prop_assert_eq!(attempts, max_attempts);
            }
            RetryOutcome::Ok { .. } => prop_assert!(false, "op always fails"),
        }
        prop_assert_eq!(calls, max_attempts, "attempt budget is exact");
        // One sleep between consecutive attempts, none after the last.
        let want: Vec<Duration> =
            (1..max_attempts).map(|n| p.backoff(n)).collect();
        prop_assert_eq!(clock.slept(), want);
    }

    #[test]
    fn healing_within_the_budget_succeeds_with_exact_retries(
        max_attempts in 2u32..10,
        fail_first in 1u32..9,
        base_ms in 1u64..50,
        seed in 0u64..u64::MAX,
    ) {
        // Heal strictly inside the budget.
        let fail_first = fail_first.min(max_attempts - 1);
        let p = policy(max_attempts, base_ms, 1_000, seed);
        let clock = VirtualClock::new();
        let mut calls = 0u32;
        let out = p.run(&clock, || {
            calls += 1;
            if calls <= fail_first {
                Err(transient_error(calls))
            } else {
                Ok(calls)
            }
        });
        match out {
            RetryOutcome::Ok { value, retries } => {
                prop_assert_eq!(value, fail_first + 1);
                prop_assert_eq!(retries, fail_first);
            }
            RetryOutcome::GaveUp { .. } => {
                prop_assert!(false, "op heals within the budget")
            }
        }
        let want: Vec<Duration> =
            (1..=fail_first).map(|n| p.backoff(n)).collect();
        prop_assert_eq!(clock.slept(), want, "exactly the scheduled sleeps");
        // Virtual now == total scheduled sleep: no hidden time source.
        prop_assert_eq!(clock.now(), want.iter().sum::<Duration>());
    }
}
