//! Determinism properties of the parallel batch query layer.
//!
//! The claims under test (see DESIGN.md §8):
//!
//! 1. `Relation::snapshot_at` and `Relation::filter_inside` produce
//!    results **byte-identical** to the sequential (1-thread) run for
//!    every thread count, on both access paths — in-memory mappings and
//!    storage-backed `MPointRef` views.
//! 2. `batch_at_instant` over a sorted probe set agrees exactly with
//!    per-call `at_instant`, again on both access paths.

use mob::core::{batch_at_instant, UnitSeq};
use mob::par::Pool;
use mob::prelude::*;
use mob::rel::{planes_relation, save_relation, OnError, ScanOpts};
use mob::storage::mapping_store::save_mpoint;
use mob::storage::{open_mpoint, PageStore, Verify};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Well-conditioned instants on a quarter-integer grid.
fn instant_strategy() -> impl Strategy<Value = f64> {
    (-40i32..80).prop_map(|k| k as f64 / 4.0)
}

/// A random moving point from increasing samples.
fn mpoint_strategy() -> impl Strategy<Value = MovingPoint> {
    proptest::collection::vec((-100i32..100, -100i32..100), 2..8).prop_map(|steps| {
        let samples: Vec<(Instant, Point)> = steps
            .iter()
            .enumerate()
            .map(|(k, (x, y))| (t(k as f64), pt(*x as f64, *y as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    })
}

/// A sorted (possibly repeating) probe set.
fn probes_strategy() -> impl Strategy<Value = Vec<Instant>> {
    proptest::collection::vec(instant_strategy(), 0..24).prop_map(|mut xs| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("grid instants are not NaN"));
        xs.into_iter().map(t).collect()
    })
}

/// A random axis-aligned rectangle region on an integer grid.
fn rect_region_strategy() -> impl Strategy<Value = Region> {
    (-20i32..20, -20i32..20, 1i32..24, 1i32..24).prop_map(|(x, y, w, h)| {
        Region::from_ring(rect_ring(
            x as f64,
            y as f64,
            (x + w) as f64,
            (y + h) as f64,
        ))
    })
}

/// A small random fleet relation.
fn fleet_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(mpoint_strategy(), 1..10).prop_map(|flights| {
        planes_relation(
            flights
                .into_iter()
                .enumerate()
                .map(|(k, m)| (format!("A{}", k % 3), format!("F{k:02}"), m))
                .collect(),
        )
    })
}

/// The `id` column of a relation, for comparing filtered relations that
/// differ only in their `moving(point)` backend.
fn ids(rel: &Relation) -> Vec<String> {
    let id = rel.attr("id");
    rel.tuples()
        .iter()
        .filter_map(|tup| tup.at(id).as_str().map(str::to_owned))
        .collect()
}

// ---------------------------------------------------------------------
// batch_at_instant ≡ per-call at_instant
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batch_at_instant_agrees_with_per_call(
        m in mpoint_strategy(),
        probes in probes_strategy(),
    ) {
        // In-memory mapping.
        let batch = batch_at_instant(&m, &probes);
        prop_assert_eq!(batch.len(), probes.len());
        for (k, ti) in probes.iter().enumerate() {
            prop_assert_eq!(batch[k], m.at_instant(*ti));
        }
        // Storage-backed view: same values, and the merge scan never
        // decodes more units than it has probes or units.
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).expect("saved mapping reopens");
        view.reset_counters();
        let batch_view = batch_at_instant(&view, &probes);
        prop_assert_eq!(batch_view, batch);
        let bound = (probes.len() as u64).min(UnitSeq::len(&m) as u64);
        prop_assert!(view.units_decoded() <= bound,
            "decoded {} units for {} probes over {} units",
            view.units_decoded(), probes.len(), UnitSeq::len(&m));
    }
}

// ---------------------------------------------------------------------
// Parallel relation scans ≡ sequential, on both backends
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_is_deterministic_across_threads_and_backends(
        rel in fleet_strategy(),
        x in instant_strategy(),
    ) {
        let ti = t(x);
        let expect = rel.snapshot_at(ti, &ScanOpts::new().threads(1)).unwrap().0;
        // Same relation, any thread count.
        for threads in 2..=4usize {
            let got = rel.snapshot_at(ti, &ScanOpts::new().threads(threads)).unwrap().0;
            prop_assert_eq!(&got, &expect, "{} threads", threads);
        }
        // Storage-backed relation: snapshots land in plain `point`
        // attributes, so the results must be *equal*, not just alike.
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).expect("fleet saves");
        let opened = Relation::from_stored(&stored, Arc::new(store), OnError::Fail).expect("fleet reopens");
        for threads in 1..=4usize {
            let got = opened.snapshot_at(ti, &ScanOpts::new().threads(threads)).unwrap().0;
            prop_assert_eq!(&got, &expect, "stored, {} threads", threads);
        }
    }

    #[test]
    fn filter_inside_is_deterministic_across_threads_and_backends(
        rel in fleet_strategy(),
        zone in rect_region_strategy(),
    ) {
        let expect = rel.filter_inside("flight", &zone, &ScanOpts::new().threads(1)).expect("flight is an attribute").0;
        for threads in 2..=4usize {
            let got = rel.filter_inside("flight", &zone, &ScanOpts::new().threads(threads)).expect("flight is an attribute").0;
            prop_assert_eq!(&got, &expect, "{} threads", threads);
        }
        // Stored backend keeps `MPointRef` attributes, so compare by
        // the selected tuple identities.
        let mut store = PageStore::new();
        let stored = save_relation(&rel, &mut store).expect("fleet saves");
        let opened = Relation::from_stored(&stored, Arc::new(store), OnError::Fail).expect("fleet reopens");
        for threads in 1..=4usize {
            let got = opened.filter_inside("flight", &zone, &ScanOpts::new().threads(threads)).expect("flight is an attribute").0;
            prop_assert_eq!(ids(&got), ids(&expect), "stored, {} threads", threads);
        }
    }
}

// ---------------------------------------------------------------------
// Pool-level determinism on relation-sized inputs
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chunked_map_is_order_preserving(
        items in proptest::collection::vec(-1000i64..1000, 0..300),
        threads in 1usize..6,
    ) {
        let expect: Vec<i64> = items.iter().map(|x| x * 7 - 3).collect();
        let got = Pool::with_threads(threads).chunked_map(&items, |x| x * 7 - 3);
        prop_assert_eq!(got, expect);
    }
}
