//! Semantic cross-checks: the discrete operations must agree with the
//! abstract model's semantics, verified by dense sampling (the σ
//! functions of Sec 3). These are the Table 3 (T3) experiments.

use mob::core::semantics::{max_abs_error, sample_deftime};
use mob::gen::{storm, taxi_fleet};
use mob::prelude::*;

/// Lifted distance equals pointwise distance of evaluations.
#[test]
fn t3_distance_semantics() {
    let taxis = taxi_fleet(3, 2, 12);
    let (a, b) = (&taxis[0], &taxis[1]);
    let d = a.distance(b);
    for ti in sample_deftime(&d, 7) {
        let expected = match (a.at_instant(ti), b.at_instant(ti)) {
            (Val::Def(p), Val::Def(q)) => p.distance(q),
            _ => panic!("distance defined where an argument is not"),
        };
        let got = d.at_instant(ti).unwrap();
        assert!(
            got.approx_eq(expected, 1e-9 * expected.get().max(1.0)),
            "at {ti:?}: {got} vs {expected}"
        );
    }
}

/// Lifted speed equals the norm of the velocity.
#[test]
fn t3_speed_semantics() {
    let taxi = &taxi_fleet(5, 1, 10)[0];
    let s = taxi.speed();
    // Sample two nearby instants and compare with finite differences.
    for u in taxi.units() {
        let iv = u.interval();
        let (t0, t1) = (iv.interior_instant(), iv.interior_instant() + r(1e-6));
        if !iv.contains(&t1) {
            continue;
        }
        let p0 = taxi.at_instant(t0).unwrap();
        let p1 = taxi.at_instant(t1).unwrap();
        let fd = p0.distance(p1) / r(1e-6);
        let got = s.at_instant(t0).unwrap();
        assert!(got.approx_eq(fd, 1e-3 * fd.get().max(1.0)), "{got} vs {fd}");
    }
}

/// `atperiods` behaves as set-restriction of the function graph.
#[test]
fn t3_atperiods_semantics() {
    let taxi = &taxi_fleet(9, 1, 12)[0];
    let p = Periods::from_unmerged(vec![
        Interval::closed(t(1.0), t(3.0)),
        Interval::open(t(6.0), t(8.0)),
    ]);
    let restricted = taxi.atperiods(&p);
    for k in 0..=120 {
        let ti = t(k as f64 * 0.1);
        let expected = if p.contains(&ti) {
            taxi.at_instant(ti)
        } else {
            Val::Undef
        };
        assert_eq!(restricted.at_instant(ti), expected, "at {ti:?}");
    }
}

/// The moving-bool algebra matches pointwise boolean logic.
#[test]
fn t3_mbool_semantics() {
    let hurricane = storm(13, 6, 10);
    let taxis = taxi_fleet(13, 2, 10);
    let in0 = hurricane.contains_moving_point(&taxis[0]);
    let in1 = hurricane.contains_moving_point(&taxis[1]);
    let and = in0.and(&in1);
    let or = in0.or(&in1);
    let not = in0.not();
    for k in 0..=100 {
        let ti = t(k as f64 * 0.1);
        match (in0.at_instant(ti), in1.at_instant(ti)) {
            (Val::Def(x), Val::Def(y)) => {
                assert_eq!(and.at_instant(ti), Val::Def(x && y));
                assert_eq!(or.at_instant(ti), Val::Def(x || y));
                assert_eq!(not.at_instant(ti), Val::Def(!x));
            }
            _ => {
                assert!(and.at_instant(ti).is_undef());
                assert!(or.at_instant(ti).is_undef());
            }
        }
    }
}

/// The quadratic `ureal` represents the area development exactly.
#[test]
fn t3_area_exactness() {
    let hurricane = storm(21, 8, 12);
    let area = hurricane.area();
    let err = max_abs_error(
        &area,
        |ti| match hurricane.at_instant(ti) {
            Val::Def(reg) => reg.area(),
            Val::Undef => Real::ZERO,
        },
        9,
    );
    assert!(err.get() < 1e-6, "max area error {err}");
}

/// `initial`/`final` are the boundary values of the function graph.
#[test]
fn t3_initial_final() {
    let taxi = &taxi_fleet(33, 1, 6)[0];
    let init = taxi.initial().unwrap();
    let fin = taxi.final_value().unwrap();
    assert_eq!(Val::Def(init.value), taxi.at_instant(init.instant));
    assert_eq!(Val::Def(fin.value), taxi.at_instant(fin.instant));
    assert_eq!(init.instant, taxi.deftime().minimum().unwrap());
    assert_eq!(fin.instant, taxi.deftime().maximum().unwrap());
}

/// Lifted comparison `mreal < mreal` agrees with pointwise comparison.
#[test]
fn t3_mreal_comparison_semantics() {
    let taxis = taxi_fleet(51, 3, 8);
    let d01 = taxis[0].distance(&taxis[1]);
    let d02 = taxis[0].distance(&taxis[2]);
    let lt = mob::core::moving::mreal::mreal_lt(&d01, &d02);
    for k in 0..=80 {
        let ti = t(k as f64 * 0.1);
        if let (Val::Def(a), Val::Def(b)) = (d01.at_instant(ti), d02.at_instant(ti)) {
            if (a - b).abs().get() < 1e-6 {
                continue; // too close to a crossing for a robust check
            }
            assert_eq!(lt.at_instant(ti), Val::Def(a < b), "at {ti:?}: {a} vs {b}");
        }
    }
}

/// Figure 1's shape: a moving value is its slices; slice boundaries are
/// exactly the unit intervals and evaluation is continuous inside them.
#[test]
fn figure1_sliced_shape() {
    let taxi = &taxi_fleet(61, 1, 8)[0];
    for u in taxi.units() {
        let iv = u.interval();
        let mid = iv.interior_instant();
        // Mapping evaluation inside a unit equals the unit's ι.
        assert_eq!(taxi.at_instant(mid), Val::Def(u.at(mid)));
    }
    // Units partition deftime: their union equals deftime.
    let union: Periods = taxi.units().iter().map(|u| *u.interval()).collect();
    assert_eq!(union, taxi.deftime());
}
