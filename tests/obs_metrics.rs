//! Registry determinism: the same Section-5 workload records the same
//! metric totals no matter how many worker threads execute it.
//!
//! The comparison uses [`Snapshot::deterministic`], which drops the
//! scheduling-dependent `par.*` partition counters and `*.ns` timings;
//! everything else — header reads, unit decodes, cache hits, probe and
//! pair counts — must be **identical** across `threads = 1 / 2 / 4`,
//! exactly as DESIGN.md §9 claims.
//!
//! This binary deliberately contains a *single* proptest: the metrics
//! registry is process-global, and delta-based assertions would race
//! with any other `#[test]` running concurrently in the same process.

use mob::core::batch_at_instant;
use mob::obs::Registry;
use mob::prelude::*;
use mob::rel::{planes_relation, save_relation, OnError, ScanOpts};
use mob::storage::mapping_store::save_mpoint;
use mob::storage::{open_mpoint, PageStore, Verify};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Strategies (mirroring tests/parallel_scans.rs)
// ---------------------------------------------------------------------

/// Well-conditioned instants on a quarter-integer grid.
fn instant_strategy() -> impl Strategy<Value = f64> {
    (-40i32..80).prop_map(|k| k as f64 / 4.0)
}

/// A random moving point from increasing samples.
fn mpoint_strategy() -> impl Strategy<Value = MovingPoint> {
    proptest::collection::vec((-100i32..100, -100i32..100), 2..8).prop_map(|steps| {
        let samples: Vec<(Instant, Point)> = steps
            .iter()
            .enumerate()
            .map(|(k, (x, y))| (t(k as f64), pt(*x as f64, *y as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    })
}

/// A sorted (possibly repeating) probe set.
fn probes_strategy() -> impl Strategy<Value = Vec<Instant>> {
    proptest::collection::vec(instant_strategy(), 0..24).prop_map(|mut xs| {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("grid instants are not NaN"));
        xs.into_iter().map(t).collect()
    })
}

/// A random axis-aligned rectangle region on an integer grid.
fn rect_region_strategy() -> impl Strategy<Value = Region> {
    (-20i32..20, -20i32..20, 1i32..24, 1i32..24).prop_map(|(x, y, w, h)| {
        Region::from_ring(rect_ring(
            x as f64,
            y as f64,
            (x + w) as f64,
            (y + h) as f64,
        ))
    })
}

/// A small random fleet relation.
fn fleet_strategy() -> impl Strategy<Value = Relation> {
    proptest::collection::vec(mpoint_strategy(), 1..8).prop_map(|flights| {
        planes_relation(
            flights
                .into_iter()
                .enumerate()
                .map(|(k, m)| (format!("A{}", k % 3), format!("F{k:02}"), m))
                .collect(),
        )
    })
}

/// The `id` column, for comparing relations whose `moving(point)`
/// attributes live behind different backends.
fn ids(rel: &Relation) -> Vec<String> {
    let id = rel.attr("id");
    rel.tuples()
        .iter()
        .filter_map(|tup| tup.at(id).as_str().map(str::to_owned))
        .collect()
}

// ---------------------------------------------------------------------
// The property
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn registry_totals_identical_across_thread_counts(
        rel in fleet_strategy(),
        m in mpoint_strategy(),
        probes in probes_strategy(),
        x in instant_strategy(),
        zone in rect_region_strategy(),
    ) {
        if !mob::obs::enabled() {
            // MOB_OBS=0: nothing is recorded, so there is nothing to
            // compare. The disabled contract has its own binary
            // (tests/obs_disabled.rs).
            return;
        }
        let ti = t(x);

        let mut store = PageStore::new();
        let stored_rel = save_relation(&rel, &mut store).expect("fleet saves");
        let stored_m = save_mpoint(&m, &mut store);
        let store = Arc::new(store);
        let opened =
            Relation::from_stored(&stored_rel, Arc::clone(&store), OnError::Fail).expect("fleet reopens");

        let reg = Registry::global();
        let mut baseline = None;
        for threads in [1usize, 2, 4] {
            let opts = ScanOpts::new().threads(threads);
            // A fresh view per run: `MappingView` keeps a persistent
            // unit cache, so reusing one view would make later runs
            // cheaper (fewer `view.units_decoded` / more
            // `view.cache_hits`) and the comparison vacuous. Opening
            // happens *outside* the snapshot bracket.
            let view =
                open_mpoint(&stored_m, &store, Verify::Full).expect("saved mapping reopens");

            let before = reg.snapshot();
            let snap_mem = rel.snapshot_at(ti, &opts).unwrap().0;
            let snap_store = opened.snapshot_at(ti, &opts).unwrap().0;
            let hits = opened
                .filter_inside("flight", &zone, &opts)
                .expect("flight is an attribute")
                .0;
            let batch = batch_at_instant(&view, &probes);
            let delta = reg.snapshot().delta(&before).deterministic();

            // Snapshots land in plain `point` attributes, so the two
            // backends must agree exactly.
            prop_assert_eq!(&snap_store, &snap_mem, "threads={}", threads);

            match &baseline {
                None => baseline = Some((delta, snap_mem, ids(&hits), batch)),
                Some((delta1, snap1, hits1, batch1)) => {
                    prop_assert_eq!(&snap_mem, snap1, "snapshot, threads={}", threads);
                    prop_assert_eq!(&ids(&hits), hits1, "filter, threads={}", threads);
                    prop_assert_eq!(&batch, batch1, "batch, threads={}", threads);
                    prop_assert_eq!(
                        &delta, delta1,
                        "metric totals diverged at threads={}: [{}] vs threads=1 [{}]",
                        threads, delta, delta1
                    );
                }
            }
        }
    }
}
