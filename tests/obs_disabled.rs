//! The observability kill switch: with `MOB_OBS=0` the layer must be
//! invisible. Two contracts are under test:
//!
//! 1. **Zero footprint** — no counter or histogram is *ever* registered
//!    (the counter-of-counters check), spans record nothing into the
//!    thread shard, and `explain` degrades to an uncaptured report.
//! 2. **Byte-identical results** — every Section-5 result is exactly
//!    what the spec-level ground truth says, on both access paths and
//!    at every thread count, with the instrumentation switched off.
//!
//! This binary deliberately contains a *single* `#[test]`: the kill
//! switch is read once per process (on first registry use), so it must
//! be set before anything touches `mob::obs` — and no other test in the
//! same process may expect a live registry.

use mob::core::{batch_at_instant, UnitSeq};
use mob::obs::{Registry, OBS_ENV};
use mob::prelude::*;
use mob::rel::{planes_relation, save_relation, OnError, ScanOpts};
use mob::storage::mapping_store::save_mpoint;
use mob::storage::{open_mpoint, PageStore, Verify};
use std::sync::Arc;

#[test]
fn disabled_observability_registers_nothing_and_changes_nothing() {
    // Must happen before the first `Registry::global()` call anywhere
    // in this process; the switch is latched on first use.
    std::env::set_var(OBS_ENV, "0");
    assert!(
        !mob::obs::enabled(),
        "MOB_OBS=0 must switch the registry off"
    );

    // ------------------------------------------------------------------
    // Section-5 workload with ground truth.
    // ------------------------------------------------------------------

    // A plane climbing north-east, sampled at three instants — the
    // `at_instant` answers below are spec-level arithmetic, not
    // derived from a reference run.
    let flight = MovingPoint::from_samples(&[
        (t(0.0), pt(0.0, 0.0)),
        (t(1.0), pt(3.0, 4.0)),
        (t(2.0), pt(3.0, 10.0)),
    ]);
    assert_eq!(flight.at_instant(t(0.5)).unwrap(), pt(1.5, 2.0));
    assert_eq!(flight.at_instant(t(1.5)).unwrap(), pt(3.0, 7.0));

    // batch_at_instant ≡ per-call at_instant, memory and stored.
    let probes: Vec<Instant> = (0..9).map(|k| t(f64::from(k) * 0.25)).collect();
    let per_call: Vec<Val<Point>> = probes.iter().map(|ti| flight.at_instant(*ti)).collect();
    assert_eq!(batch_at_instant(&flight, &probes), per_call);

    let mut store = PageStore::new();
    let stored_m = save_mpoint(&flight, &mut store);
    let view = open_mpoint(&stored_m, &store, Verify::Full).expect("saved mapping reopens");
    assert_eq!(batch_at_instant(&view, &probes), per_call);
    assert_eq!(view.at_instant(t(0.5)), Val::Def(pt(1.5, 2.0)));

    // Relation scans: equal across thread counts and backends.
    let east = MovingPoint::from_samples(&[(t(0.0), pt(10.0, 0.0)), (t(2.0), pt(14.0, 0.0))]);
    let rel = planes_relation(vec![
        ("AA".to_string(), "F00".to_string(), flight.clone()),
        ("BA".to_string(), "F01".to_string(), east),
    ]);
    let stored_rel = save_relation(&rel, &mut store).expect("fleet saves");
    let opened =
        Relation::from_stored(&stored_rel, Arc::new(store), OnError::Fail).expect("fleet reopens");

    let probe = t(1.0);
    let zone = Region::from_ring(rect_ring(-1.0, -1.0, 4.0, 5.0));
    let expect_snap = rel.snapshot_at(probe, &ScanOpts::default()).unwrap().0;
    for threads in [1usize, 2, 4] {
        let opts = ScanOpts::new().threads(threads);
        assert_eq!(rel.snapshot_at(probe, &opts).unwrap().0, expect_snap);
        assert_eq!(opened.snapshot_at(probe, &opts).unwrap().0, expect_snap);
        let hits = rel
            .filter_inside("flight", &zone, &opts)
            .expect("flight is an attribute")
            .0;
        // Only F00 ever enters the zone around the origin.
        assert_eq!(hits.tuples().len(), 1);
        assert_eq!(hits.tuples()[0].at(rel.attr("id")).as_str(), Some("F00"));
    }

    // Asking for stats still works — it just reports an empty snapshot.
    let (_, stats) = rel
        .snapshot_at(probe, &ScanOpts::new().threads(2).stats(true))
        .unwrap();
    let stats = stats.expect("stats(true) always yields QueryStats");
    assert_eq!(stats.tuples, 2);
    assert!(
        stats.metrics.is_empty(),
        "disabled registry must yield empty metric deltas"
    );

    // ------------------------------------------------------------------
    // Counter-of-counters: all of the above registered *nothing*.
    // ------------------------------------------------------------------
    let reg = Registry::global();
    assert_eq!(
        reg.num_counters(),
        0,
        "disabled registry must never allocate a counter"
    );
    assert_eq!(
        reg.num_histograms(),
        0,
        "disabled registry must never allocate a histogram"
    );
    assert!(reg.snapshot().is_empty());

    // Spans recorded nothing into the thread-local shard...
    assert!(
        mob::obs::thread_span_stats().is_empty(),
        "disabled spans must not accumulate shard entries"
    );

    // ...and EXPLAIN degrades gracefully: the closure still runs, the
    // report says it captured nothing.
    let (value, report) = mob::obs::explain("probe", || 41 + 1);
    assert_eq!(value, 42);
    assert!(!report.captured, "disabled explain must not capture");
    assert!(report.root.children.is_empty());
}
