//! Query-over-storage: the in-memory `Mapping` and the storage-backed
//! `MappingView` are two implementations of the same `UnitSeq` access
//! layer, so every Section-5 algorithm — and every Section-2 query built
//! on top — must produce **identical** results on both.
//!
//! * Property tests: `at_instant` agrees at random instants (including
//!   ⊥ outside the deftime) for `moving(point)`, `moving(real)` and
//!   `moving(region)`.
//! * End-to-end: the Section-2 queries run over a relation opened with
//!   `Relation::from_stored` (flights left as lazy `MPointRef`s) and
//!   over the fully materialized relation, with identical answers.

use mob::core::UnitSeq;
use mob::prelude::*;
use mob::rel::{
    close_encounters, load_relation, long_flights, planes_relation, save_relation, storm_exposure,
    OnError,
};
use mob::storage::mapping_store::{save_mpoint, save_mreal, save_mregion};
use mob::storage::{open_mpoint, open_mreal, open_mregion, PageStore, Verify};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Probe instants on a quarter grid, deliberately overshooting the
/// sample span on both sides so ⊥ cases are exercised.
fn probe_strategy() -> impl Strategy<Value = f64> {
    (-20i32..60).prop_map(|k| k as f64 / 4.0)
}

/// A random moving point from increasing integer samples over [0, n].
fn mpoint_strategy() -> impl Strategy<Value = MovingPoint> {
    proptest::collection::vec((-100i32..100, -100i32..100), 2..9).prop_map(|steps| {
        let samples: Vec<(Instant, Point)> = steps
            .iter()
            .enumerate()
            .map(|(k, (x, y))| (t(k as f64), pt(*x as f64, *y as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    })
}

/// A random moving region: rectangles interpolated over unit intervals.
fn mregion_strategy() -> impl Strategy<Value = MovingRegion> {
    proptest::collection::vec((-20i32..20, -20i32..20, 1i32..10, 1i32..10), 2..6).prop_map(
        |rects| {
            let rings: Vec<Ring> = rects
                .iter()
                .map(|(x, y, w, h)| {
                    rect_ring(*x as f64, *y as f64, (*x + *w) as f64, (*y + *h) as f64)
                })
                .collect();
            let units: Vec<URegion> = rings
                .windows(2)
                .enumerate()
                .map(|(k, w)| {
                    let last = k == rings.len() - 2;
                    let iv = Interval::new(t(k as f64), t(k as f64 + 1.0), true, last);
                    URegion::interpolate(iv, &w[0], &w[1]).expect("rect morphs are valid")
                })
                .collect();
            Mapping::try_new(units).expect("consecutive unit intervals are disjoint")
        },
    )
}

// ---------------------------------------------------------------------
// Property tests: both backends agree
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn mpoint_at_instant_agrees(m in mpoint_strategy(), probes in proptest::collection::vec(probe_strategy(), 1..16)) {
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).expect("saved mapping opens");
        for p in probes {
            let ti = t(p);
            prop_assert_eq!(m.at_instant(ti), view.at_instant(ti));
            prop_assert_eq!(m.present_at(ti), view.present_at(ti));
        }
        prop_assert_eq!(m.deftime(), view.deftime());
    }

    #[test]
    fn mreal_at_instant_agrees(m in mpoint_strategy(), probes in proptest::collection::vec(probe_strategy(), 1..16)) {
        // Derive a moving real (the speed) so units exercise the UReal record.
        let speed: MovingReal = m.speed();
        let mut store = PageStore::new();
        let stored = save_mreal(&speed, &mut store);
        let view = open_mreal(&stored, &store, Verify::Full).expect("saved mapping opens");
        for p in probes {
            let ti = t(p);
            prop_assert_eq!(speed.at_instant(ti), view.at_instant(ti));
        }
        prop_assert_eq!(speed.deftime(), view.deftime());
    }

    #[test]
    fn mregion_at_instant_agrees(m in mregion_strategy(), probes in proptest::collection::vec(probe_strategy(), 1..8)) {
        let mut store = PageStore::new();
        let stored = save_mregion(&m, &mut store);
        let view = open_mregion(&stored, &store, Verify::Full).expect("saved mapping opens");
        for p in probes {
            let ti = t(p);
            prop_assert_eq!(m.at_instant(ti), view.at_instant(ti));
        }
        prop_assert_eq!(m.deftime(), view.deftime());
    }

    #[test]
    fn mpoint_at_periods_agrees(m in mpoint_strategy()) {
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let view = open_mpoint(&stored, &store, Verify::Full).expect("saved mapping opens");
        let periods = Periods::from_unmerged(vec![
            Interval::closed(t(0.5), t(2.25)),
            Interval::closed_open(t(4.0), t(5.5)),
        ]);
        prop_assert_eq!(m.atperiods(&periods), view.at_periods(&periods));
        prop_assert_eq!(UnitSeq::materialize(&view), m);
    }
}

// ---------------------------------------------------------------------
// End-to-end: Section-2 queries on both backends
// ---------------------------------------------------------------------

fn fleet() -> Relation {
    planes_relation(
        mob::gen::plane_fleet(0xA11CE, 12, 24)
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    )
}

#[test]
fn section2_queries_identical_on_both_backends() {
    let mem = fleet();
    let mut store = PageStore::new();
    let stored = save_relation(&mem, &mut store).expect("fleet serializes");
    let store = Arc::new(store);

    // Opening the stored relation for query-in-place runs one
    // structural verification scan per flight (untrusted bytes are never
    // probed blindly), then flights stay as lazy MPointRef handles.
    store.reset_counters();
    let lazy = Relation::from_stored(&stored, store.clone(), OnError::Fail).expect("opens");
    let open_cost = store.pages_read();
    assert!(lazy.tuples()[0].at(2).as_mpoint_ref().is_some());

    // A point query afterwards touches only O(log n) of what open
    // touched once — the lazy handles never re-read whole flights.
    store.reset_counters();
    let probe = lazy.tuples()[0].at(2).as_mpoint_seq().expect("mpoint attr");
    let _ = probe.at_instant(t(1.0));
    assert!(
        store.pages_read() * 4 < open_cost.max(4),
        "probe read {} pages vs {} at open — lazy handle re-materialized?",
        store.pages_read(),
        open_cost
    );

    // The fully materialized path (the old behaviour).
    let eager = load_relation(&stored, &store).expect("loads");

    // Query 1: long flights.
    let q1_mem = long_flights(&mem, "Lufthansa", 1500.0);
    let q1_eager = long_flights(&eager, "Lufthansa", 1500.0);
    let q1_lazy = long_flights(&lazy, "Lufthansa", 1500.0);
    assert_eq!(q1_mem, q1_eager);
    assert_eq!(q1_mem, q1_lazy);

    // Query 2: close encounters (the spatio-temporal join).
    let q2_mem = close_encounters(&mem, 40.0);
    let q2_lazy = close_encounters(&lazy, 40.0);
    assert_eq!(q2_mem, q2_lazy);

    // Query 3: storm exposure (lifted inside against a moving region).
    let storm = mob::gen::storm(0x5702, 6, 10);
    let q3_mem = storm_exposure(&mem, &storm);
    let q3_lazy = storm_exposure(&lazy, &storm);
    assert_eq!(q3_mem, q3_lazy);
}

#[test]
fn closest_approach_seq_mixes_backends() {
    // One in-memory flight against one storage-backed flight.
    let a = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(2.0), pt(2.0, 0.0))]);
    let b = MovingPoint::from_samples(&[(t(0.0), pt(2.0, 0.0)), (t(2.0), pt(0.0, 0.0))]);
    let mut store = PageStore::new();
    let stored = save_mpoint(&b, &mut store);
    let view = open_mpoint(&stored, &store, Verify::Full).expect("saved mapping opens");
    let mixed = mob::rel::closest_approach_seq(&a, &view);
    assert_eq!(mixed, mob::rel::closest_approach(&a, &b));
    assert_eq!(mixed, Val::Def(r(0.0)));
}
