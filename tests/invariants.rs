//! Adversarial invariant tests: feed random (often invalid) structures
//! to the validating constructors and check that they either reject the
//! input or produce a value that satisfies the carrier-set conditions.
//! These tests certify the "unique and minimal representation" story of
//! Section 3 under hostile inputs, not just on happy paths.

use mob::core::{Coincidence, PointMotion, UPoints, URegion};
use mob::prelude::*;
use proptest::prelude::*;

/// The exact critical-time validation catches violations confined to an
/// arbitrarily narrow sub-interval — a fixed sampling grid would miss
/// this one entirely (the overlap lives in (0.015, 0.035), far from any
/// of the 1/6-spaced samples a naive validator would probe).
#[test]
fn narrow_interior_violation_is_caught_exactly() {
    use mob::core::{MSeg, ULine};
    let iv = Interval::closed(t(0.0), t(1.0));
    // A stationary segment [0,1] on the x-axis.
    let fixed = MSeg::between(
        t(0.0),
        pt(0.0, 0.0),
        pt(1.0, 0.0),
        t(1.0),
        pt(0.0, 0.0),
        pt(1.0, 0.0),
    )
    .unwrap();
    // A fast collinear segment racing left: overlaps `fixed` only during
    // t ∈ (0.015, 0.035).
    let racer = MSeg::between(
        t(0.0),
        pt(2.5, 0.0),
        pt(3.5, 0.0),
        t(1.0),
        pt(-97.5, 0.0),
        pt(-96.5, 0.0),
    )
    .unwrap();
    let err = ULine::try_new(iv, vec![fixed, racer]);
    assert!(err.is_err(), "narrow collinear overlap must be rejected");
    // The same racer shifted upward never overlaps: accepted.
    let high = MSeg::between(
        t(0.0),
        pt(2.5, 1.0),
        pt(3.5, 1.0),
        t(1.0),
        pt(-97.5, 1.0),
        pt(-96.5, 1.0),
    )
    .unwrap();
    assert!(ULine::try_new(iv, vec![fixed, high]).is_ok());
}

// ---------------------------------------------------------------------
// Strategies for deliberately messy inputs
// ---------------------------------------------------------------------

fn grid_point() -> impl Strategy<Value = Point> {
    (-6i32..6, -6i32..6).prop_map(|(x, y)| pt(x as f64, y as f64))
}

fn messy_segs() -> impl Strategy<Value = Vec<Seg>> {
    proptest::collection::vec((grid_point(), grid_point()), 1..14).prop_map(|pairs| {
        pairs
            .into_iter()
            .filter_map(|(a, b)| Seg::try_from_unordered(a, b))
            .collect()
    })
}

fn motion() -> impl Strategy<Value = PointMotion> {
    (grid_point(), grid_point()).prop_map(|(p, q)| {
        if p == q {
            PointMotion::stationary(p)
        } else {
            PointMotion::through(t(0.0), p, t(4.0), q)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `close()` on arbitrary segment soups: either a clean rejection or
    /// a region whose own segments regenerate it (idempotence) and whose
    /// area is consistent with the even-odd semantics of the soup.
    #[test]
    fn close_rejects_or_builds_valid_regions(segs in messy_segs()) {
        let mut segs = segs;
        segs.sort();
        segs.dedup();
        match Region::close(segs.clone()) {
            Err(_) => {} // rejection is a legal outcome for messy soups
            Ok(region) => {
                // The region's boundary must regenerate the same region.
                let again = Region::close(region.segments())
                    .expect("a valid region's boundary closes again");
                prop_assert_eq!(again.area(), region.area());
                prop_assert_eq!(again.num_faces(), region.num_faces());
                // Area is non-negative and bounded by the bbox.
                let bbox = region.bbox();
                if !bbox.is_empty() {
                    prop_assert!(region.area() <= bbox.width() * bbox.height() + r(1e-9));
                }
                // Membership is consistent with even-odd over the soup.
                for i in -7..7 {
                    let p = pt(i as f64 + 0.41, 0.37);
                    let parity = mob::spatial::arrangement::parity_inside(&segs, p);
                    prop_assert_eq!(region.contains_point(p), parity, "{:?}", p);
                }
            }
        }
    }

    /// `Line::try_new` accepts exactly the soups without collinear
    /// overlaps, and `normalize` always produces an acceptable value.
    #[test]
    fn line_normalize_always_valid(segs in messy_segs()) {
        let normalized = Line::normalize(segs.clone());
        // The normalized representation satisfies the carrier conditions.
        prop_assert!(Line::try_new(normalized.segments().to_vec()).is_ok());
        // Normalization preserves the covered point set (probe on grid).
        for i in -12..12 {
            for j in -12..12 {
                let p = pt(i as f64 / 2.0, j as f64 / 2.0);
                let covered = segs.iter().any(|s| s.contains_point(p));
                prop_assert_eq!(normalized.contains_point(p), covered, "{:?}", p);
            }
        }
        // Idempotence.
        let twice = Line::normalize(normalized.segments().to_vec());
        prop_assert_eq!(twice, normalized);
    }

    /// `UPoints::try_new` accepts exactly the motion sets with no
    /// coincidence inside the open interval (checked by brute force).
    #[test]
    fn upoints_acceptance_matches_brute_force(
        motions in proptest::collection::vec(motion(), 1..5),
    ) {
        let iv = Interval::closed(t(0.0), t(4.0));
        let accepted = UPoints::try_new(iv, motions.clone()).is_ok();
        // Brute force: exact pairwise meet times.
        let mut collision = false;
        for (i, a) in motions.iter().enumerate() {
            for b in motions.iter().skip(i + 1) {
                match a.meet_time(b) {
                    Coincidence::Always => collision = true,
                    Coincidence::At(tc) => {
                        if iv.contains_open(&tc) {
                            collision = true;
                        }
                    }
                    Coincidence::Never => {}
                }
            }
        }
        prop_assert_eq!(accepted, !collision);
    }

    /// Interpolating between two snapshots of the same convex blob is
    /// always a valid `uregion`, and a bow-tie interpolation (swapped
    /// vertex correspondence) is always rejected.
    #[test]
    fn uregion_interpolation_validity(seed in 0u64..10_000) {
        let r0 = mob::gen::convex_blob(seed, pt(0.0, 0.0), 10.0, 8, 0.3);
        let r1 = mob::gen::convex_blob(seed, pt(6.0, 3.0), 14.0, 8, 0.3);
        let iv = Interval::closed(t(0.0), t(1.0));
        prop_assert!(URegion::interpolate(iv, &r0, &r1).is_ok());
        // Swap two non-adjacent vertices of the target: the interpolation
        // must self-intersect somewhere inside the interval.
        let mut pts: Vec<Point> = r1.points().to_vec();
        pts.swap(1, 5);
        if let Ok(twisted) = Ring::try_new(pts) {
            if twisted.len() == 8 {
                prop_assert!(
                    URegion::interpolate(iv, &r0, &twisted).is_err(),
                    "twisted interpolation accepted for seed {}", seed
                );
            }
        }
    }

    /// Mapping::from_units either fails or produces a value that
    /// try_new accepts — and at_instant agrees with manual lookup.
    #[test]
    fn mapping_normalization_sound(
        vals in proptest::collection::vec((0i32..10, 1i32..5, any::<bool>()), 1..8),
    ) {
        // Build non-overlapping units with random values/gaps.
        let mut units = Vec::new();
        let mut cursor = 0.0;
        for (v, w, gap) in vals {
            let s = cursor + if gap { 1.0 } else { 0.0 };
            let e = s + w as f64;
            units.push(ConstUnit::new(Interval::closed_open(t(s), t(e)), v as i64));
            cursor = e;
        }
        let m = Mapping::from_units(units.clone()).expect("disjoint by construction");
        prop_assert!(Mapping::try_new(m.units().to_vec()).is_ok());
        // Every original unit's interior value is preserved.
        for u in &units {
            let probe = u.interval().interior_instant();
            prop_assert_eq!(m.at_instant(probe), Val::Def(*u.value()));
        }
    }
}
