//! Executable reproductions of the paper's figures (F1–F8 in DESIGN.md),
//! exercised through the public API only. Each test builds the structure
//! the figure depicts and asserts the behaviour the surrounding text
//! claims for it.

use mob::core::refinement;
use mob::prelude::*;

/// Figure 1: sliced representation of a moving real and a moving points
/// value — units with disjoint intervals, each carrying a simple
/// function.
#[test]
fn figure1_sliced_representations() {
    // Moving real: three slices with different shapes.
    let mreal: MovingReal = Mapping::try_new(vec![
        UReal::linear(Interval::closed_open(t(0.0), t(2.0)), r(0.5), r(1.0)),
        UReal::quadratic(
            Interval::closed_open(t(2.0), t(4.0)),
            r(-0.25),
            r(1.5),
            r(0.0),
        ),
        UReal::constant(Interval::closed(t(5.0), t(6.0)), r(1.0)),
    ])
    .unwrap();
    assert_eq!(mreal.num_units(), 3);
    // A gap in the definition time, exactly as the figure shows.
    assert_eq!(mreal.deftime().num_intervals(), 2);
    assert!(mreal.at_instant(t(4.5)).is_undef());

    // Moving points: two points, one of which exists only part-time.
    let a = PointMotion::through(t(0.0), pt(0.0, 0.0), t(6.0), pt(6.0, 0.0));
    let b = PointMotion::stationary(pt(3.0, 5.0));
    let mpoints: MovingPoints = Mapping::try_new(vec![
        UPoints::try_new(Interval::closed_open(t(0.0), t(2.0)), vec![a]).unwrap(),
        UPoints::try_new(Interval::closed(t(2.0), t(6.0)), vec![a, b]).unwrap(),
    ])
    .unwrap();
    assert_eq!(mpoints.at_instant(t(1.0)).unwrap().len(), 1);
    assert_eq!(mpoints.at_instant(t(3.0)).unwrap().len(), 2);
    let count = mpoints.count();
    assert_eq!(count.at_instant(t(1.0)), Val::Def(1));
    assert_eq!(count.at_instant(t(4.0)), Val::Def(2));
}

/// Figure 2: a line value is an *unstructured* set of segments — the
/// polyline view and the segment-soup view are equally expressive, and
/// any segment set is valid as long as collinear segments are disjoint.
#[test]
fn figure2_line_views() {
    // (b) a polyline-ish shape.
    let polyline = Line::try_new(vec![
        seg(0.0, 0.0, 1.0, 1.0),
        seg(1.0, 1.0, 2.0, 0.5),
        seg(2.0, 0.5, 3.0, 1.5),
    ])
    .unwrap();
    // (c) an arbitrary soup with crossings — also a valid line value.
    let soup = Line::try_new(vec![
        seg(0.0, 0.0, 2.0, 2.0),
        seg(0.0, 2.0, 2.0, 0.0),
        seg(1.0, -1.0, 1.0, 3.0),
    ])
    .unwrap();
    assert_eq!(polyline.num_segments(), 3);
    assert_eq!(soup.num_segments(), 3);
    // The unique-representation condition: collinear overlap is invalid.
    assert!(Line::try_new(vec![seg(0.0, 0.0, 2.0, 0.0), seg(1.0, 0.0, 3.0, 0.0)]).is_err());
    // The projection use-case: computing a trajectory needs no graph
    // structure (Sec 3.2.2's stated reason for the unstructured view).
    let m = MovingPoint::from_samples(&[
        (t(0.0), pt(0.0, 0.0)),
        (t(1.0), pt(1.0, 1.0)),
        (t(2.0), pt(2.0, 0.5)),
    ]);
    assert_eq!(m.trajectory().num_segments(), 2);
}

/// Figure 3: a region value with two faces, one carrying a hole, with a
/// third face lying inside that hole.
#[test]
fn figure3_region_structure() {
    let region = Region::try_new(vec![
        Face::try_new(
            rect_ring(0.0, 0.0, 12.0, 10.0),
            vec![rect_ring(2.0, 2.0, 9.0, 8.0)],
        )
        .unwrap(),
        Face::simple(rect_ring(4.0, 4.0, 6.0, 6.0)), // island in the hole
        Face::simple(rect_ring(14.0, 0.0, 16.0, 2.0)), // separate face
    ])
    .unwrap();
    assert_eq!(region.num_faces(), 3);
    assert_eq!(region.num_cycles(), 4);
    assert!(region.contains_point(pt(1.0, 5.0))); // outer band
    assert!(!region.contains_point(pt(3.0, 5.0))); // hole
    assert!(region.contains_point(pt(5.0, 5.0))); // island
    assert!(region.contains_point(pt(15.0, 1.0))); // second face
                                                   // The same structure survives close() from its own segment soup.
    let rebuilt = Region::close(region.segments()).unwrap();
    assert_eq!(rebuilt.num_faces(), 3);
    assert_eq!(rebuilt.num_cycles(), 4);
    assert_eq!(rebuilt.area(), region.area());
}

/// Figure 4: a `uline` instance — non-rotating moving segments.
#[test]
fn figure4_uline_translation() {
    let m1 = MSeg::between(
        t(0.0),
        pt(0.0, 0.0),
        pt(2.0, 1.0),
        t(1.0),
        pt(1.0, 2.0),
        pt(3.0, 3.0),
    )
    .unwrap();
    let u = ULine::try_new(Interval::closed(t(0.0), t(1.0)), vec![m1]).unwrap();
    // The segment keeps its direction (non-rotation constraint).
    let d0 = u.at(t(0.0)).segments()[0];
    let d1 = u.at(t(1.0)).segments()[0];
    let dir0 = d0.u().direction(d0.v()).unwrap();
    let dir1 = d1.u().direction(d1.v()).unwrap();
    assert!(dir0.approx_eq(dir1, 1e-12));
    // A rotating segment is rejected by the carrier set.
    assert!(MSeg::between(
        t(0.0),
        pt(0.0, 0.0),
        pt(1.0, 0.0),
        t(1.0),
        pt(0.0, 0.0),
        pt(0.0, 1.0),
    )
    .is_err());
}

/// Figure 5: refining a moving-line approximation by splitting the unit
/// at an interior instant increases fidelity ("in the limit this
/// sequence of discrete representations can reach an arbitrary
/// precision").
#[test]
fn figure5_refinement_improves_fidelity() {
    // Target: a segment whose midpoint follows a parabola (not linear).
    let target = |ti: f64| -> (Point, Point) {
        let y = ti * (2.0 - ti); // parabolic arc peaking at t=1
        (pt(0.0, y), pt(1.0, y))
    };
    // One-unit approximation over [0,2]: straight interpolation misses
    // the bulge at t=1 by the full sagitta (1.0).
    let (s0, e0) = target(0.0);
    let (s2, e2) = target(2.0);
    let coarse = ULine::try_new(
        Interval::closed(t(0.0), t(2.0)),
        vec![MSeg::between(t(0.0), s0, e0, t(2.0), s2, e2).unwrap()],
    )
    .unwrap();
    let coarse_err = (coarse.at(t(1.0)).segments()[0].u().y - r(1.0)).abs();
    // Two-unit approximation with a knot at t=1.
    let (s1, e1) = target(1.0);
    let fine: MovingLine = Mapping::try_new(vec![
        ULine::try_new(
            Interval::closed_open(t(0.0), t(1.0)),
            vec![MSeg::between(t(0.0), s0, e0, t(1.0), s1, e1).unwrap()],
        )
        .unwrap(),
        ULine::try_new(
            Interval::closed(t(1.0), t(2.0)),
            vec![MSeg::between(t(1.0), s1, e1, t(2.0), s2, e2).unwrap()],
        )
        .unwrap(),
    ])
    .unwrap();
    let fine_err = (fine.at_instant(t(1.0)).unwrap().segments()[0].u().y - r(1.0)).abs();
    assert_eq!(coarse_err, r(1.0));
    assert_eq!(fine_err, r(0.0));
    // And at quarter points the two-unit version is strictly closer.
    let err_at = |ml: &MovingLine, ti: f64| {
        let y = ml.at_instant(t(ti)).unwrap().segments()[0].u().y;
        (y - r(ti * (2.0 - ti))).abs()
    };
    let coarse_m: MovingLine = Mapping::single(coarse);
    assert!(err_at(&fine, 0.5) < err_at(&coarse_m, 0.5));
    assert!(err_at(&fine, 1.5) < err_at(&coarse_m, 1.5));
}

/// Figure 6: a `uregion` whose components collapse at the end of the
/// unit interval — the ι_e cleanup handles the degeneracy.
#[test]
fn figure6_uregion_endpoint_degeneracy() {
    // A square that collapses to a horizontal segment at t=1 (its top
    // edge sweeps down onto the bottom edge).
    let cyc = MCycle::try_new(vec![
        PointMotion::stationary(pt(0.0, 0.0)),
        PointMotion::stationary(pt(2.0, 0.0)),
        PointMotion::through(t(0.0), pt(2.0, 2.0), t(1.0), pt(2.0, 0.0)),
        PointMotion::through(t(0.0), pt(0.0, 2.0), t(1.0), pt(0.0, 0.0)),
    ])
    .unwrap();
    let u = URegion::try_new(Interval::closed(t(0.0), t(1.0)), vec![MFace::simple(cyc)]).unwrap();
    assert_eq!(u.at(t(0.0)).area(), r(4.0));
    assert!(u.at(t(0.5)).area().approx_eq(r(2.0), 1e-9));
    // At t=1 the area is zero; the cleanup produces the empty region
    // (the even/odd fragment rule cancels the coincident edges).
    assert!(u.at(t(1.0)).is_empty());
    // The paper's storage trick: split the degenerate end into its own
    // instant unit.
    let m: MovingRegion = Mapping::single(u);
    let split = m.split_degenerate_ends(|u, at| u.at(at).is_empty());
    assert_eq!(split.num_units(), 2);
    assert!(!split.units()[0].interval().right_closed());
    assert!(split.units()[1].interval().is_point());
}

/// Figure 7: the mapping store — three units sharing one subarray.
#[test]
fn figure7_mapping_store_shape() {
    use mob::storage::mapping_store::save_mpoints;
    use mob::storage::{load_array, open_mpoints, PageStore, Verify};

    let mk = |s: f64, e: f64, pts: &[(f64, f64)]| {
        UPoints::try_new(
            Interval::closed_open(t(s), t(e)),
            pts.iter()
                .map(|(x, y)| PointMotion::stationary(pt(*x, *y)))
                .collect(),
        )
        .unwrap()
    };
    let m: MovingPoints = Mapping::try_new(vec![
        mk(0.0, 1.0, &[(0.0, 0.0), (1.0, 0.0)]),
        mk(1.0, 2.0, &[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]),
        mk(2.0, 3.0, &[(5.0, 5.0)]),
    ])
    .unwrap();
    let mut store = PageStore::new();
    let stored = save_mpoints(&m, &mut store);
    // Exactly the figure: a units array with three records and ONE
    // shared motions subarray holding all 6 motion records.
    assert_eq!(stored.num_units, 3);
    let motions: Vec<PointMotion> =
        load_array(&stored.motions, &store).expect("saved array decodes");
    assert_eq!(motions.len(), 6);
    let back = open_mpoints(&stored, &store, Verify::Full)
        .unwrap()
        .materialize_validated();
    assert_eq!(back, Ok(m));
}

/// Figure 8: the refinement partition of two sets of time intervals.
#[test]
fn figure8_refinement_partition() {
    let a: MovingBool = Mapping::try_new(vec![
        ConstUnit::new(Interval::closed(t(0.0), t(3.0)), true),
        ConstUnit::new(Interval::closed(t(5.0), t(8.0)), false),
    ])
    .unwrap();
    let b: MovingBool = Mapping::try_new(vec![
        ConstUnit::new(Interval::closed(t(2.0), t(6.0)), true),
        ConstUnit::new(Interval::open(t(6.0), t(9.0)), false),
    ])
    .unwrap();
    let parts = refinement(&a, &b);
    // The partition covers deftime(a) ∪ deftime(b) exactly.
    let union: Periods = parts.iter().map(|p| p.interval).collect();
    assert_eq!(union, a.deftime().union(&b.deftime()));
    // Parts where both are defined cover exactly the intersection.
    let both: Periods = parts
        .iter()
        .filter(|p| p.a.is_some() && p.b.is_some())
        .map(|p| p.interval)
        .collect();
    assert_eq!(both, a.deftime().intersection(&b.deftime()));
    // Every part is homogeneous: covered by at most one unit per side.
    for p in &parts {
        if let Some(u) = p.a {
            assert!(u.interval().contains_interval(&p.interval));
        }
        if let Some(u) = p.b {
            assert!(u.interval().contains_interval(&p.interval));
        }
    }
}
