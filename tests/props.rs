//! Property-based tests on the core carrier sets and operations.

use mob::prelude::*;
use mob::spatial::setops::{region_difference, region_intersection, region_union};
use mob::storage::mapping_store::save_mpoint;
use mob::storage::PageStore;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// Well-conditioned instants on a quarter-integer grid.
fn instant_strategy() -> impl Strategy<Value = f64> {
    (-200i32..200).prop_map(|k| k as f64 / 4.0)
}

/// A random time interval.
fn interval_strategy() -> impl Strategy<Value = TimeInterval> {
    (
        instant_strategy(),
        instant_strategy(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, lc, rc)| {
            let (s, e) = if a <= b { (a, b) } else { (b, a) };
            if s == e {
                TimeInterval::point(t(s))
            } else {
                Interval::new(t(s), t(e), lc, rc)
            }
        })
}

/// A random set of intervals, normalized into a range set.
fn periods_strategy() -> impl Strategy<Value = Periods> {
    proptest::collection::vec(interval_strategy(), 0..6).prop_map(Periods::from_unmerged)
}

/// A random axis-aligned rectangle region on an integer grid.
fn rect_region_strategy() -> impl Strategy<Value = Region> {
    (-20i32..20, -20i32..20, 1i32..12, 1i32..12).prop_map(|(x, y, w, h)| {
        Region::from_ring(rect_ring(
            x as f64,
            y as f64,
            (x + w) as f64,
            (y + h) as f64,
        ))
    })
}

/// A random moving point from increasing samples.
fn mpoint_strategy() -> impl Strategy<Value = MovingPoint> {
    proptest::collection::vec((-100i32..100, -100i32..100), 2..8).prop_map(|steps| {
        let samples: Vec<(Instant, Point)> = steps
            .iter()
            .enumerate()
            .map(|(k, (x, y))| (t(k as f64), pt(*x as f64, *y as f64)))
            .collect();
        MovingPoint::from_samples(&samples)
    })
}

// ---------------------------------------------------------------------
// Range-set algebra laws (Sec 3.2.3)
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn rangeset_invariants_hold(p in periods_strategy()) {
        // Whatever from_unmerged produces must satisfy try_new.
        prop_assert!(Periods::try_new(p.iter().cloned().collect()).is_ok());
    }

    #[test]
    fn rangeset_union_is_pointwise_or(
        a in periods_strategy(),
        b in periods_strategy(),
        x in instant_strategy(),
    ) {
        let u = a.union(&b);
        prop_assert!(Periods::try_new(u.iter().cloned().collect()).is_ok());
        let ti = t(x);
        prop_assert_eq!(u.contains(&ti), a.contains(&ti) || b.contains(&ti));
    }

    #[test]
    fn rangeset_intersection_is_pointwise_and(
        a in periods_strategy(),
        b in periods_strategy(),
        x in instant_strategy(),
    ) {
        let i = a.intersection(&b);
        prop_assert!(Periods::try_new(i.iter().cloned().collect()).is_ok());
        let ti = t(x);
        prop_assert_eq!(i.contains(&ti), a.contains(&ti) && b.contains(&ti));
    }

    #[test]
    fn rangeset_difference_is_pointwise_andnot(
        a in periods_strategy(),
        b in periods_strategy(),
        x in instant_strategy(),
    ) {
        let d = a.difference(&b);
        prop_assert!(Periods::try_new(d.iter().cloned().collect()).is_ok());
        let ti = t(x);
        prop_assert_eq!(d.contains(&ti), a.contains(&ti) && !b.contains(&ti));
    }

    #[test]
    fn interval_intersection_is_pointwise(
        a in interval_strategy(),
        b in interval_strategy(),
        x in instant_strategy(),
    ) {
        let ti = t(x);
        match a.intersection(&b) {
            Some(i) => prop_assert_eq!(i.contains(&ti), a.contains(&ti) && b.contains(&ti)),
            None => prop_assert!(!(a.contains(&ti) && b.contains(&ti))),
        }
    }
}

// ---------------------------------------------------------------------
// Region boolean algebra (Sec 3.2.2 + setops)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn region_union_area_inclusion_exclusion(
        a in rect_region_strategy(),
        b in rect_region_strategy(),
    ) {
        let u = region_union(&a, &b).unwrap();
        let i = region_intersection(&a, &b).unwrap();
        let lhs = u.area() + i.area();
        let rhs = a.area() + b.area();
        prop_assert!(lhs.approx_eq(rhs, 1e-6), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn region_difference_area(
        a in rect_region_strategy(),
        b in rect_region_strategy(),
    ) {
        let d = region_difference(&a, &b).unwrap();
        let i = region_intersection(&a, &b).unwrap();
        let lhs = d.area() + i.area();
        prop_assert!(lhs.approx_eq(a.area(), 1e-6), "{} vs {}", lhs, a.area());
    }

    #[test]
    fn region_ops_pointwise(
        a in rect_region_strategy(),
        b in rect_region_strategy(),
        x in -25i32..25,
        y in -25i32..25,
    ) {
        // Probe strictly off grid lines so boundary conventions (which
        // regularized set ops intentionally blur) don't matter.
        let p = pt(x as f64 + 0.31, y as f64 + 0.47);
        let u = region_union(&a, &b).unwrap();
        let i = region_intersection(&a, &b).unwrap();
        let d = region_difference(&a, &b).unwrap();
        prop_assert_eq!(u.contains_point(p), a.contains_point(p) || b.contains_point(p));
        prop_assert_eq!(i.contains_point(p), a.contains_point(p) && b.contains_point(p));
        prop_assert_eq!(d.contains_point(p), a.contains_point(p) && !b.contains_point(p));
    }
}

// ---------------------------------------------------------------------
// Sliced representation invariants
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mapping_invariants_after_restriction(
        m in mpoint_strategy(),
        p in periods_strategy(),
    ) {
        let restricted = m.atperiods(&p);
        // The result is a valid mapping...
        prop_assert!(Mapping::try_new(restricted.units().to_vec()).is_ok());
        // ...whose deftime is the intersection.
        prop_assert_eq!(restricted.deftime(), m.deftime().intersection(&p));
    }

    #[test]
    fn trajectory_length_bounds_travel(m in mpoint_strategy()) {
        // Projection merges retraced paths: never longer than travel.
        let traj_len = m.trajectory().length();
        let travel = m.distance_travelled();
        prop_assert!(traj_len <= travel + r(1e-9));
    }

    #[test]
    fn distance_to_self_is_zero(m in mpoint_strategy()) {
        let d = m.distance(&m);
        if let Val::Def(max) = d.max_value() {
            prop_assert!(max.approx_eq(r(0.0), 1e-9));
        }
    }

    #[test]
    fn storage_roundtrip_mpoint(m in mpoint_strategy()) {
        let mut store = PageStore::new();
        let stored = save_mpoint(&m, &mut store);
        let back = mob::storage::open_mpoint(&stored, &store, mob::storage::Verify::Full)
            .unwrap()
            .materialize_validated();
        prop_assert_eq!(back, Ok(m));
    }

    #[test]
    fn speed_nonnegative_and_consistent(m in mpoint_strategy()) {
        let s = m.speed();
        if let Val::Def(min) = s.min_value() {
            prop_assert!(min >= r(0.0));
        }
        // deftime(speed) == deftime(m)
        prop_assert_eq!(s.deftime(), m.deftime());
    }
}

// ---------------------------------------------------------------------
// Hulls, transforms, components
// ---------------------------------------------------------------------

fn points_strategy() -> impl Strategy<Value = mob::spatial::Points> {
    proptest::collection::vec((-50i32..50, -50i32..50), 0..24).prop_map(|v| {
        mob::spatial::Points::from_points(
            v.into_iter().map(|(x, y)| pt(x as f64, y as f64)).collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hull_contains_all_points(ps in points_strategy()) {
        use mob::spatial::convex_hull_ring;
        if let Some(hull) = convex_hull_ring(&ps) {
            prop_assert!(hull.is_convex());
            prop_assert!(hull.is_ccw());
            for p in ps.iter() {
                prop_assert!(hull.contains_point(p), "{p:?} escaped its hull");
            }
        }
    }

    #[test]
    fn hull_is_idempotent(ps in points_strategy()) {
        use mob::spatial::convex_hull_ring;
        if let Some(hull) = convex_hull_ring(&ps) {
            let verts = mob::spatial::Points::from_points(hull.points().to_vec());
            let hull2 = convex_hull_ring(&verts).expect("hull vertices hull again");
            prop_assert_eq!(hull2.area(), hull.area());
        }
    }

    #[test]
    fn similarity_scales_area_quadratically(
        reg in rect_region_strategy(),
        s in 1i32..5,
        dx in -10i32..10,
        dy in -10i32..10,
    ) {
        use mob::spatial::Similarity;
        let factor = s as f64;
        let scaled = Similarity::scaling(pt(0.0, 0.0), factor).apply_region(&reg);
        prop_assert!(scaled.area().approx_eq(reg.area() * r(factor * factor), 1e-6));
        let moved = Similarity::translation(dx as f64, dy as f64).apply_region(&reg);
        prop_assert_eq!(moved.area(), reg.area());
        prop_assert_eq!(moved.perimeter(), reg.perimeter());
    }

    #[test]
    fn components_partition_segments(m in mpoint_strategy()) {
        use mob::spatial::connected_components;
        let traj = m.trajectory();
        let comps = connected_components(&traj);
        let total: usize = comps.iter().map(|c| c.num_segments()).sum();
        prop_assert_eq!(total, traj.num_segments());
        let total_len = comps
            .iter()
            .fold(r(0.0), |acc, c| acc + c.length());
        prop_assert!(total_len.approx_eq(traj.length(), 1e-9));
    }
}

// ---------------------------------------------------------------------
// Moving regions: inside vs pointwise, area exactness (random storms)
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn storm_inside_matches_pointwise(seed in 0u64..5000, path in 0u64..5000) {
        let storm = mob::gen::storm(seed, 5, 8);
        let p = mob::gen::flight_mpoint(
            path,
            pt(-40.0, -20.0),
            pt(170.0, 75.0),
            0.0,
            100.0,
            6,
            1.0,
        );
        let inside = storm.contains_moving_point(&p);
        for k in 0..=40 {
            let ti = t(k as f64 * 2.5);
            match (inside.at_instant(ti), p.at_instant(ti), storm.at_instant(ti)) {
                (Val::Def(flag), Val::Def(pos), Val::Def(reg)) => {
                    // Skip instants where the point is within ε of the
                    // boundary (closure-semantics tie-breaks).
                    if let Val::Def(d) =
                        mob::spatial::dist::point_region_distance(pos, &reg)
                    {
                        if d.get() < 1e-6 && flag != reg.contains_point(pos) {
                            continue;
                        }
                    }
                    prop_assert_eq!(flag, reg.contains_point(pos), "at {:?}", ti);
                }
                (Val::Undef, _, _) => {}
                other => prop_assert!(false, "definedness mismatch: {:?}", other),
            }
        }
    }

    #[test]
    fn storm_area_quadratic_is_exact(seed in 0u64..5000) {
        let storm = mob::gen::storm(seed, 4, 10);
        let area = storm.area();
        for k in 0..=20 {
            let ti = t(k as f64 * 5.0);
            if let (Val::Def(a), Val::Def(reg)) = (area.at_instant(ti), storm.at_instant(ti)) {
                prop_assert!(
                    a.approx_eq(reg.area(), 1e-6 * a.get().max(1.0)),
                    "{} vs {} at {:?}", a, reg.area(), ti
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// UReal analysis laws
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn ureal_extrema_bound_samples(
        a in -8i32..8, b in -8i32..8, c in -8i32..8,
        s in -10i32..10, w in 1i32..10,
    ) {
        let iv = Interval::closed(t(s as f64), t((s + w) as f64));
        let u = UReal::quadratic(iv, r(a as f64), r(b as f64), r(c as f64));
        let (lo, hi) = u.extrema();
        for ti in iv.sample_instants(13) {
            let v = u.value_at(ti);
            prop_assert!(v >= lo - r(1e-9) && v <= hi + r(1e-9), "{v} ∉ [{lo}, {hi}]");
        }
    }

    #[test]
    fn ureal_below_above_partition(
        a in -8i32..8, b in -8i32..8, c in -8i32..8, k in -20i32..20,
        s in -10i32..10, w in 1i32..10,
    ) {
        let iv = Interval::closed(t(s as f64), t((s + w) as f64));
        let u = UReal::quadratic(iv, r(a as f64), r(b as f64), r(c as f64));
        let v = r(k as f64);
        let below: Periods = u.intervals_below(v).into_iter().collect();
        let above: Periods = u.intervals_above(v).into_iter().collect();
        // Below and above are disjoint.
        prop_assert!(!below.intersects(&above));
        // Pointwise agreement away from the threshold.
        for ti in iv.sample_instants(13) {
            let val = u.value_at(ti);
            if (val - v).abs().get() < 1e-9 { continue; }
            prop_assert_eq!(below.contains(&ti), val < v);
            prop_assert_eq!(above.contains(&ti), val > v);
        }
    }
}
