//! The operation signature table of Section 2, reproduced operation by
//! operation with exactly the paper's signatures:
//!
//! | operation  | signature                                    |
//! |------------|----------------------------------------------|
//! | trajectory | moving(point) → line                         |
//! | length     | line → real                                  |
//! | distance   | moving(point) × moving(point) → moving(real) |
//! | atmin      | moving(real) → moving(real)                  |
//! | initial    | moving(real) → intime(real)                  |
//! | val        | intime(real) → real                          |
//!
//! Each test pins the argument/result *types* (the signature) and checks
//! the operation's semantics on a worked example.

use mob::prelude::*;

fn flight_a() -> MovingPoint {
    MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.0)), (t(10.0), pt(10.0, 0.0))])
}

fn flight_b() -> MovingPoint {
    MovingPoint::from_samples(&[(t(0.0), pt(10.0, 5.0)), (t(10.0), pt(0.0, 5.0))])
}

/// trajectory: moving(point) → line
#[test]
fn op_trajectory() {
    let result: Line = flight_a().trajectory();
    assert_eq!(result.num_segments(), 1);
}

/// length: line → real
#[test]
fn op_length() {
    let line: Line = flight_a().trajectory();
    let result: Real = line.length();
    assert_eq!(result, r(10.0));
}

/// distance: moving(point) × moving(point) → moving(real)
#[test]
fn op_distance() {
    let result: MovingReal = flight_a().distance(&flight_b());
    // The planes cross in x at t=5 where both are at x=5, Δy = 5.
    assert_eq!(result.at_instant(t(5.0)), Val::Def(r(5.0)));
    // Every unit is a √quadratic, as the discrete model prescribes.
    for u in result.units() {
        assert!(u.is_root());
    }
}

/// atmin: moving(real) → moving(real)
#[test]
fn op_atmin() {
    let d: MovingReal = flight_a().distance(&flight_b());
    let result: MovingReal = d.atmin();
    // Minimum distance 5, attained exactly at t=5.
    assert_eq!(result.num_units(), 1);
    assert!(result.units()[0].interval().is_point());
    assert_eq!(*result.units()[0].interval().start(), t(5.0));
}

/// initial: moving(real) → intime(real)
#[test]
fn op_initial() {
    let d = flight_a().distance(&flight_b()).atmin();
    let result: Intime<Real> = d.initial().unwrap();
    assert_eq!(result.inst(), t(5.0));
}

/// val: intime(real) → real
#[test]
fn op_val() {
    let it: Intime<Real> = flight_a().distance(&flight_b()).atmin().initial().unwrap();
    let result: Real = it.val();
    assert_eq!(result, r(5.0));
}

/// The full composed terms of both queries, as single expressions.
#[test]
fn op_composition_matches_queries() {
    // Query 1's predicate term: length(trajectory(flight)) > 5000.
    let q1_term: Real = flight_a().trajectory().length();
    assert!(q1_term > r(5.0));

    // Query 2's predicate term:
    // val(initial(atmin(distance(p.flight, q.flight)))) < 0.5.
    let q2_term: Real = flight_a()
        .distance(&flight_b())
        .atmin()
        .initial()
        .unwrap()
        .val();
    assert!(q2_term >= r(0.5)); // these two never come that close

    // And a genuinely close pair does satisfy it.
    let near = MovingPoint::from_samples(&[(t(0.0), pt(0.0, 0.1)), (t(10.0), pt(10.0, 0.1))]);
    let term = flight_a().distance(&near).atmin().initial().unwrap().val();
    assert!(term < r(0.5));
}

/// Lifting (Sec 2): the same `inside` name works on point × region,
/// moving(point) × region, and moving(point) × moving(region).
#[test]
fn op_lifting_family() {
    let zone = Region::from_ring(rect_ring(2.0, -1.0, 6.0, 1.0));
    // point × region → bool
    let p: Point = pt(3.0, 0.0);
    let b: bool = zone.contains_point(p);
    assert!(b);
    // moving(point) × region → moving(bool)
    let mb: MovingBool = flight_a().inside_region(&zone);
    assert_eq!(mb.at_instant(t(3.0)), Val::Def(true));
    assert_eq!(mb.at_instant(t(9.0)), Val::Def(false));
    // moving(point) × moving(region) → moving(bool)
    let mzone: MovingRegion =
        Mapping::single(URegion::stationary(Interval::closed(t(0.0), t(10.0)), &zone).unwrap());
    let mb2: MovingBool = mzone.contains_moving_point(&flight_a());
    assert_eq!(mb.when_true(), mb2.when_true());
}
