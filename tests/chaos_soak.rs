//! Chaos soak for the fault-tolerant maintenance supervisor — the
//! capstone of DESIGN.md §14.
//!
//! Each iteration stages a committed delta chain, reopens it through a
//! fault-injecting I/O layer (rotating clean / transient / storage-full
//! modes), and then interleaves a writer with supervised maintenance
//! ticks (compaction + index rebuild under the retry policy, on a
//! virtual clock). The invariants, per iteration:
//!
//! * **old-or-new**: the recovered store holds exactly the units of the
//!   acknowledged commits — a failed commit or failed maintenance
//!   attempt never leaves a hybrid;
//! * **pinned reads are immutable**: a snapshot pinned before the chaos
//!   answers byte-identically after it;
//! * **clean audits**: after the recovery sweep, `mob-check`'s chain
//!   audit passes with no damaged or shadowed files;
//! * **bounded degradation**: storage-full faults degrade to manual
//!   mode (never panic), and `resume()` re-arms the supervisor;
//! * **deadline-bounded scans**: an expired [`ScanOpts::deadline`]
//!   returns the typed [`ScanError::Deadline`] with honest progress,
//!   and a roomy deadline changes nothing.
//!
//! Campaign-level, the soak must see both recovery paths actually taken:
//! at least one retried-then-successful maintenance cycle and at least
//! one give-up. The fixed-seed campaign runs 300 iterations; a
//! randomized campaign on top prints its seed (`MOB_FAULT_SEED`) so any
//! failure replays exactly.

use mob::base::t;
use mob::core::MovingPoint;
use mob::rel::{index_rebuilder, OnError, OpenRelOpts, Relation, ScanError, ScanOpts};
use mob::spatial::pt;
use mob::storage::mapping_store::UPointRecord;
use mob::storage::supervisor::{MaintTick, RetryPolicy, Supervisor, SupervisorConfig};
use mob::storage::{
    load_array, Clock, DurableStore, FaultMask, FaultyIo, Generation, MemIo, RootRecord,
    VirtualClock, STORAGE_FULL_MARKER,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const INDEX_ROOT: &str = "fleet/index";

/// Which fault injector an iteration runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// No faults: the supervisor's happy path (and the deadline-scan
    /// assertions, which want a quiet store).
    Clean,
    /// Every mutating `(file, op)` fails once before succeeding: every
    /// maintenance step must retry through backoff and come through.
    Transient,
    /// The disk fills up mid-campaign: maintenance must give up to
    /// manual mode without corrupting the chain.
    StorageFull,
}

/// Campaign-wide tallies the soak asserts on at the end.
#[derive(Debug, Default)]
struct Totals {
    iterations: u64,
    compactions: u64,
    rebuilds: u64,
    retried_ticks: u64,
    gave_up: u64,
    writer_retries: u64,
}

/// One writer commit: a fresh object with a deterministic 3-sample
/// track derived from (iteration, commit index).
fn commit_batch(iter: u64, k: u64) -> (String, Vec<mob::core::UPoint>) {
    let t0 = (iter % 97) as f64 * 10.0 + k as f64 * 3.0;
    let samples: Vec<_> = (0..3)
        .map(|i| {
            let s = t0 + i as f64;
            (t(s), pt(s * 0.5 - k as f64, s - iter as f64 * 0.25))
        })
        .collect();
    (
        format!("obj/{iter}/{k}"),
        MovingPoint::from_samples(&samples).units().to_vec(),
    )
}

/// Every `moving(point)` object's stored units, in catalog order. The
/// index rebuild adds a [`RootRecord::Index`] entry, so comparisons
/// look only at the mpoint roots — maintenance must never change what
/// the data says.
fn mpoint_units(snap: &Generation) -> Vec<(String, Vec<UPointRecord>)> {
    snap.entries()
        .iter()
        .filter_map(|(name, root)| match root {
            RootRecord::MPoint(m) => Some((
                name.clone(),
                load_array::<UPointRecord>(&m.units, snap.store()).expect("units decode"),
            )),
            _ => None,
        })
        .collect()
}

/// The ground truth for old-or-new: replay exactly the acknowledged
/// commits on a clean store and snapshot the result. Unit content is
/// path-independent (splice at the seams, compaction folds without
/// rewriting), so this must equal the recovered faulty store.
fn replay_expected(acked: &[(String, Vec<mob::core::UPoint>)]) -> Vec<(String, Vec<UPointRecord>)> {
    let mut store = DurableStore::options()
        .open(MemIo::new())
        .expect("replay open");
    for (name, units) in acked {
        let mut txn = store.begin();
        txn.append_units(name, units);
        txn.commit().expect("replay commit");
    }
    mpoint_units(&store.snapshot().expect("replay snapshot"))
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Deadline-bounded scans over the live store (clean iterations only):
/// an already-expired budget fails typed with zero progress, a roomy
/// one answers like an undeadlined scan, and the registry counter moves
/// when observability is on.
fn assert_deadline_scans(store: &Mutex<DurableStore<FaultyIo>>) {
    let snap = lock(store).snapshot().expect("snapshot for scans");
    let rel = Relation::open(&snap, &OpenRelOpts::new().on_error(OnError::SkipAndRecord))
        .expect("relation opens");
    let probe = t(5.0);

    let before = mob::obs::Registry::global()
        .snapshot()
        .get("scan.deadline_exceeded");
    let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
    let expired = ScanOpts::new().deadline(Arc::clone(&clock), Duration::ZERO);
    match rel.snapshot_at(probe, &expired) {
        Err(ScanError::Deadline { items_done, .. }) => {
            assert_eq!(items_done, 0, "expired before any work");
        }
        other => panic!("expired deadline must fail typed, got {other:?}"),
    }
    if mob::obs::enabled() {
        let after = mob::obs::Registry::global()
            .snapshot()
            .get("scan.deadline_exceeded");
        assert!(after > before, "scan.deadline_exceeded must advance");
    }

    // A roomy deadline is invisible: same answer as no deadline at all.
    let roomy = ScanOpts::new().deadline(clock, Duration::from_secs(3600));
    let (with, _) = rel.snapshot_at(probe, &roomy).expect("roomy deadline");
    let (without, _) = rel
        .snapshot_at(probe, &ScanOpts::new())
        .expect("plain scan");
    assert_eq!(with.len(), without.len(), "deadline changed the answer");
}

/// One soak iteration: stage, injure, supervise, recover, audit.
fn soak_iteration(iter: u64, campaign_seed: u64, totals: &mut Totals) {
    let mode = match iter % 3 {
        0 => Mode::Transient,
        1 => Mode::StorageFull,
        _ => Mode::Clean,
    };
    let seed = campaign_seed ^ (iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));

    // Stage three delta commits on the clean disk (through a unit
    // counter, so the storage-full budget can be sized to the actual
    // workload instead of a magic number).
    let disk = MemIo::new();
    let mut acked: Vec<(String, Vec<mob::core::UPoint>)> = Vec::new();
    let staged_units = {
        let probe = FaultyIo::new(disk.clone(), u64::MAX, FaultMask::KeepUnsynced, 0);
        let mut store = DurableStore::options().open(probe).expect("stage open");
        for k in 0..3 {
            let (name, units) = commit_batch(iter, k);
            let mut txn = store.begin();
            txn.append_units(&name, &units);
            txn.commit().expect("staged delta");
            acked.push((name, units));
        }
        store.io().write_units()
    };

    // Reopen the staged chain through this iteration's injector.
    let io = match mode {
        Mode::Clean => FaultyIo::new(disk, u64::MAX, FaultMask::KeepUnsynced, 0),
        Mode::Transient => FaultyIo::transient(disk, 1, seed),
        // Budget ≈ 1.5 staged commits: the first writer commit fits,
        // compaction's full snapshot cannot.
        Mode::StorageFull => FaultyIo::storage_full(disk, staged_units / 2, seed),
    };
    let store = Arc::new(Mutex::new(
        DurableStore::options().open(io).expect("faulty reopen"),
    ));

    // Pin a snapshot before the chaos; it must answer byte-identically
    // after it, whatever maintenance does.
    let (pinned, pinned_bytes) = {
        let s = lock(&store);
        let snap = s.snapshot().expect("pin");
        let bytes = snap.to_store_file().to_bytes().expect("pinned bytes");
        (snap, bytes)
    };
    let pinned_units = mpoint_units(&pinned);

    let clock = Arc::new(VirtualClock::new());
    let config = SupervisorConfig {
        delta_threshold: 2,
        delta_bytes_threshold: u64::MAX,
        policy: RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(5),
            cap: Duration::from_millis(40),
            seed,
        },
        poll_interval: Duration::from_millis(1),
    };
    let sup =
        Supervisor::new(Arc::clone(&store), config, clock.clone()).with_rebuilder(index_rebuilder(
            OpenRelOpts::new().on_error(OnError::SkipAndRecord),
            INDEX_ROOT.to_string(),
        ));

    // Interleave a writer with maintenance ticks. The writer retries a
    // failed commit twice (transient faults heal); a commit is
    // acknowledged — and counted into the ground truth — only on `Ok`.
    for k in 3..8 {
        let (name, units) = commit_batch(iter, k);
        let mut landed = false;
        for _attempt in 0..3 {
            let mut s = lock(&store);
            let mut txn = s.begin();
            txn.append_units(&name, &units);
            match txn.commit() {
                Ok(_) => {
                    landed = true;
                    break;
                }
                Err(_) => totals.writer_retries += 1,
            }
        }
        if landed {
            acked.push((name, units));
        }

        match sup.run_once() {
            MaintTick::Idle => {}
            MaintTick::Compacted {
                retries, rebuilt, ..
            } => {
                totals.compactions += 1;
                if retries > 0 {
                    totals.retried_ticks += 1;
                }
                if rebuilt.is_some() {
                    totals.rebuilds += 1;
                }
            }
            MaintTick::GaveUp { error, .. } => {
                totals.gave_up += 1;
                assert!(
                    mode != Mode::Clean,
                    "iteration {iter}: clean mode gave up: {error}"
                );
                if mode == Mode::StorageFull {
                    assert!(
                        error.contains(STORAGE_FULL_MARKER),
                        "iteration {iter}: wrong give-up cause: {error}"
                    );
                }
                let st = sup.status();
                assert!(st.manual, "give-up must enter manual mode");
                assert!(st.last_error.is_some());
                sup.resume();
                assert!(!sup.status().manual, "resume must re-arm");
            }
        }
    }

    // Backoffs ran in virtual time only: the soak never really sleeps.
    if mode == Mode::Clean {
        assert!(clock.slept().is_empty(), "clean mode must not back off");
        assert_deadline_scans(&store);
    }

    // The pinned snapshot is still byte-identical.
    assert_eq!(
        pinned.to_store_file().to_bytes().expect("pinned re-render"),
        pinned_bytes,
        "iteration {iter}: maintenance moved a pinned snapshot"
    );
    assert_eq!(mpoint_units(&pinned), pinned_units);

    // Tear down, recover the surviving disk, and hold it to old-or-new:
    // exactly the acknowledged commits, nothing else.
    drop(sup);
    let store = Arc::try_unwrap(store).unwrap_or_else(|_| panic!("supervisor kept a store handle"));
    let survivor = match store.into_inner() {
        Ok(s) => s,
        Err(p) => p.into_inner(),
    }
    .into_io()
    .into_survivor();

    let recovered = DurableStore::options()
        .open(survivor.clone())
        .expect("recovery never errors");
    assert_eq!(
        mpoint_units(&recovered.snapshot().expect("recovered snapshot")),
        replay_expected(&acked),
        "iteration {iter} ({mode:?}): recovered state is not old-or-new"
    );
    drop(recovered);

    // The recovery sweep also healed the directory: the chain audit is
    // clean, including after mid-compaction failures.
    let report = mob_check::audit_chain(&survivor).expect("audit runs");
    assert!(
        report.all_ok(),
        "iteration {iter} ({mode:?}): dirty chain audit:\n{}",
        report.render()
    );

    totals.iterations += 1;
}

/// Run a whole campaign and assert both recovery paths were exercised.
fn soak(campaign_seed: u64, iterations: u64) {
    let mut totals = Totals::default();
    for iter in 0..iterations {
        soak_iteration(iter, campaign_seed, &mut totals);
    }
    println!("soak totals: {totals:?}");
    assert_eq!(totals.iterations, iterations);
    assert!(
        totals.retried_ticks >= 1,
        "campaign never saw a retry-then-success: {totals:?}"
    );
    assert!(
        totals.gave_up >= 1,
        "campaign never saw a give-up: {totals:?}"
    );
    assert!(
        totals.rebuilds >= 1,
        "campaign never committed an index rebuild: {totals:?}"
    );
    assert!(totals.compactions >= iterations / 3, "{totals:?}");
}

#[test]
fn chaos_soak_fixed_seed() {
    soak(0x50A1_C0DE, 300);
}

#[test]
fn chaos_soak_randomized_with_printed_seed() {
    let campaign_seed = match std::env::var("MOB_FAULT_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or(0xCAFE),
        Err(_) => {
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0xCAFE);
            now ^ 0x9E37_79B9_7F4A_7C15
        }
    };
    println!("MOB_FAULT_SEED={campaign_seed} (set this env var to reproduce)");
    soak(campaign_seed, 60);
}

/// The spawned supervisor thread compacts on its own: stage a chain
/// past the threshold, spawn, and wait for the counter to move. On a
/// virtual clock the poll sleeps return instantly, so the thread spins
/// through its ticks without real time passing.
#[test]
fn spawned_supervisor_compacts_in_the_background() {
    let disk = MemIo::new();
    let io = FaultyIo::new(disk, u64::MAX, FaultMask::KeepUnsynced, 0);
    let mut store = DurableStore::options().open(io).expect("open");
    for k in 0..3 {
        let (name, units) = commit_batch(0, k);
        let mut txn = store.begin();
        txn.append_units(&name, &units);
        txn.commit().expect("delta");
    }
    let store = Arc::new(Mutex::new(store));

    let config = SupervisorConfig {
        delta_threshold: 2,
        delta_bytes_threshold: u64::MAX,
        policy: RetryPolicy::default(),
        poll_interval: Duration::from_millis(1),
    };
    let sup = Supervisor::new(Arc::clone(&store), config, Arc::new(VirtualClock::new()))
        .with_rebuilder(index_rebuilder(
            OpenRelOpts::new().on_error(OnError::SkipAndRecord),
            INDEX_ROOT.to_string(),
        ));
    let handle = sup.spawn();

    // Bounded wait without real sleeps: yield until the background
    // thread reports a compaction (it has nothing else to do).
    let mut ok = false;
    for _ in 0..5_000_000 {
        let st = handle.status();
        if st.compactions >= 1 && st.rebuilds >= 1 {
            ok = true;
            break;
        }
        std::thread::yield_now();
    }
    handle.stop();
    assert!(ok, "background supervisor never compacted");

    let s = lock(&store);
    let snap = s.snapshot().expect("snapshot");
    assert!(
        snap.get(INDEX_ROOT).is_some(),
        "background rebuild left no index root"
    );
    assert_eq!(s.pending_deltas(), 0, "chain folded in the background");
}
