//! Cross-crate integration: generate workloads, run the paper's queries,
//! push values through the storage layer, and verify everything stays
//! consistent end to end.

use mob::gen::{plane_fleet, storm, taxi_fleet};
use mob::prelude::*;
use mob::rel::{close_encounters, closest_approach, long_flights, planes_relation};
use mob::storage::mapping_store::{save_mpoint, save_mregion};
use mob::storage::region_store::{load_region, save_region};
use mob::storage::{open_mpoint, open_mregion, PageStore, Verify};

#[test]
fn queries_survive_storage_roundtrip() {
    // Generate a fleet, store every flight, reload, and check that both
    // queries give identical answers on original and reloaded data.
    let fleet = plane_fleet(99, 24, 10);
    let mut store = PageStore::new();
    let reloaded: Vec<(String, String, MovingPoint)> = fleet
        .iter()
        .map(|p| {
            let stored = save_mpoint(&p.flight, &mut store);
            (
                p.airline.clone(),
                p.id.clone(),
                open_mpoint(&stored, &store, Verify::Full)
                    .and_then(|v| v.materialize_validated())
                    .expect("round-trip decodes"),
            )
        })
        .collect();
    let original = planes_relation(
        fleet
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    );
    let restored = planes_relation(reloaded);

    for threshold in [300.0, 1200.0, 2400.0] {
        let q1a = long_flights(&original, "Lufthansa", threshold);
        let q1b = long_flights(&restored, "Lufthansa", threshold);
        assert_eq!(q1a, q1b, "query 1 differs after reload (thr {threshold})");
    }
    for threshold in [10.0, 100.0] {
        let q2a = close_encounters(&original, threshold);
        let q2b = close_encounters(&restored, threshold);
        assert_eq!(q2a, q2b, "query 2 differs after reload (thr {threshold})");
    }
}

#[test]
fn storm_tracking_pipeline() {
    let hurricane = storm(5, 8, 12);
    // Store and reload the moving region.
    let mut store = PageStore::new();
    let stored = save_mregion(&hurricane, &mut store);
    let back = open_mregion(&stored, &store, Verify::Full)
        .and_then(|v| v.materialize_validated())
        .expect("round-trip decodes");

    // Taxis vs the storm: the lifted inside must agree before/after
    // storage, and with per-instant evaluation.
    for taxi in taxi_fleet(17, 4, 10) {
        let a = hurricane.contains_moving_point(&taxi);
        let b = back.contains_moving_point(&taxi);
        assert_eq!(a.when_true(), b.when_true());
        // Spot-check against direct point-in-snapshot evaluation.
        for k in 0..20 {
            let ti = t(k as f64 * 0.5);
            if let (Val::Def(flag), Val::Def(pos), Val::Def(reg)) = (
                a.at_instant(ti),
                taxi.at_instant(ti),
                hurricane.at_instant(ti),
            ) {
                assert_eq!(
                    flag,
                    reg.contains_point(pos),
                    "inside mismatch at {ti:?} for {pos:?}"
                );
            }
        }
    }
}

#[test]
fn snapshot_storage_roundtrip_preserves_semantics() {
    let hurricane = storm(23, 6, 14);
    let mut store = PageStore::new();
    for k in [0.0, 33.0, 66.0, 100.0] {
        let snap = hurricane.at_instant(t(k)).unwrap();
        let stored = save_region(&snap, &mut store);
        let back = load_region(&stored, &store).unwrap();
        assert_eq!(back.area(), snap.area());
        assert_eq!(back.num_segments(), snap.num_segments());
        // Dense membership agreement on a grid.
        for i in -3..=3 {
            for j in -3..=3 {
                let p = pt(i as f64 * 40.0, j as f64 * 40.0);
                assert_eq!(back.contains_point(p), snap.contains_point(p));
            }
        }
    }
}

#[test]
fn atinstant_matches_area_summary() {
    // The exact quadratic area (Sec 4.2 summary) must agree with the
    // area of the atinstant snapshot everywhere.
    let hurricane = storm(31, 10, 16);
    let area = hurricane.area();
    for k in 0..=50 {
        let ti = t(k as f64 * 2.0);
        match (area.at_instant(ti), hurricane.at_instant(ti)) {
            (Val::Def(a), Val::Def(reg)) => {
                assert!(
                    a.approx_eq(reg.area(), 1e-6 * a.get().abs().max(1.0)),
                    "area mismatch at {ti:?}: {a} vs {}",
                    reg.area()
                );
            }
            (Val::Undef, Val::Undef) => {}
            other => panic!("definedness mismatch at {ti:?}: {other:?}"),
        }
    }
}

#[test]
fn trajectory_projection_consistency() {
    // Every instantaneous position lies on the trajectory projection
    // (up to the rounding of the motion-coefficient evaluation).
    use mob::spatial::dist::point_line_distance;
    for taxi in taxi_fleet(41, 6, 12) {
        let traj = taxi.trajectory();
        for k in 0..=24 {
            let ti = t(k as f64 * 0.5);
            if let Val::Def(p) = taxi.at_instant(ti) {
                let d = point_line_distance(p, &traj).unwrap();
                assert!(
                    d.get() < 1e-6,
                    "position {p:?} at {ti:?} is {d} away from the trajectory"
                );
            }
        }
    }
}

#[test]
fn close_encounter_distance_is_symmetric() {
    let fleet = plane_fleet(7, 10, 8);
    for i in 0..fleet.len() {
        for j in (i + 1)..fleet.len() {
            let d1 = closest_approach(&fleet[i].flight, &fleet[j].flight);
            let d2 = closest_approach(&fleet[j].flight, &fleet[i].flight);
            match (d1, d2) {
                (Val::Def(a), Val::Def(b)) => {
                    assert!(a.approx_eq(b, 1e-9), "{a} vs {b}")
                }
                (Val::Undef, Val::Undef) => {}
                other => panic!("asymmetric definedness: {other:?}"),
            }
        }
    }
}
