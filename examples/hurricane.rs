//! Hurricane tracking: a moving region (the storm), a static region (a
//! county), a fixed weather station and an evacuation convoy.
//!
//! Exercises `moving(region)` end to end: `atinstant` snapshots
//! (Alg 5.1), the lifted `inside` (Alg 5.2), the exact quadratic `area`,
//! `perimeter`, and interval algebra on the resulting periods.
//!
//! Run with: `cargo run -p mob --example hurricane`

use mob::gen::storm;
use mob::prelude::*;

fn main() {
    // A storm drifting north-east over [0, 100], growing as it goes.
    let hurricane = storm(7, 10, 16);
    println!(
        "hurricane: {} units, {} moving segments total",
        hurricane.num_units(),
        hurricane.total_msegs()
    );

    // Snapshots (Algorithm atinstant, Sec 5.1).
    for k in [0.0, 50.0, 100.0] {
        let snap = hurricane.at_instant(t(k)).unwrap();
        println!(
            "  t={k:>5}: area {:8.1}, perimeter {:7.1}, bbox {:?}",
            snap.area().get(),
            snap.perimeter().get(),
            snap.bbox()
        );
    }

    // The storm's area over time — exactly representable as quadratics.
    let area = hurricane.area();
    let peak = area.atmax().initial().unwrap();
    println!(
        "\npeak area {:.1} reached at t={:.1}",
        peak.value.get(),
        peak.instant.as_f64()
    );

    // A fixed weather station: when is it inside the storm?
    let station = pt(60.0, 30.0);
    let station_track = MovingPoint::from_samples(&[(t(0.0), station), (t(100.0), station)]);
    let hit = hurricane.contains_moving_point(&station_track);
    println!("\nweather station at {station:?} is inside the storm during:");
    for iv in hit.when_true().iter() {
        println!("  {iv:?}");
    }

    // An evacuation convoy fleeing east — does the storm catch it?
    let convoy = MovingPoint::from_samples(&[
        (t(0.0), pt(40.0, 20.0)),
        (t(50.0), pt(90.0, 40.0)),
        (t(100.0), pt(220.0, 60.0)),
    ]);
    let caught = hurricane.contains_moving_point(&convoy);
    let danger = caught.when_true();
    if danger.is_empty() {
        println!("\nconvoy: escaped — never inside the storm");
    } else {
        println!(
            "\nconvoy: inside the storm for {} time units, during {:?}",
            danger.total_duration(),
            danger
        );
    }

    // Interval algebra on periods: when is the station in the storm
    // while the convoy is also in it?
    let both = hit.and(&caught);
    println!(
        "station and convoy simultaneously inside: {:?}",
        both.when_true()
    );
}
