//! Query-over-storage walkthrough: save a `planes` relation into the
//! page store, then run Section 2's Query 1 **in place** — the flights
//! stay serialized and the query decodes only the unit records it
//! actually needs.
//!
//! ```sh
//! cargo run --example query_over_storage
//! ```

use mob::core::UnitSeq;
use mob::prelude::*;
use mob::rel::{long_flights, planes_relation, save_relation, OnError};
use mob::storage::PageStore;
use std::sync::Arc;

fn main() {
    // A seeded fleet: 16 planes, ~512 units per flight.
    let fleet = planes_relation(
        mob::gen::plane_fleet(0xF11E5, 16, 512)
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    );
    let total_units: usize = fleet
        .tuples()
        .iter()
        .filter_map(|t| t.at(2).as_mpoint().map(|m| m.num_units()))
        .sum();

    // Persist it: every flight becomes a root record + a unit array in
    // page chains (Sec 4's attribute representation).
    let mut store = PageStore::new();
    let stored = save_relation(&fleet, &mut store).expect("fleet serializes");
    let pages_total = store.pages_written();
    println!(
        "saved {} planes / {} units into {} pages",
        fleet.len(),
        total_units,
        pages_total
    );

    // Open it for query-in-place: zero pages read, flights stay as lazy
    // MPointRef handles over the store.
    let store = Arc::new(store);
    store.reset_counters();
    let lazy = Relation::from_stored(&stored, store.clone(), OnError::Fail).expect("opens");
    println!(
        "opened for query-in-place: {} pages read",
        store.pages_read()
    );

    // Query 1 (Sec 2): long Lufthansa flights. trajectory() must scan
    // every unit of the candidate flights, but nothing is materialized
    // up front and non-Lufthansa flights are never decoded.
    store.reset_counters();
    let q1 = long_flights(&lazy, "Lufthansa", 1500.0);
    println!(
        "\nQuery 1 (long Lufthansa flights): {} rows, {} pages read",
        q1.len(),
        store.pages_read()
    );
    for row in q1.tuples() {
        println!(
            "  {} {}",
            row.at(0).as_str().unwrap(),
            row.at(1).as_str().unwrap()
        );
    }

    // A single-instant probe on one stored flight: the UnitSeq binary
    // search reads O(log n) interval headers and decodes ONE unit.
    let flight = lazy.tuples()[0]
        .at(2)
        .as_mpoint_ref()
        .expect("stored flight");
    let view = flight.view();
    let n = view.len();
    store.reset_counters();
    let snapshot = view.at_instant(t(37.0));
    println!("\natinstant on a stored flight of {n} units -> {snapshot:?}",);
    println!(
        "  interval headers read: {} (≈ log2 {} = {})",
        view.headers_read(),
        n,
        (n as f64).log2().ceil() as u64,
    );
    println!("  unit records decoded:  {} of {}", view.units_decoded(), n);
    println!("  pages read:            {}", store.pages_read());
}
