//! Tour of the Section 4 data structures: root records, database arrays
//! with automatic inline/external placement, subarrays, and the Fig 7
//! `mapping` layout — with page-I/O accounting.
//!
//! Run with: `cargo run -p mob --example storage_tour`

use mob::gen::{plane_fleet, storm};
use mob::storage::line_store::save_line;
use mob::storage::mapping_store::{save_mpoint, save_mregion};
use mob::storage::region_store::save_region;
use mob::storage::{open_mpoint, PageStore, TupleLayout, Verify};

fn main() {
    let mut store = PageStore::new();
    println!("page size: {} bytes\n", store.page_size());

    // A small flight: everything fits inline in the tuple.
    let small = &plane_fleet(1, 1, 4)[0];
    let stored_small = save_mpoint(&small.flight, &mut store);
    let mut layout = TupleLayout::with_root(16);
    layout.add_array(&stored_small.units, &store);
    println!(
        "small flight ({} units): tuple bytes {}, fully inline: {}",
        stored_small.num_units,
        layout.tuple_bytes(),
        layout.fully_inline()
    );

    // A long trajectory: the units array spills to external pages.
    let big = &plane_fleet(2, 1, 400)[0];
    store.reset_counters();
    let stored_big = save_mpoint(&big.flight, &mut store);
    let mut layout = TupleLayout::with_root(16);
    layout.add_array(&stored_big.units, &store);
    println!(
        "long flight ({} units): tuple bytes {}, external pages {}, pages written {}",
        stored_big.num_units,
        layout.tuple_bytes(),
        layout.external_pages,
        store.pages_written()
    );

    // Reading it back costs exactly those pages.
    store.reset_counters();
    let reloaded = open_mpoint(&stored_big, &store, Verify::Full)
        .and_then(|v| v.materialize_validated())
        .expect("store is well-formed");
    println!(
        "reload: {} pages read, value identical: {}",
        store.pages_read(),
        reloaded == big.flight
    );

    // A moving region (three shared subarrays, Sec 4.2).
    let hurricane = storm(7, 12, 20);
    store.reset_counters();
    let stored_mr = save_mregion(&hurricane, &mut store);
    let mut layout = TupleLayout::with_root(24);
    layout.add_array(&stored_mr.units, &store);
    layout.add_array(&stored_mr.msegments, &store);
    layout.add_array(&stored_mr.mcycles, &store);
    layout.add_array(&stored_mr.mfaces, &store);
    println!(
        "\nmoving region ({} units, {} msegs): tuple bytes {}, external arrays {}, external pages {}",
        stored_mr.num_units,
        hurricane.total_msegs(),
        layout.tuple_bytes(),
        layout.external_arrays,
        layout.external_pages,
    );

    // Static spatial values: line and region with halfsegment arrays.
    let snap = hurricane.at_instant(mob::base::t(50.0)).unwrap();
    let stored_region = save_region(&snap, &mut store);
    println!(
        "\nregion snapshot: {} halfsegment records, {} cycles, {} faces, area {:.1}",
        2 * stored_region.num_segments,
        stored_region.num_cycles,
        stored_region.num_faces,
        stored_region.area,
    );

    let traj = big.flight.trajectory();
    let stored_line = save_line(&traj, &mut store);
    println!(
        "trajectory line: {} segments, length {:.1}, inline: {}",
        stored_line.num_segments,
        stored_line.length,
        stored_line.halfsegs.is_inline()
    );
}
