//! Airspace control: network-constrained ground vehicles, a restricted
//! zone, and a storm with an eye.
//!
//! Exercises the extension operations: `at_region` (restriction of a
//! moving point to a static region), grid-network trajectories,
//! `moving(region)` with holes, connected components and convex hulls.
//!
//! Run with: `cargo run -p mob --example airspace`

use mob::gen::{storm_with_eye, GridNetwork, StormConfig};
use mob::prelude::*;
use mob::spatial::{convex_hull, num_components};

fn main() {
    // -----------------------------------------------------------------
    // 1. A city grid with patrol vehicles.
    // -----------------------------------------------------------------
    let city = GridNetwork::new(8, 10.0);
    let streets = city.as_line();
    println!(
        "street network: {} segments, total length {}, {} connected component(s)",
        streets.num_segments(),
        streets.length(),
        num_components(&streets)
    );

    let patrols: Vec<MovingPoint> = (0..6)
        .map(|k| city.random_drive(100 + k, 40, 1.0))
        .collect();

    // -----------------------------------------------------------------
    // 2. A restricted zone in the city center: which patrols enter it,
    //    and what are their restricted-zone tracks?
    // -----------------------------------------------------------------
    let zone = Region::from_ring(rect_ring(30.0, 30.0, 50.0, 50.0));
    println!("\nrestricted zone {:?}:", zone.bbox());
    for (k, p) in patrols.iter().enumerate() {
        let inside = p.at_region(&zone);
        if inside.is_empty() {
            println!("  patrol {k}: never enters");
        } else {
            println!(
                "  patrol {k}: inside for {} time units over {} visits, track length {}",
                inside.deftime().total_duration(),
                inside.deftime().num_intervals(),
                inside.trajectory().length(),
            );
        }
    }

    // Where has patrol 0 been? The convex hull of its waypoints.
    let visited: Points = patrols[0]
        .units()
        .iter()
        .flat_map(|u| [u.start_point(), u.end_point()])
        .collect::<Vec<_>>()
        .into_iter()
        .collect();
    let hull = convex_hull(&visited);
    println!(
        "\npatrol 0 operating area (convex hull): {:.0} square units",
        hull.area().get()
    );

    // -----------------------------------------------------------------
    // 3. A storm with an eye drifts across the city.
    // -----------------------------------------------------------------
    let storm = storm_with_eye(
        31,
        &StormConfig {
            units: 8,
            vertices: 14,
            unit_duration: 5.0,
            center: (-30.0, 40.0),
            drift: (15.0, 0.0),
            radius: 22.0,
            growth: 1.0,
            start: 0.0,
        },
    );
    let snap = storm.at_instant(t(20.0)).unwrap();
    println!(
        "\nstorm at t=20: {} face(s), {} cycle(s) (the second is the eye), area {:.0}",
        snap.num_faces(),
        snap.num_cycles(),
        snap.area().get()
    );

    // Which patrols get caught in the storm body (the eye is calm)?
    for (k, p) in patrols.iter().enumerate() {
        let caught = storm.contains_moving_point(p);
        let w = caught.when_true();
        if !w.is_empty() {
            println!(
                "  patrol {k} is inside the storm body during {:?}",
                w.as_slice().first().expect("non-empty")
            );
        }
    }
}
