//! The two queries of Section 2, end to end on a generated fleet.
//!
//! ```sql
//! SELECT airline, id FROM planes
//! WHERE airline = "Lufthansa" AND length(trajectory(flight)) > 5000
//!
//! SELECT p.airline, p.id, q.airline, q.id FROM planes p, planes q
//! WHERE val(initial(atmin(distance(p.flight, q.flight)))) < 0.5
//! ```
//!
//! Run with: `cargo run -p mob --example flights`

use mob::gen::plane_fleet;
use mob::rel::{close_encounters, long_flights, planes_relation};

fn main() {
    // 60 planes, 12 legs each, across a 2000×2000 world over [0, 100].
    let fleet = plane_fleet(2024, 60, 12);
    println!("fleet: {} planes", fleet.len());
    let planes = planes_relation(
        fleet
            .into_iter()
            .map(|p| (p.airline, p.id, p.flight))
            .collect(),
    );

    // Query 1: long Lufthansa flights. The world is 2000 wide, so 1500
    // plays the role of the paper's "5000 kms".
    let q1 = long_flights(&planes, "Lufthansa", 1500.0);
    println!("\nQ1 — Lufthansa flights longer than 1500:");
    for t in q1.tuples() {
        println!(
            "  {} {}",
            t.at(0).as_str().unwrap(),
            t.at(1).as_str().unwrap()
        );
    }
    println!("  ({} rows)", q1.len());

    // Query 2: the spatio-temporal join. 25 plays the role of "500 m".
    let q2 = close_encounters(&planes, 25.0);
    println!("\nQ2 — pairs of planes that came closer than 25:");
    for t in q2.tuples() {
        println!(
            "  {} {}  ↔  {} {}",
            t.at(0).as_str().unwrap(),
            t.at(1).as_str().unwrap(),
            t.at(2).as_str().unwrap(),
            t.at(3).as_str().unwrap(),
        );
    }
    println!("  ({} pairs)", q2.len());
}
