//! Quickstart: build moving values, slice by slice, and query them.
//!
//! Reproduces Figure 1 of the paper (the sliced representation of a
//! moving real and a moving value) and walks through the fundamental
//! operations: `atinstant`, `deftime`, `trajectory`, lifted `distance`,
//! `atmin`, `initial`.
//!
//! Run with: `cargo run -p mob --example quickstart`

use mob::prelude::*;

fn main() {
    // -----------------------------------------------------------------
    // 1. A moving point from trajectory samples (one unit per leg).
    // -----------------------------------------------------------------
    let taxi = MovingPoint::from_samples(&[
        (t(0.0), pt(0.0, 0.0)),
        (t(10.0), pt(4.0, 3.0)),
        (t(20.0), pt(4.0, 9.0)),
        (t(30.0), pt(0.0, 9.0)),
    ]);
    println!("taxi: {} units (slices)", taxi.num_units());
    for u in taxi.units() {
        println!("  {u:?}");
    }
    println!("position at t=5   : {:?}", taxi.at_instant(t(5.0)));
    println!("position at t=25  : {:?}", taxi.at_instant(t(25.0)));
    println!(
        "position at t=99  : {:?} (outside deftime)",
        taxi.at_instant(t(99.0))
    );
    println!("deftime           : {:?}", taxi.deftime());

    // Projection into the plane: the trajectory (a line value).
    let traj = taxi.trajectory();
    println!(
        "trajectory        : {} segments, length {}",
        traj.num_segments(),
        traj.length()
    );

    // -----------------------------------------------------------------
    // 2. A moving real: the taxi's speed, and its distance to the depot.
    //    (Figure 1: a moving real decomposed into slices.)
    // -----------------------------------------------------------------
    let speed = taxi.speed();
    println!("\nspeed slices:");
    for u in speed.units() {
        println!("  {u:?}");
    }

    let depot = pt(4.0, 0.0);
    let dist = taxi.distance_to_point(depot);
    println!("distance to depot at t=0  : {:?}", dist.at_instant(t(0.0)));
    println!("distance to depot at t=10 : {:?}", dist.at_instant(t(10.0)));

    // The paper's closest-approach idiom: val(initial(atmin(...))).
    let closest = dist.atmin().initial().unwrap();
    println!(
        "closest to depot: distance {} at t={}",
        closest.value, closest.instant
    );

    // When was the taxi within 5 units of the depot?
    let near = dist.lt_const(r(5.0));
    println!("near depot during       : {:?}", near.when_true());

    // -----------------------------------------------------------------
    // 3. A moving region: a square zone sliding east; when is the taxi
    //    inside it? (Algorithm `inside` of Sec 5.2.)
    // -----------------------------------------------------------------
    let zone = Mapping::single(
        URegion::interpolate(
            Interval::closed(t(0.0), t(30.0)),
            &rect_ring(-12.0, -2.0, -2.0, 10.0),
            &rect_ring(2.0, -2.0, 12.0, 10.0),
        )
        .expect("translation is a valid moving region"),
    );
    let inside = zone.contains_moving_point(&taxi);
    println!("\ninside the sliding zone : {:?}", inside.when_true());
    println!(
        "zone area (constant under translation): {:?}",
        zone.area().at_instant(t(15.0))
    );

    // Snapshot of the zone (Algorithm `atinstant` of Sec 5.1).
    let snap = zone.at_instant(t(15.0)).unwrap();
    println!(
        "zone at t=15: {} faces, area {}, bbox {:?}",
        snap.num_faces(),
        snap.area(),
        snap.bbox()
    );
}
