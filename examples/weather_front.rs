//! Weather-front tracking: a `moving(line)` value end to end.
//!
//! A cold front (polyline) sweeps east with varying speed; we query its
//! position, length development, crossings with a highway, and when it
//! reaches a set of cities — then persist it through the Sec 4 storage
//! layout.
//!
//! Run with: `cargo run -p mob --example weather_front`

use mob::gen::{moving_front, FrontConfig};
use mob::prelude::*;
use mob::storage::mapping_store::save_mline;
use mob::storage::{open_mline, PageStore, Verify};

fn main() {
    let front = moving_front(
        42,
        &FrontConfig {
            segments: 10,
            units: 8,
            unit_duration: 3.0,
            height: 120.0,
            drift: 12.0,
            jitter: 6.0,
        },
    );
    println!(
        "front: {} units, {} moving segments, deftime {:?}",
        front.num_units(),
        front.total_msegs(),
        front.deftime()
    );

    // Snapshots: where is the front, and how long is it?
    for k in [0.0, 12.0, 24.0] {
        let snap = front.at_instant(t(k)).unwrap();
        println!(
            "  t={k:>4}: spans x ∈ [{:.1}, {:.1}], length {:.1}",
            snap.bbox().min_x().get(),
            snap.bbox().max_x().get(),
            snap.length().get()
        );
    }

    // Length development (piecewise-linear approximation of the lifted
    // length, which is not closed in the ureal class).
    let len = front.length_approx(4);
    let lmax = len.max_value().unwrap();
    println!("max front length over time: {:.1}", lmax.get());

    // A north–south highway at x = 60: when does the front cross it?
    let highway = Line::single(seg(60.0, -10.0, 60.0, 130.0));
    let mut crossing_times = Vec::new();
    for k in 0..240 {
        let ti = t(k as f64 * 0.1);
        if let Val::Def(snap) = front.at_instant(ti) {
            if snap.intersects(&highway) {
                crossing_times.push(ti);
            }
        }
    }
    match (crossing_times.first(), crossing_times.last()) {
        (Some(a), Some(b)) => {
            println!("front touches the highway (x=60) from t={a} to t={b}")
        }
        _ => println!("front never reaches the highway"),
    }

    // Cities east of the start: when does the front pass each one?
    // (The front is a line — a city is "reached" when the front's
    // bounding x-range sweeps past it at the city's latitude.)
    for (name, city) in [
        ("Ada", pt(30.0, 40.0)),
        ("Bex", pt(75.0, 90.0)),
        ("Cle", pt(300.0, 60.0)),
    ] {
        let reached = (0..240).map(|k| t(k as f64 * 0.1)).find(|ti| {
            front
                .at_instant(*ti)
                .map(|snap| snap.bbox().min_x() >= city.x)
                .unwrap_or(false)
        });
        match reached {
            Some(ti) => println!("  {name} at {city:?}: front passed by t={ti}"),
            None => println!("  {name} at {city:?}: not passed within the forecast"),
        }
    }

    // Persist and reload (Fig 7 layout with one shared msegments array).
    let mut store = PageStore::new();
    let stored = save_mline(&front, &mut store);
    let back = open_mline(&stored, &store, Verify::Full)
        .and_then(|v| v.materialize_validated())
        .expect("store is well-formed");
    println!(
        "\nstored: {} unit records + {} mseg records; reload identical: {}",
        stored.num_units,
        front.total_msegs(),
        back == front
    );
}
